//! # gramc
//!
//! Full-system simulator for **GRAMC: General-Purpose and Reconfigurable
//! Analog Matrix Computing Architecture** (DATE 2025) — an RRAM-based
//! in-memory analog matrix processor that reconfigures one macro into four
//! computing modes: matrix-vector multiplication (MVM), linear-system solve
//! (INV), pseudoinverse/least-squares (PINV) and dominant eigenvector (EGV).
//!
//! This crate is a facade over the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`linalg`] | dense LA baseline (LU/QR/SVD/eigen), random ensembles |
//! | [`device`] | Stanford-PKU RRAM model, 1T1R cell, level quantizer |
//! | [`array`]  | 128×128 crossbar, write-verify, conductance mapping |
//! | [`circuit`]| MNA simulator + the four AMC topologies |
//! | [`core`]   | AMC macro group, ISA + controller, functional modules |
//! | [`runtime`]| sharded multi-group runtime, work-stealing scheduler |
//! | [`nn`]     | LeNet-5 training/quantization + analog backends |
//! | [`data`]   | synthetic digits, PM2.5 regression, spiked Gram |
//!
//! # Quickstart
//!
//! ```
//! use gramc::core::{MacroGroup, MacroConfig};
//! use gramc::linalg::Matrix;
//!
//! # fn main() -> Result<(), gramc::core::CoreError> {
//! let mut group = MacroGroup::new(2, MacroConfig::small_ideal(4), 42);
//! let a = Matrix::from_rows(&[&[2.0, -0.5], &[-0.5, 1.5]]);
//! let op = group.load_matrix(&a)?;
//! // One-step analog solve of A·x = b on the INV configuration.
//! let x = group.solve_inv(op, &[0.4, -0.2])?;
//! assert!((2.0 * x[0] - 0.5 * x[1] - 0.4).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use gramc_array as array;
pub use gramc_circuit as circuit;
pub use gramc_core as core;
pub use gramc_data as data;
pub use gramc_device as device;
pub use gramc_linalg as linalg;
pub use gramc_nn as nn;
pub use gramc_runtime as runtime;
