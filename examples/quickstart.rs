//! Quickstart: program a small matrix into the AMC macro group and run two
//! of the four reconfigurable modes — MVM and INV — against the digital
//! baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gramc::core::{MacroConfig, MacroGroup};
use gramc::linalg::{lu, vector, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4×4 symmetric positive-definite matrix with mixed signs.
    let a = Matrix::from_rows(&[
        &[2.0, -0.4, 0.1, 0.0],
        &[-0.4, 1.8, -0.2, 0.3],
        &[0.1, -0.2, 1.5, -0.1],
        &[0.0, 0.3, -0.1, 2.2],
    ]);
    let b = vec![1.0, -0.5, 0.25, 0.75];

    // Two macros with the paper's non-ideality settings (4-bit weights,
    // read noise, finite-gain op-amps, 8-bit DAC / 10-bit ADC).
    let mut group = MacroGroup::new(2, MacroConfig::small(4), 2025);

    // Map the matrix onto differential conductance pairs; this quantizes to
    // 16 levels over 1–100 µS exactly like the hardware write-verify does.
    let op = group.load_matrix(&a)?;
    println!("matrix loaded: {} free macros remain", group.free_macros());

    // --- MVM configuration ------------------------------------------------
    let y_analog = group.mvm(op, &b)?;
    let y_digital = a.matvec(&b);
    println!("\nMVM   analog: {y_analog:7.4?}");
    println!("MVM  digital: {y_digital:7.4?}");
    println!("MVM rel.err : {:.3} %", 100.0 * vector::rel_error(&y_analog, &y_digital));

    // --- INV configuration: one-step solve of A·x = b ---------------------
    let x_analog = group.solve_inv(op, &b)?;
    let x_digital = lu::solve(&a, &b)?;
    println!("\nINV   analog: {x_analog:7.4?}");
    println!("INV  digital: {x_digital:7.4?}");
    println!("INV rel.err : {:.3} %", 100.0 * vector::rel_error(&x_analog, &x_digital));

    // The same macro was *reconfigured* between the two runs — that is the
    // paper's central claim.
    println!("\nmacro 0 register mode after the solve: {}", group.macro_at(0)?.registers().mode());
    Ok(())
}
