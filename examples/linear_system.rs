//! Solve a discretized 1-D *screened* Poisson (reaction–diffusion) problem
//! with the INV configuration and use the analog result as a *seed
//! solution* for digital refinement — quantifying the paper's claim that
//! AMC outputs "may be used as seed solutions to speed up the convergence
//! towards precise final solutions".
//!
//! The screening term matters: a pure Poisson operator at n = 32 has
//! condition number ≈ 440, which amplifies the 4-bit quantization error
//! into a useless solve — analog one-step solvers need well-conditioned
//! operators (the paper's Wishart test matrices are). The screened operator
//! (κ ≈ 9) is the regime where the seed genuinely accelerates refinement.
//!
//! ```sh
//! cargo run --release --example linear_system
//! ```

use gramc::core::{MacroConfig, MacroGroup};
use gramc::linalg::{iterative, lu, vector, Matrix};

/// Tridiagonal screened-Poisson operator `-u'' + σ²·u` with Dirichlet
/// boundaries: diagonal `2 + σ²`, off-diagonal `-1`.
fn screened_poisson(n: usize, sigma_sq: f64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0 + sigma_sq
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let a = screened_poisson(n, 0.5);
    // Heat source concentrated mid-domain.
    let b: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as f64 + 1.0) / (n as f64 + 1.0);
            (-(x - 0.5) * (x - 0.5) / 0.02).exp()
        })
        .collect();

    let mut group = MacroGroup::new(2, MacroConfig::small(n), 7);
    let op = group.load_matrix(&a)?;

    // One-step analog solve (4-bit quantized operator + analog noise).
    let x_analog = group.solve_inv(op, &b)?;
    let x_exact = lu::solve(&a, &b)?;
    let seed_err = vector::rel_error(&x_analog, &x_exact);
    println!("analog seed relative error: {:.2} %", 100.0 * seed_err);

    // A subtlety worth knowing: the analog solve's error is A⁻¹-shaped —
    // concentrated in the LOW-eigenvalue modes, which are exactly the modes
    // plain digital iterations damp slowest. A naive warm start therefore
    // helps little. The hardware-faithful scheme is **analog iterative
    // refinement** (mixed-precision refinement with the macro as the inner
    // solver): the systematic quantization error then contracts the
    // residual geometrically instead of flooring the accuracy.
    //
    //     x ← x + AnalogSolve(b − A·x)
    let tol = 1e-10;
    let mut x = vec![0.0; n];
    let mut refinement_solves = 0;
    for _ in 0..60 {
        let r = vector::sub(&b, &a.matvec(&x));
        let rel = vector::norm2(&r) / vector::norm2(&b);
        if rel <= tol {
            break;
        }
        let dx = group.solve_inv(op, &r)?;
        vector::axpy(1.0, &dx, &mut x);
        refinement_solves += 1;
    }
    let final_res = vector::rel_error(&a.matvec(&x), &b);
    println!("analog iterative refinement: {refinement_solves} one-step solves to {final_res:.2e}");

    // Digital baselines at the same tolerance.
    let cg = iterative::conjugate_gradient(&a, &b, &vec![0.0; n], tol, 10_000)?;
    let omega = 0.42; // < 2/λ_max(A) ≈ 0.44 for the screened operator
    let rich = iterative::richardson(&a, &b, &vec![0.0; n], omega, tol, 200_000)?;
    println!("digital CG        : {} iterations (each an n×n MVM)", cg.iterations);
    println!("digital Richardson: {} iterations", rich.iterations);
    println!(
        "each analog solve settles in O(1) time regardless of n — the
         refinement loop replaces {} digital sweeps with {} analog solves",
        rich.iterations, refinement_solves
    );
    Ok(())
}
