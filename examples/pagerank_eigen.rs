//! Dominant-eigenvector application: rank nodes of a small co-citation
//! graph with the EGV configuration (the similarity matrix is symmetric
//! PSD, exactly the Gram-matrix setting of Fig. 4d).
//!
//! ```sh
//! cargo run --release --example pagerank_eigen
//! ```

use gramc::core::{MacroConfig, MacroGroup};
use gramc::linalg::{vector, Matrix, SymmetricEigen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Co-citation similarity of 12 "papers": S = Aᵀ·A of a citation
    // incidence matrix (who cites whom), symmetrized and normalized —
    // the eigenvector centrality of S ranks influence.
    let n = 12;
    let citations: &[(usize, usize)] = &[
        (0, 1),
        (0, 2),
        (1, 2),
        (3, 2),
        (4, 2),
        (5, 2),
        (2, 6),
        (6, 7),
        (8, 6),
        (9, 6),
        (10, 9),
        (11, 9),
        (9, 2),
        (7, 0),
        (5, 6),
        (4, 1),
    ];
    let mut inc = Matrix::zeros(n, n);
    for &(from, to) in citations {
        inc[(from, to)] = 1.0;
    }
    let s = inc.transpose().matmul(&inc).scale(1.0 / n as f64);
    // Regularize the diagonal so the matrix is PD and well-mapped.
    let s = &s + &Matrix::identity(n).scale(0.05);

    let mut group = MacroGroup::new(2, MacroConfig::small(n), 3);
    let op = group.load_matrix(&s)?;
    let sol = group.solve_egv(op)?;

    let eig = SymmetricEigen::new(&s)?;
    let reference = eig.eigenvector(0);
    let err = vector::rel_error_up_to_sign(&sol.eigenvector, &reference);

    println!("analog eigenvalue estimate : {:.4}", sol.eigenvalue);
    println!("digital eigenvalue         : {:.4}", eig.eigenvalues[0]);
    println!("eigenvector relative error : {:.2} %", 100.0 * err);
    println!("loop iterations            : {}", sol.iterations);

    // Ranking comparison (sign-normalize first).
    let flip = if vector::dot(&sol.eigenvector, &reference) < 0.0 { -1.0 } else { 1.0 };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (flip * sol.eigenvector[b]).partial_cmp(&(flip * sol.eigenvector[a])).unwrap()
    });
    let mut ref_order: Vec<usize> = (0..n).collect();
    ref_order.sort_by(|&a, &b| reference[b].partial_cmp(&reference[a]).unwrap());
    println!("\nrank  analog  digital");
    for k in 0..n.min(5) {
        println!("{:>4}  {:>6}  {:>7}", k + 1, order[k], ref_order[k]);
    }
    assert_eq!(order[0], ref_order[0], "top-ranked node must agree");
    Ok(())
}
