//! Fig. 4(c) workload as an application: linear regression of a 128×6
//! air-quality design matrix via the PINV configuration, compared against
//! the digital pseudoinverse.
//!
//! ```sh
//! cargo run --release --example regression_pm25
//! ```

use gramc::core::{MacroConfig, MacroGroup};
use gramc::data::{Pm25Dataset, FEATURE_NAMES};
use gramc::linalg::{pseudoinverse, random, vector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = random::seeded_rng(4);
    let ds = Pm25Dataset::generate(&mut rng, 128, 0.05);
    println!(
        "dataset: {} samples × {} features (synthetic PM2.5 substitute)",
        ds.samples(),
        FEATURE_NAMES.len()
    );

    let mut group = MacroGroup::new(2, MacroConfig::default(), 11);
    let op = group.load_matrix(&ds.design)?;

    // One-step analog least squares on the two-array PINV cascade.
    let w_analog = group.solve_pinv(op, &ds.response)?;
    let w_digital = pseudoinverse(&ds.design)?.matvec(&ds.response);

    println!("\n{:<14} {:>10} {:>10} {:>10}", "feature", "analog", "digital", "truth");
    for (k, name) in FEATURE_NAMES.iter().enumerate() {
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4}",
            name, w_analog[k], w_digital[k], ds.true_weights[k]
        );
    }
    println!(
        "\nanalog vs digital relative error: {:.2} %",
        100.0 * vector::rel_error(&w_analog, &w_digital)
    );

    // Prediction quality on the training window.
    let pred_analog = ds.design.matvec(&w_analog);
    let pred_digital = ds.design.matvec(&w_digital);
    println!(
        "fit residual  analog: {:.3}   digital: {:.3}",
        vector::rel_error(&pred_analog, &ds.response),
        vector::rel_error(&pred_digital, &ds.response),
    );
    Ok(())
}
