//! Fault-tolerant serving: a shard's arrays break mid-workload and the
//! runtime heals itself — residual checks catch the garbage, the sick
//! shard is quarantined, its operator is re-programmed onto a healthy
//! shard, and serving continues at the fault-free error level. When every
//! shard is gone, results come from the digital reference path instead of
//! not at all.
//!
//! ```sh
//! cargo run --release --features fault-inject --example fault_tolerant_serving
//! ```

use gramc::core::tiling::TileMapping;
use gramc::core::MacroConfig;
use gramc::linalg::{random, vector};
use gramc::runtime::{FaultConfig, HealthConfig, Placement, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two shards, residual checks on: a result missing the 20 % tolerance
    // counts against its shard; two strikes and the shard is out.
    let health = HealthConfig {
        residual_tolerance: Some(0.2),
        quarantine_after: 2,
        max_retries: 2,
        ..HealthConfig::default()
    };
    let rt = Runtime::new(2, 6, MacroConfig::small_ideal(32), 2026).with_health_config(health);
    let mut rng = random::seeded_rng(7);

    let a = random::gaussian_matrix(&mut rng, 32, 32);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0))?;
    let requests: Vec<Vec<f64>> = (0..64).map(|_| random::normal_vector(&mut rng, 32)).collect();

    let worst = |handles: &[gramc::runtime::JobHandle]| -> Result<f64, Box<dyn std::error::Error>> {
        let mut w = 0.0_f64;
        for (x, h) in requests.iter().zip(handles) {
            w = w.max(vector::rel_error(&h.wait_vector()?, &a.matvec(x)));
        }
        Ok(w)
    };

    // ── Healthy serving ───────────────────────────────────────────────
    let handles: Vec<_> =
        requests.iter().map(|x| rt.submit_mvm(op, x.clone())).collect::<Result<_, _>>()?;
    rt.run_all();
    println!("healthy:    worst request error {:.2} %", 100.0 * worst(&handles)?);

    // ── Mid-workload device failure ───────────────────────────────────
    // A tenth of shard 0's cells get stuck at the conductance rails.
    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.1), 99)?;
    let handles: Vec<_> =
        requests.iter().map(|x| rt.submit_mvm(op, x.clone())).collect::<Result<_, _>>()?;
    let summary = rt.run_all();
    println!(
        "faulted:    worst request error {:.2} % ({} failed checks, {} degraded dispatches)",
        100.0 * worst(&handles)?,
        summary.failed_checks,
        summary.degraded,
    );
    for event in &summary.events {
        println!("  recovery: {event:?}");
    }
    println!("  quarantined shards: {:?}", rt.quarantined_shards());

    // ── Post-recovery serving ─────────────────────────────────────────
    // The operator now lives on shard 1; results are back at the
    // fault-free error level without the caller doing anything.
    let handles: Vec<_> =
        requests.iter().map(|x| rt.submit_mvm(op, x.clone())).collect::<Result<_, _>>()?;
    rt.run_all();
    println!("recovered:  worst request error {:.2} %", 100.0 * worst(&handles)?);

    // ── Health probes ─────────────────────────────────────────────────
    // Probes read each operator's planes back and compare against the
    // mapped target — damage shows up without a single user job.
    for (oph, report) in rt.probe_all()? {
        println!(
            "probe {oph:?}: {}/{} bad cells, residual {:.4}",
            report.bad_cells, report.cells, report.residual
        );
    }

    // ── Last resort: every shard gone ─────────────────────────────────
    rt.inject_shard_faults(1, &FaultConfig::stuck_at(0.1), 100)?;
    rt.probe_shard(1)?;
    rt.probe_shard(1)?;
    let handles: Vec<_> =
        requests.iter().map(|x| rt.submit_mvm(op, x.clone())).collect::<Result<_, _>>()?;
    let summary = rt.run_all();
    println!(
        "degraded:   worst request error {:.2} % ({} digital dispatches — no healthy shard left)",
        100.0 * worst(&handles)?,
        summary.degraded,
    );
    Ok(())
}
