//! Fig. 5 end to end, small scale: train LeNet-5 on synthetic digits, then
//! run inference through the analog GRAMC pipeline at INT4 and INT8 and
//! compare with the float32 software baseline.
//!
//! (The full-size experiment with paper-scale sample counts is the
//! `fig5_lenet` bench binary; this example keeps runtimes interactive.)
//!
//! ```sh
//! cargo run --release --example lenet_inference
//! ```

use gramc::core::{MacroConfig, MacroGroup};
use gramc::data::DigitsDataset;
use gramc::linalg::random::seeded_rng;
use gramc::nn::{GramcLenet, LeNet5, Precision, Tensor3};

fn to_tensor(pixels: &[f64]) -> Tensor3 {
    Tensor3::from_vec(1, 28, 28, pixels.to_vec())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(5);
    let ds = DigitsDataset::generate(&mut rng, 1200, 300);
    let train: Vec<Tensor3> = ds.train.iter().map(|d| to_tensor(&d.pixels)).collect();
    let train_labels: Vec<usize> = ds.train.iter().map(|d| d.label).collect();
    let test: Vec<Tensor3> = ds.test.iter().map(|d| to_tensor(&d.pixels)).collect();
    let test_labels: Vec<usize> = ds.test.iter().map(|d| d.label).collect();

    let mut net = LeNet5::new(&mut rng);
    println!("training LeNet-5 on {} synthetic digits…", train.len());
    // Per-sample SGD: with momentum 0.9 the effective step is lr/(1−m), so
    // keep the raw lr small and decay it per epoch (fixed-rate momentum SGD
    // can diverge late in training).
    for epoch in 0..5 {
        let lr = 0.002 * 0.75_f64.powi(epoch);
        let stats = net.train_epoch(&train, &train_labels, lr, 0.9);
        println!(
            "  epoch {epoch}: loss {:.4}, train accuracy {:.1} %",
            stats.loss,
            100.0 * stats.accuracy
        );
    }

    let float32 = net.evaluate(&test, &test_labels);
    println!("\nfloat32 software accuracy: {:.2} %", 100.0 * float32);

    // Analog inference on a full 16-macro, 128×128 GRAMC system.
    let _ = MacroGroup::new(1, MacroConfig::small_ideal(2), 0); // facade smoke use
    let mut int4 = GramcLenet::new(net.clone(), Precision::Int4, MacroConfig::default(), 16, 9)?;
    let acc4 = int4.evaluate(&test, &test_labels)?;
    println!("GRAMC INT4 analog accuracy: {:.2} %", 100.0 * acc4);

    let mut int8 = GramcLenet::new(net, Precision::Int8, MacroConfig::default(), 16, 10)?;
    let acc8 = int8.evaluate(&test, &test_labels)?;
    println!("GRAMC INT8 analog accuracy: {:.2} %", 100.0 * acc8);

    println!(
        "\nordering (paper Fig. 5): INT4 {:.3} ≤ INT8 {:.3} ≈ FP32 {:.3}",
        acc4, acc8, float32
    );
    Ok(())
}
