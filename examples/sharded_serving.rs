//! Sharded serving: many concurrent MVM requests against one loaded
//! operator, plus one big operator tiled across every shard.
//!
//! The runtime owns several independent macro groups ("shards"). Requests
//! against the same operator coalesce into a single analog dispatch, and
//! the work-stealing scheduler keeps all shards busy no matter where the
//! jobs were enqueued.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use gramc::core::tiling::TileMapping;
use gramc::core::MacroConfig;
use gramc::linalg::{random, vector};
use gramc::runtime::{Placement, Runtime, RuntimeServer, ShardedTiledOperator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four shards of four macros each, paper non-idealities at 32×32.
    let rt = Runtime::new(4, 4, MacroConfig::small(32), 2025);
    let mut rng = random::seeded_rng(7);

    // ── One model, many users ─────────────────────────────────────────
    let a = random::gaussian_matrix(&mut rng, 32, 32);
    let op = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded)?;

    let requests: Vec<Vec<f64>> = (0..256).map(|_| random::normal_vector(&mut rng, 32)).collect();
    let handles: Vec<_> =
        requests.iter().map(|x| rt.submit_mvm(op, x.clone())).collect::<Result<_, _>>()?;
    let summary = rt.run_all();
    println!(
        "{} MVM requests collapsed into {} analog dispatch(es) \
         ({} job(s) stolen across workers)",
        requests.len(),
        summary.executed,
        summary.stolen,
    );
    let mut worst = 0.0_f64;
    for (x, h) in requests.iter().zip(&handles) {
        let y = h.wait_vector()?;
        worst = worst.max(vector::rel_error(&y, &a.matvec(x)));
    }
    println!("worst request error vs digital: {:.2} %", 100.0 * worst);
    rt.free(op)?;

    // ── What did that cost? ───────────────────────────────────────────
    // The telemetry feature (on by default) meters every analog event the
    // drain caused and prices it through the analog cost model.
    #[cfg(feature = "telemetry")]
    {
        let m = rt.metrics_snapshot();
        let cost = m.analog_cost(&gramc::core::metrics::AnalogCostModel::default());
        println!(
            "served p50/p99 submit→complete: {:.1} µs / {:.1} µs \
             ({} DAC drives, {} ADC conversions → modeled {:.2e} J analog)",
            m.submit_to_complete.p50_ns() as f64 / 1e3,
            m.submit_to_complete.p99_ns() as f64 / 1e3,
            m.hw_total.dac_drives,
            m.hw_total.adc_conversions,
            cost.energy,
        );
    }

    // ── One operator, every shard ─────────────────────────────────────
    // A 64×64 matrix on 32×32 arrays: four tiles, placed round-robin so
    // each partial product runs on a different shard and the scheduler
    // reduces them digitally.
    let big = random::gaussian_matrix(&mut rng, 64, 64);
    let mut tiled = ShardedTiledOperator::load(&rt, &big, TileMapping::FourBit)?;
    println!(
        "\n64x64 operator: {} tiles over shards (live per shard: {:?})",
        tiled.tile_count(),
        rt.live_operators_per_shard(),
    );
    let x = random::normal_vector(&mut rng, 64);
    let y = tiled.mvm(&rt, &x)?;
    let y_ref = big.matvec(&x);
    println!("tiled MVM rel.err: {:.2} %", 100.0 * vector::rel_error(&y, &y_ref));
    tiled.free(&rt)?;

    // ── Persistent serving ────────────────────────────────────────────
    // run_all above is a batch drain: nothing completes until somebody
    // drains. A RuntimeServer keeps one worker per shard alive instead, so
    // submit → wait behaves like a real service call — jobs complete the
    // moment they are due, and the queue bound turns overload into typed
    // QueueFull rejections rather than unbounded backlog.
    let rt =
        std::sync::Arc::new(Runtime::new(2, 4, MacroConfig::small(32), 2026).with_queue_limit(512));
    let server = RuntimeServer::start(rt.clone());
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded)?;
    loaded.wait()?; // completed by the server — no run_all anywhere
    let t0 = std::time::Instant::now();
    let live: Vec<_> = (0..64)
        .map(|_| rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 32)]))
        .collect::<Result<_, _>>()?;
    for h in &live {
        h.wait()?;
    }
    let wall = t0.elapsed();
    let report = server.shutdown();
    println!(
        "\nserved {} jobs live in {:.1} ms ({} workers, {} panicked)",
        report.jobs_executed,
        wall.as_secs_f64() * 1e3,
        report.workers,
        report.panicked_workers,
    );

    // ── Two tenants, one deployment ───────────────────────────────────
    // A LeNet inference tenant (LeNet-5's 84→10 classifier layer served
    // as an analog operator) shares the runtime with an INV-solve tenant.
    // Every submission carries its tenant, so the coalesced hardware
    // costs split back per tenant — and an SloMonitor with a deliberately
    // unreachable latency target (1 ns) shows the burn-rate alert firing.
    #[cfg(feature = "telemetry")]
    {
        use gramc::nn::LeNet5;
        use gramc::runtime::{SloConfig, SloMonitor, TenantId, TenantQuota};
        use std::time::Duration;

        const LENET: TenantId = TenantId(1);
        const SOLVER: TenantId = TenantId(2);
        let rt = std::sync::Arc::new(
            Runtime::new(2, 4, MacroConfig::small(84), 2027)
                .with_queue_limit(512)
                .with_tenant_quota(TenantQuota { max_in_flight: 256 })
                .with_journal_capacity(1 << 14),
        );
        let server = RuntimeServer::start(rt.clone());
        let slo = SloMonitor::start(
            rt.clone(),
            SloConfig {
                latency_target_ns: 1, // unreachable: every completion violates
                short_window: 2,
                long_window: 4,
                interval: Duration::from_millis(5),
                ..SloConfig::default()
            },
        );

        let model = LeNet5::new(&mut random::seeded_rng(4));
        let (cls_op, cls_loaded) = rt.submit_load_for(
            LENET,
            &model.fc3.weights,
            TileMapping::FourBit,
            Placement::Pinned(0),
        )?;
        let spd = random::spd_with_condition(&mut rng, 32, 5.0);
        let (spd_op, spd_loaded) =
            rt.submit_load_for(SOLVER, &spd, TileMapping::FourBit, Placement::Pinned(1))?;
        cls_loaded.wait()?;
        spd_loaded.wait()?;

        // Interleave the workloads across several SLO ticks so the burn
        // windows see live traffic: the LeNet tenant classifies batches
        // of fc2-style activations, the solver tenant answers INV solves.
        std::thread::sleep(Duration::from_millis(10)); // pre-traffic baseline
        for _ in 0..8 {
            let acts: Vec<Vec<f64>> = (0..6)
                .map(|_| (0..84).map(|_| random::standard_normal(&mut rng).abs()).collect())
                .collect();
            let inference = rt.submit_mvm_batch_for(LENET, cls_op, acts)?;
            let solve =
                rt.submit_solve_inv_for(SOLVER, spd_op, random::normal_vector(&mut rng, 32))?;
            inference.wait()?;
            solve.wait()?;
            std::thread::sleep(Duration::from_millis(5));
        }

        let alerts = slo.stop();
        server.shutdown();
        let snap = rt.metrics_snapshot();
        let cost_model = gramc::core::metrics::AnalogCostModel::default();
        println!("\nper-tenant cost table:");
        println!(
            "{:>10} {:>9} {:>9} {:>10} {:>10} {:>12}",
            "tenant", "requests", "rejected", "p50 µs", "p99 µs", "energy J"
        );
        for t in &snap.tenants {
            println!(
                "{:>10} {:>9} {:>9} {:>10.1} {:>10.1} {:>12.3e}",
                t.tenant.to_string(),
                t.requests,
                t.rejected,
                t.latency.p50_ns() as f64 / 1e3,
                t.latency.p99_ns() as f64 / 1e3,
                t.analog_cost(&cost_model).energy,
            );
        }
        match alerts.first() {
            Some(a) => println!(
                "deliberate SLO alert: {:?} burning {:.0}× the error budget \
                 (short window) at tick {}",
                a.kind, a.short_burn, a.tick
            ),
            None => println!("no SLO alert fired (unexpectedly healthy run)"),
        }
    }
    Ok(())
}
