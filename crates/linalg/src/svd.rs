//! Singular value decomposition (one-sided Jacobi) and the Moore–Penrose
//! pseudoinverse — the digital baseline for the PINV experiment (Fig. 4c).

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Thin SVD `A = U·Σ·Vᵀ` of an `m × n` matrix with `m ≥ n` (tall or square).
///
/// Computed with the one-sided Jacobi (Hestenes) method: `V` accumulates the
/// plane rotations that orthogonalize the columns of `A`, whose norms become
/// the singular values.
///
/// # Examples
///
/// ```
/// use gramc_linalg::{Matrix, Svd};
///
/// # fn main() -> Result<(), gramc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
/// let svd = Svd::new(&a)?;
/// assert!((svd.singular_values[0] - 4.0).abs() < 1e-12);
/// assert!((svd.singular_values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n`, orthonormal columns.
    pub u: Matrix,
    /// Singular values in descending order.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × n`, orthogonal.
    pub v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// Wide matrices (`m < n`) are handled by transposing internally and
    /// swapping `u`/`v` on output, so any shape is accepted.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is empty.
    /// * [`LinalgError::NoConvergence`] if the Jacobi sweeps fail to
    ///   orthogonalize the columns.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        if m < n {
            let t = Self::new(&a.transpose())?;
            return Ok(Self { u: t.v, singular_values: t.singular_values, v: t.u });
        }

        let mut u = a.clone(); // columns will be rotated into U·Σ
        let mut v = Matrix::identity(n);
        let scale = a.max_abs().max(1.0);
        let tol = 1e-14 * scale * scale * (m as f64);
        let max_sweeps = 60;
        let mut converged = false;

        for _sweep in 0..max_sweeps {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries of columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    if apq.abs() <= tol || apq.abs() <= 1e-15 * (app * aqq).sqrt() {
                        continue;
                    }
                    rotated = true;
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence { iterations: max_sweeps, residual: f64::NAN });
        }

        // Column norms are the singular values; normalize U's columns.
        let mut sv: Vec<(f64, usize)> = (0..n)
            .map(|j| {
                let s: f64 = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
                (s, j)
            })
            .collect();
        sv.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN singular value"));

        let mut u_sorted = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut singular_values = Vec::with_capacity(n);
        for (out_j, &(s, j)) in sv.iter().enumerate() {
            singular_values.push(s);
            if s > 0.0 {
                for i in 0..m {
                    u_sorted[(i, out_j)] = u[(i, j)] / s;
                }
            }
            for i in 0..n {
                v_sorted[(i, out_j)] = v[(i, j)];
            }
        }
        Ok(Self { u: u_sorted, singular_values, v: v_sorted })
    }

    /// Numerical rank at relative tolerance `rtol` (singular values below
    /// `rtol · σ_max` count as zero).
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values.iter().filter(|&&s| s > rtol * smax).count()
    }

    /// Condition number `σ_max / σ_min` (∞ if rank-deficient).
    pub fn cond_2(&self) -> f64 {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let smin = self.singular_values.last().copied().unwrap_or(0.0);
        if smin == 0.0 {
            f64::INFINITY
        } else {
            smax / smin
        }
    }

    /// Moore–Penrose pseudoinverse `A⁺ = V·Σ⁺·Uᵀ` with singular values below
    /// `rtol · σ_max` truncated.
    pub fn pseudoinverse(&self, rtol: f64) -> Matrix {
        let (m, n) = (self.u.rows(), self.v.rows());
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let mut pinv = Matrix::zeros(n, m);
        for k in 0..self.singular_values.len() {
            let s = self.singular_values[k];
            if s <= rtol * smax || s == 0.0 {
                continue;
            }
            let inv_s = 1.0 / s;
            for i in 0..n {
                let vik = self.v[(i, k)] * inv_s;
                if vik == 0.0 {
                    continue;
                }
                for j in 0..m {
                    pinv[(i, j)] += vik * self.u[(j, k)];
                }
            }
        }
        pinv
    }
}

/// Convenience: Moore–Penrose pseudoinverse with the default tolerance
/// `1e-12`.
///
/// # Errors
///
/// See [`Svd::new`].
pub fn pseudoinverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(Svd::new(a)?.pseudoinverse(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_reconstruction(a: &Matrix, tol: f64) {
        let svd = Svd::new(a).unwrap();
        let sigma = Matrix::from_diag(&svd.singular_values);
        let rec = svd.u.matmul(&sigma).matmul(&svd.v.transpose());
        assert!(rec.approx_eq(a, tol), "SVD does not reconstruct A: {rec:?} vs {a:?}");
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values[0] - 4.0).abs() < 1e-12);
        assert!((svd.singular_values[1] - 3.0).abs() < 1e-12);
        check_reconstruction(&a, 1e-12);
    }

    #[test]
    fn tall_and_wide_agree() {
        let a = Matrix::from_fn(5, 3, |i, j| ((2 * i + 3 * j) as f64).sin());
        let tall = Svd::new(&a).unwrap();
        let wide = Svd::new(&a.transpose()).unwrap();
        for (s, t) in tall.singular_values.iter().zip(&wide.singular_values) {
            assert!((s - t).abs() < 1e-10);
        }
        check_reconstruction(&a, 1e-10);
        check_reconstruction(&a.transpose(), 1e-10);
    }

    #[test]
    fn pinv_satisfies_moore_penrose_conditions() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i as f64) * 0.7 + (j as f64) * 1.3).cos() + if i == j { 1.5 } else { 0.0 }
        });
        let p = pseudoinverse(&a).unwrap();
        let apa = a.matmul(&p).matmul(&a);
        assert!(apa.approx_eq(&a, 1e-9), "A·A⁺·A != A");
        let pap = p.matmul(&a).matmul(&p);
        assert!(pap.approx_eq(&p, 1e-9), "A⁺·A·A⁺ != A⁺");
        let ap = a.matmul(&p);
        assert!(ap.approx_eq(&ap.transpose(), 1e-9), "A·A⁺ not symmetric");
        let pa = p.matmul(&a);
        assert!(pa.approx_eq(&pa.transpose(), 1e-9), "A⁺·A not symmetric");
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let p = pseudoinverse(&a).unwrap();
        let inv = crate::lu::inverse(&a).unwrap();
        assert!(p.approx_eq(&inv, 1e-10));
    }

    #[test]
    fn rank_detection() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.cond_2().is_infinite());
    }

    #[test]
    fn least_squares_via_pinv_matches_qr() {
        let a =
            Matrix::from_fn(8, 3, |i, j| ((i + j) as f64).sin() + if j == 0 { 1.0 } else { 0.0 });
        let b: Vec<f64> = (0..8).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let x_pinv = pseudoinverse(&a).unwrap().matvec(&b);
        let x_qr = crate::qr::least_squares(&a, &b).unwrap();
        for (u, v) in x_pinv.iter().zip(&x_qr) {
            assert!((u - v).abs() < 1e-9, "{x_pinv:?} vs {x_qr:?}");
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(Svd::new(&Matrix::zeros(0, 0)).is_err());
    }
}
