//! Dense row-major matrix of `f64` and the core arithmetic used throughout
//! GRAMC.
//!
//! The matrix type is deliberately simple: a contiguous `Vec<f64>` with
//! row-major layout. Every decomposition in this crate ([`crate::lu`],
//! [`crate::qr`], [`crate::svd`], [`crate::eigen`]) operates on this type, and
//! the circuit simulator stamps its nodal equations directly into it.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::error::LinalgError;

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use gramc_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Reshapes in place to `rows × cols` with every entry zeroed, reusing
    /// the existing allocation whenever its capacity suffices (grow-only).
    /// This is the backing primitive for streaming pipelines that pump
    /// differently-sized batches through one scratch matrix without
    /// re-allocating per call.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Extracts the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// Dispatches by shape: once every dimension reaches the packed
    /// threshold, the product runs through the packed register-tile
    /// micro-kernel in `crate::kernel` (B repacked into 4-lane column
    /// panels, 4×4 accumulator tile held in registers — the layout LLVM
    /// vectorizes into `f64x4` ops); smaller shapes use the previous
    /// 4-row blocked kernel ([`matmul_unpacked`](Self::matmul_unpacked)),
    /// whose packing-free setup wins there. Both paths split output row
    /// blocks over scoped threads with the `parallel` feature (see
    /// [`crate::parallel`]). Each output element accumulates over `k` in
    /// ascending order with separate multiply and add regardless of kernel,
    /// blocking, or thread count, so for finite inputs the result is
    /// bit-identical to [`matmul_reference`](Self::matmul_reference).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if crate::kernel::packed_worthwhile(self.rows, self.cols, rhs.cols) {
            let mut out = Matrix::zeros(self.rows, rhs.cols);
            crate::kernel::matmul_packed_into(&mut out, self, rhs);
            return out;
        }
        self.matmul_unpacked(rhs)
    }

    /// Previous-generation blocked product: 4-row axpy micro-kernel over the
    /// unpacked B, row blocks split over scoped threads.
    ///
    /// Still the small-shape path of [`matmul`](Self::matmul) (no packing
    /// setup cost), and kept callable so the perf benches can measure the
    /// packed kernel's speedup against it. Bit-identical to
    /// [`matmul_reference`](Self::matmul_reference) for finite inputs.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_unpacked(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let bc = rhs.cols;
        let mut out = Matrix::zeros(self.rows, bc);
        if bc == 0 || self.cols == 0 || self.rows == 0 {
            return out;
        }
        // Unit of scheduling: MATMUL_ROW_BLOCK output rows (a multiple of
        // the 4-row micro-kernel height).
        let chunk_len = MATMUL_ROW_BLOCK * bc;
        crate::parallel::for_each_chunk_mut(&mut out.data, chunk_len, |start, chunk| {
            matmul_row_block(chunk, start / bc, self, rhs);
        });
        out
    }

    /// Textbook i-j-k triple-loop product (column-strided RHS access, no
    /// blocking, no threads).
    ///
    /// This is the deliberately unoptimized baseline: the perf benches time
    /// [`matmul`](Self::matmul) against it, and the equality tests assert
    /// the two agree bit-for-bit (both accumulate over `k` in ascending
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut sum = 0.0;
                for k in 0..self.cols {
                    sum += self[(i, k)] * rhs[(k, j)];
                }
                out[(i, j)] = sum;
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * xi;
            }
        }
        out
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Extracts the sub-matrix at (`row0`, `col0`) with shape `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols, "block out of bounds");
        Matrix::from_fn(rows, cols, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Writes `block` into this matrix with its top-left corner at
    /// (`row0`, `col0`).
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Matrix) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "set_block out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row0 + i, col0 + j)] = block[(i, j)];
            }
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum())
            .fold(0.0_f64, f64::max)
    }

    /// Induced ∞-norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows).map(|i| self.row(i).iter().map(|v| v.abs()).sum()).fold(0.0_f64, f64::max)
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Returns `true` if `|self - other|` is entry-wise within `tol`.
    ///
    /// Matrices of different shapes are never approximately equal.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if `|self - selfᵀ|` is entry-wise within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "swap_rows out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Horizontally concatenates `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` on top of `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rhs.rows, self.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix { rows: self.rows + rhs.rows, cols: self.cols, data })
    }
}

/// Output rows per scheduling unit of [`Matrix::matmul`] (multiple of the
/// 4-row micro-kernel height; big enough that thread hand-off cost is noise).
const MATMUL_ROW_BLOCK: usize = 32;

/// Computes output rows `row0 ..` of `a · b` into `chunk` (a zeroed slice of
/// whole output rows). Rows are processed four at a time so each `b` row
/// loaded from memory updates four accumulator rows.
fn matmul_row_block(chunk: &mut [f64], row0: usize, a: &Matrix, b: &Matrix) {
    let bc = b.cols;
    let inner = a.cols;
    let nrows = chunk.len() / bc;
    let mut rest = chunk;
    let mut i = row0;
    let end = row0 + nrows;
    while i + 4 <= end {
        let (block, tail) = rest.split_at_mut(4 * bc);
        let (r0, block) = block.split_at_mut(bc);
        let (r1, block) = block.split_at_mut(bc);
        let (r2, r3) = block.split_at_mut(bc);
        for k in 0..inner {
            let a0 = a.data[i * inner + k];
            let a1 = a.data[(i + 1) * inner + k];
            let a2 = a.data[(i + 2) * inner + k];
            let a3 = a.data[(i + 3) * inner + k];
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let brow = &b.data[k * bc..(k + 1) * bc];
            let rows = r0.iter_mut().zip(r1.iter_mut()).zip(r2.iter_mut()).zip(r3.iter_mut());
            for ((((o0, o1), o2), o3), &bv) in rows.zip(brow) {
                *o0 += a0 * bv;
                *o1 += a1 * bv;
                *o2 += a2 * bv;
                *o3 += a3 * bv;
            }
        }
        rest = tail;
        i += 4;
    }
    // Remaining 1–3 rows: plain row-at-a-time axpy.
    while i < end {
        let (row, tail) = rest.split_at_mut(bc);
        for k in 0..inner {
            let aik = a.data[i * inner + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data[k * bc..(k + 1) * bc];
            for (o, &bv) in row.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
        rest = tail;
        i += 1;
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>11.4e}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                assert_eq!(self.shape(), rhs.shape(), "elementwise op shape mismatch");
                let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a $op b).collect();
                Matrix { rows: self.rows, cols: self.cols, data }
            }
        }
        impl $trait<Matrix> for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Neg for Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_reference_bitwise() {
        // Both fast paths (packed register-tile kernel above the size
        // threshold, 4-row unpacked kernel below it, either possibly
        // threaded) must agree with the textbook triple loop bit-for-bit —
        // shapes chosen to hit the 4-row kernel, the 1–3 row tail, ragged
        // panel edges, and multiple scheduling chunks.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 4, 4),
            (7, 9, 5),
            (70, 33, 41),
            (16, 16, 16),
            (31, 17, 19),
            (50, 64, 50),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * k + j) as f64 * 0.7).sin());
            let b = Matrix::from_fn(k, n, |i, j| ((i * n + j) as f64 * 1.3).cos());
            let slow = a.matmul_reference(&b);
            for (label, fast) in
                [("packed-dispatch", a.matmul(&b)), ("unpacked", a.matmul_unpacked(&b))]
            {
                assert_eq!(fast.shape(), slow.shape());
                for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                    assert!(x.to_bits() == y.to_bits(), "{label} {m}x{k}·{k}x{n}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn matmul_property_sweep_matches_reference_bitwise() {
        // Seeded pseudo-random shape sweep: degenerate (empty, 1×N, N×1),
        // non-multiples of the tile size, and shapes straddling the packed
        // threshold, each with sign-mixed data containing exact zeros.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move |hi: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize % hi
        };
        let mut shapes: Vec<(usize, usize, usize)> =
            vec![(0, 0, 0), (0, 3, 2), (2, 0, 3), (3, 2, 0), (1, 37, 1), (1, 1, 37), (37, 1, 1)];
        for _ in 0..12 {
            shapes.push((next(40) + 1, next(40) + 1, next(40) + 1));
        }
        for (m, k, n) in shapes {
            let a = Matrix::from_fn(m, k, |i, j| {
                if (i + 2 * j) % 5 == 0 {
                    0.0
                } else {
                    ((i * k + j) as f64 * 0.31).sin() - 0.3
                }
            });
            let b = Matrix::from_fn(k, n, |i, j| ((i * n + j) as f64 * 0.17).cos() - 0.6);
            let slow = a.matmul_reference(&b);
            for (label, fast) in [("dispatch", a.matmul(&b)), ("unpacked", a.matmul_unpacked(&b))] {
                assert_eq!(fast.shape(), slow.shape());
                for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                    assert!(x.to_bits() == y.to_bits(), "{label} {m}x{k}x{n}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn matmul_degenerate_shapes() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(a.matmul(&b).shape(), (0, 2));
        let c = Matrix::zeros(2, 0);
        let d = Matrix::zeros(0, 4);
        assert_eq!(c.matmul(&d).shape(), (2, 4));
        assert!(c.matmul(&d).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.5, 4.0, -1.0]]);
        assert!(a.matmul(&Matrix::identity(3)).approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.one_norm(), 4.0);
        assert_eq!(m.inf_norm(), 4.0);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let b = m.block(1, 2, 3, 2);
        assert_eq!(b[(0, 0)], 7.0);
        let mut z = Matrix::zeros(5, 5);
        z.set_block(1, 2, &b);
        assert_eq!(z[(3, 3)], 18.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 2)], 3.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 3.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 1.0]]);
        assert_eq!((&a + &b).row(0), &[1.5, 3.0]);
        assert_eq!((&a - &b).row(0), &[0.5, 1.0]);
        assert_eq!((&a * 2.0).row(0), &[2.0, 4.0]);
        assert_eq!((-&a).row(0), &[-1.0, -2.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }
}
