//! Iterative refinement solvers.
//!
//! The paper notes (Section III) that the analog results "may be used as seed
//! solutions to speed up the convergence towards precise final solutions".
//! These routines quantify that claim: conjugate gradient and Richardson
//! iteration accept an arbitrary starting guess, so the benefit of an analog
//! seed is directly measurable as saved iterations.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::{axpy, dot, norm2, sub};

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeSolution {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub residual: f64,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
}

/// Conjugate gradient for symmetric positive-definite systems, starting from
/// the guess `x0` (pass zeros for a cold start, or the analog AMC output for
/// a warm start).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is not square.
/// * [`LinalgError::ShapeMismatch`] if `b`/`x0` lengths disagree with `a`.
pub fn conjugate_gradient(
    a: &Matrix,
    b: &[f64],
    x0: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<IterativeSolution, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { found: a.shape() });
    }
    let n = a.rows();
    if b.len() != n || x0.len() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, 1), found: (b.len(), 1) });
    }
    let norm_b = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut r = sub(b, &a.matvec(&x));
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    for it in 0..max_iters {
        let res = rs_old.sqrt() / norm_b;
        if res <= tol {
            return Ok(IterativeSolution { x, iterations: it, residual: res, converged: true });
        }
        let ap = a.matvec(&p);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD along this direction; bail out with current estimate.
            return Ok(IterativeSolution { x, iterations: it, residual: res, converged: false });
        }
        let alpha = rs_old / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    let res = norm2(&sub(b, &a.matvec(&x))) / norm_b;
    Ok(IterativeSolution { x, iterations: max_iters, residual: res, converged: res <= tol })
}

/// Richardson iteration `x ← x + ω·(b − A·x)` from guess `x0`.
///
/// Converges for `0 < ω < 2/λ_max(A)` when `A` is SPD. Used as the simplest
/// possible digital "refinement" stage after an analog seed solve.
///
/// # Errors
///
/// Same conditions as [`conjugate_gradient`].
pub fn richardson(
    a: &Matrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    tol: f64,
    max_iters: usize,
) -> Result<IterativeSolution, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { found: a.shape() });
    }
    let n = a.rows();
    if b.len() != n || x0.len() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, 1), found: (b.len(), 1) });
    }
    let norm_b = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    for it in 0..max_iters {
        let r = sub(b, &a.matvec(&x));
        let res = norm2(&r) / norm_b;
        if res <= tol {
            return Ok(IterativeSolution { x, iterations: it, residual: res, converged: true });
        }
        axpy(omega, &r, &mut x);
    }
    let res = norm2(&sub(b, &a.matvec(&x))) / norm_b;
    Ok(IterativeSolution { x, iterations: max_iters, residual: res, converged: res <= tol })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{normal_vector, seeded_rng, spd_with_condition};

    #[test]
    fn cg_solves_spd_system() {
        let mut rng = seeded_rng(11);
        let a = spd_with_condition(&mut rng, 20, 50.0);
        let x_true = normal_vector(&mut rng, 20);
        let b = a.matvec(&x_true);
        let sol = conjugate_gradient(&a, &b, &[0.0; 20], 1e-12, 200).unwrap();
        assert!(sol.converged);
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_saves_iterations() {
        // Richardson converges linearly, so a 5 %-accurate seed (mimicking
        // the analog solver's output quality) must save a deterministic
        // number of iterations over a cold start.
        let mut rng = seeded_rng(12);
        let a = spd_with_condition(&mut rng, 32, 50.0);
        let x_true = normal_vector(&mut rng, 32);
        let b = a.matvec(&x_true);
        let omega = 0.9; // λ_max = 1 by construction, so ω < 2 converges.
        let cold = richardson(&a, &b, &vec![0.0; 32], omega, 1e-8, 100_000).unwrap();
        let seed: Vec<f64> = x_true.iter().map(|v| v * 1.05).collect();
        let warm = richardson(&a, &b, &seed, omega, 1e-8, 100_000).unwrap();
        assert!(warm.converged && cold.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} !< cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn richardson_converges_with_valid_omega() {
        let a = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]);
        let b = [1.0, 2.0];
        // λ_max < 2.2, so ω = 0.5 is safe.
        let sol = richardson(&a, &b, &[0.0, 0.0], 0.5, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        let exact = crate::lu::solve(&a, &b).unwrap();
        for (u, v) in sol.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let sol = conjugate_gradient(&a, &[1.0, 1.0], &[0.0, 0.0], 0.0, 0).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(!sol.converged);
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::identity(3);
        assert!(conjugate_gradient(&a, &[1.0], &[0.0; 3], 1e-6, 10).is_err());
        assert!(richardson(&a, &[1.0; 3], &[0.0], 0.1, 1e-6, 10).is_err());
        assert!(conjugate_gradient(&Matrix::zeros(2, 3), &[1.0; 2], &[0.0; 2], 1e-6, 1).is_err());
    }
}
