//! # gramc-linalg
//!
//! Dense linear-algebra substrate for the GRAMC analog matrix computing
//! simulator.
//!
//! The paper ("GRAMC: General-Purpose and Reconfigurable Analog Matrix
//! Computing Architecture", DATE 2025) validates its analog circuits against
//! "numerical results from Python". This crate is that numerical baseline,
//! implemented from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrix with the usual arithmetic,
//! * [`LuDecomposition`] — LU with partial pivoting (solve / inverse / det),
//!   also the engine behind the MNA circuit solves in `gramc-circuit`,
//! * [`QrDecomposition`] — Householder QR and least squares,
//! * [`SymmetricEigen`] / [`power_iteration`] — eigensolvers (EGV baseline),
//! * [`Svd`] / [`pseudoinverse`] — one-sided Jacobi SVD (PINV baseline),
//! * [`iterative`] — CG / Richardson with warm starts, quantifying the
//!   paper's "analog seed solution" claim,
//! * [`random`] — seeded Wishart / Gram / Gaussian workload generators.
//!
//! # Performance architecture
//!
//! The crate is the compute floor for everything above it (crossbar reads,
//! MNA solves, tiled macro dispatch, LeNet inference), so its hot paths are
//! organized as a **raw-speed ladder** — each rung is bit-identical to the
//! path it replaced and benchmarked against it in `BENCH_kernels.json`:
//!
//! 1. **Packed register-tile matmul** (`kernel`): [`Matrix::matmul`]
//!    dispatches large-enough products to a 4×4 register-tile micro-kernel
//!    over a column-packed copy of the right-hand side. Packing changes
//!    only *where* B is read, and every output element still accumulates
//!    its k-terms in ascending order with separate mul + add, so the
//!    result is bit-identical to the blocked kernel
//!    ([`Matrix::matmul_unpacked`]) it replaced.
//! 2. **Blocked parallel LU** ([`LuDecomposition::new`]): right-looking
//!    panel factorization whose trailing-submatrix updates fan out over
//!    the [`parallel`] helpers; column ownership makes every f64 touched
//!    by exactly one thread, so the factors match the serial oracle
//!    ([`LuDecomposition::new_unblocked`]) bitwise at any thread count.
//! 3. **Plane-parallel analog dispatch** (`gramc-core`): the per-plane
//!    drive-matrix products of a bit-sliced operator run through
//!    [`parallel::map_collect`], which preserves output order — thread
//!    count cannot change results.
//! 4. **Fused streaming inference** (`gramc-nn`): im2col writes straight
//!    into reusable whole-batch drive matrices; bias + ReLU + pooling fuse
//!    into the decode pass. Zero per-image heap allocation at steady
//!    state.
//!
//! The [`parallel`] module is the one switchboard for all of this: the
//! `parallel` cargo feature (default on) gates thread spawning, and
//! [`parallel::with_thread_cap`] scopes a deterministic serial fallback
//! for tests and benchmarks. Because every rung is bit-identical, the
//! feature flag and cap change speed, never answers.
//!
//! # Examples
//!
//! ```
//! use gramc_linalg::{random, lu, Matrix};
//!
//! # fn main() -> Result<(), gramc_linalg::LinalgError> {
//! let mut rng = random::seeded_rng(42);
//! let a = random::wishart(&mut rng, 8, 16);
//! let b = random::normal_vector(&mut rng, 8);
//! let x = lu::solve(&a, &b)?;
//! let residual: f64 = gramc_linalg::vector::rel_error(&a.matvec(&x), &b);
//! assert!(residual < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cholesky;
mod error;
mod kernel;
mod matrix;

pub mod eigen;
pub mod iterative;
pub mod lu;
pub mod parallel;
pub mod qr;
pub mod random;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;

pub use eigen::{power_iteration, EigenPair, SymmetricEigen};
pub use iterative::{conjugate_gradient, richardson, IterativeSolution};
pub use lu::LuDecomposition;
pub use qr::QrDecomposition;
pub use svd::{pseudoinverse, Svd};
