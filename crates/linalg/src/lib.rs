//! # gramc-linalg
//!
//! Dense linear-algebra substrate for the GRAMC analog matrix computing
//! simulator.
//!
//! The paper ("GRAMC: General-Purpose and Reconfigurable Analog Matrix
//! Computing Architecture", DATE 2025) validates its analog circuits against
//! "numerical results from Python". This crate is that numerical baseline,
//! implemented from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrix with the usual arithmetic,
//! * [`LuDecomposition`] — LU with partial pivoting (solve / inverse / det),
//!   also the engine behind the MNA circuit solves in `gramc-circuit`,
//! * [`QrDecomposition`] — Householder QR and least squares,
//! * [`SymmetricEigen`] / [`power_iteration`] — eigensolvers (EGV baseline),
//! * [`Svd`] / [`pseudoinverse`] — one-sided Jacobi SVD (PINV baseline),
//! * [`iterative`] — CG / Richardson with warm starts, quantifying the
//!   paper's "analog seed solution" claim,
//! * [`random`] — seeded Wishart / Gram / Gaussian workload generators.
//!
//! # Examples
//!
//! ```
//! use gramc_linalg::{random, lu, Matrix};
//!
//! # fn main() -> Result<(), gramc_linalg::LinalgError> {
//! let mut rng = random::seeded_rng(42);
//! let a = random::wishart(&mut rng, 8, 16);
//! let b = random::normal_vector(&mut rng, 8);
//! let x = lu::solve(&a, &b)?;
//! let residual: f64 = gramc_linalg::vector::rel_error(&a.matvec(&x), &b);
//! assert!(residual < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;

pub mod eigen;
pub mod iterative;
pub mod lu;
pub mod parallel;
pub mod qr;
pub mod random;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;

pub use eigen::{power_iteration, EigenPair, SymmetricEigen};
pub use iterative::{conjugate_gradient, richardson, IterativeSolution};
pub use lu::LuDecomposition;
pub use qr::QrDecomposition;
pub use svd::{pseudoinverse, Svd};
