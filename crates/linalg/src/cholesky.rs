//! Cholesky factorization for symmetric positive-definite systems — the
//! specialized digital baseline for the SPD workloads (Wishart, Gram,
//! screened Poisson) that the analog INV mode targets, at half the cost of
//! LU.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Cholesky factorization `A = L·Lᵀ` with `L` lower-triangular.
///
/// # Examples
///
/// ```
/// use gramc_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), gramc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::InvalidArgument`] if `a` is empty or asymmetric.
    /// * [`LinalgError::Singular`] if a non-positive pivot appears (i.e.
    ///   `a` is not positive definite to working precision).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { found: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        let scale = a.max_abs().max(1.0);
        if !a.is_symmetric(1e-9 * scale) {
            return Err(LinalgError::InvalidArgument("matrix is not symmetric"));
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 1e-13 * scale {
                return Err(LinalgError::Singular { pivot: j });
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch { expected: (n, 1), found: (b.len(), 1) });
        }
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (numerically stable for large SPD matrices).
    pub fn log_det(&self) -> f64 {
        2.0 * self.l.diag().iter().map(|d| d.ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{normal_vector, seeded_rng, spd_with_condition, wishart};

    #[test]
    fn reconstructs_llt() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 5.0, 1.0], &[0.5, 1.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_matches_lu() {
        let mut rng = seeded_rng(400);
        let a = wishart(&mut rng, 12, 24);
        let b = normal_vector(&mut rng, 12);
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (u, v) in x_ch.iter().zip(&x_lu) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_asymmetric_and_nonsquare() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::InvalidArgument(_))));
        assert!(matches!(Cholesky::new(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn log_det_matches_lu_det() {
        let mut rng = seeded_rng(401);
        let a = spd_with_condition(&mut rng, 8, 10.0);
        let ch = Cholesky::new(&a).unwrap();
        let det = crate::lu::det(&a);
        assert!((ch.log_det() - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn rhs_length_validated() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
