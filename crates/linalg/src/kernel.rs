//! Packed register-tile matmul micro-kernels.
//!
//! This is the top rung of the raw-speed ladder for dense products: B is
//! repacked into column panels of [`NR`] lanes laid out contiguously along
//! `k`, and output rows are produced four at a time against one panel with
//! all 16 accumulators held in registers. The inner loop body is 16
//! independent `acc += a * b` updates on four 4-wide lanes — exactly the
//! shape LLVM turns into `f64x4` vector adds/muls on stable Rust, with no
//! `unsafe` and no explicit intrinsics.
//!
//! ## Bit-identity contract
//!
//! Every output element still accumulates over `k` in strictly ascending
//! order with a separate multiply and add per term (no `mul_add`, so no FMA
//! contraction), which makes the packed path bit-identical to
//! [`Matrix::matmul_reference`](crate::Matrix::matmul_reference) for finite
//! inputs — the same contract the previous blocked kernel had. Packing only
//! changes *where* B's values are read from, never the per-element reduction
//! order. Ragged panel edges are zero-padded; padded lanes are computed and
//! discarded, never stored.
//!
//! The same micro-kernel drives the blocked LU trailing update in
//! [`crate::lu`] through the `SUB` flavor (`acc -= a * b`) plus a
//! zero-factor skip that mirrors the serial elimination loop exactly.

use crate::matrix::Matrix;

/// Panel width in columns: one cache line of `f64`, one AVX2 vector.
pub(crate) const NR: usize = 4;

/// Packs rows `rows` (each of length `ncols`) into NR-lane column panels:
/// `buf[jp][k][l] = rows[k][jp * NR + l]`, zero-padded in the last panel.
///
/// `buf` is resized to `ncols.div_ceil(NR) * NR * rows.len()`.
pub(crate) fn pack_panels<'a>(
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    ncols: usize,
    buf: &mut Vec<f64>,
) {
    let kc = rows.len();
    buf.clear();
    buf.resize(ncols.div_ceil(NR) * kc * NR, 0.0);
    pack_panels_into(rows, ncols, buf);
}

/// [`pack_panels`] flavor writing into a pre-sized destination slice (one
/// k-block region of a larger cache-blocked packing).
pub(crate) fn pack_panels_into<'a>(
    rows: impl ExactSizeIterator<Item = &'a [f64]>,
    ncols: usize,
    dst: &mut [f64],
) {
    let kc = rows.len();
    let n_panels = ncols.div_ceil(NR);
    debug_assert_eq!(dst.len(), n_panels * kc * NR);
    for (k, row) in rows.enumerate() {
        debug_assert_eq!(row.len(), ncols);
        for jp in 0..n_panels {
            let slot = &mut dst[jp * kc * NR + k * NR..jp * kc * NR + (k + 1) * NR];
            let j0 = jp * NR;
            let lanes = NR.min(ncols - j0);
            slot[..lanes].copy_from_slice(&row[j0..j0 + lanes]);
        }
    }
}

/// One 4-lane vector of the register tile: `acc ±= broadcast(x) * bv`.
///
/// Written as four independent mul-then-add lane updates so LLVM emits one
/// vector multiply plus one vector add (never an FMA — contraction would
/// change rounding and break bit-identity with the reference loops).
#[inline(always)]
fn lane_update<const SUB: bool>(acc: &mut [f64; NR], x: f64, bv: &[f64]) {
    for (av, &bvl) in acc.iter_mut().zip(bv) {
        if SUB {
            *av -= x * bvl;
        } else {
            *av += x * bvl;
        }
    }
}

/// Updates four output rows (`c`, each of length `n_out`) against all packed
/// panels: `c[r] ±= Σ_k a[r][k] · B[k][..]` with `k` ascending per element.
///
/// `SUB` selects subtraction (the LU trailing update) instead of addition.
/// With `SKIP`, any `k` whose four `a` factors include an exact `0.0` falls
/// back to per-row updates that skip zero factors — matching the
/// `if factor == 0.0 { continue }` of the serial elimination loop bit-for-bit.
pub(crate) fn update_rows_x4<const SUB: bool, const SKIP: bool>(
    c: [&mut [f64]; 4],
    a: [&[f64]; 4],
    packed: &[f64],
    kc: usize,
    n_out: usize,
) {
    let [c0, c1, c2, c3] = c;
    let [a0, a1, a2, a3] = a;
    let (a0, a1) = (&a0[..kc], &a1[..kc]);
    let (a2, a3) = (&a2[..kc], &a3[..kc]);
    let n_panels = n_out.div_ceil(NR);
    let mut jp = 0;
    // Paired-panel (4×8) main loop: eight accumulator vectors in flight so
    // the vector-add dependency chains overlap instead of serializing.
    while jp + 2 <= n_panels && (jp + 2) * NR <= n_out {
        let j0 = jp * NR;
        let pa = &packed[jp * kc * NR..(jp + 1) * kc * NR];
        let pb = &packed[(jp + 1) * kc * NR..(jp + 2) * kc * NR];
        let mut t = [[0.0f64; NR]; 4];
        let mut u = [[0.0f64; NR]; 4];
        for ((tr, ur), cr) in t.iter_mut().zip(u.iter_mut()).zip([&*c0, &*c1, &*c2, &*c3]) {
            tr.copy_from_slice(&cr[j0..j0 + NR]);
            ur.copy_from_slice(&cr[j0 + NR..j0 + 2 * NR]);
        }
        let [mut t0, mut t1, mut t2, mut t3] = t;
        let [mut u0, mut u1, mut u2, mut u3] = u;
        let ks =
            a0.iter().zip(a1).zip(a2).zip(a3).zip(pa.chunks_exact(NR).zip(pb.chunks_exact(NR)));
        for ((((&x0, &x1), &x2), &x3), (bva, bvb)) in ks {
            if SKIP && (x0 == 0.0 || x1 == 0.0 || x2 == 0.0 || x3 == 0.0) {
                let rows = [
                    (&mut t0, &mut u0),
                    (&mut t1, &mut u1),
                    (&mut t2, &mut u2),
                    (&mut t3, &mut u3),
                ];
                for ((tr, ur), xr) in rows.into_iter().zip([x0, x1, x2, x3]) {
                    if xr != 0.0 {
                        lane_update::<SUB>(tr, xr, bva);
                        lane_update::<SUB>(ur, xr, bvb);
                    }
                }
                continue;
            }
            lane_update::<SUB>(&mut t0, x0, bva);
            lane_update::<SUB>(&mut t1, x1, bva);
            lane_update::<SUB>(&mut t2, x2, bva);
            lane_update::<SUB>(&mut t3, x3, bva);
            lane_update::<SUB>(&mut u0, x0, bvb);
            lane_update::<SUB>(&mut u1, x1, bvb);
            lane_update::<SUB>(&mut u2, x2, bvb);
            lane_update::<SUB>(&mut u3, x3, bvb);
        }
        let stores = [(t0, u0), (t1, u1), (t2, u2), (t3, u3)];
        for ((tr, ur), cr) in stores.iter().zip([&mut *c0, &mut *c1, &mut *c2, &mut *c3]) {
            cr[j0..j0 + NR].copy_from_slice(tr);
            cr[j0 + NR..j0 + 2 * NR].copy_from_slice(ur);
        }
        jp += 2;
    }
    // Remaining single (possibly ragged) panels.
    while jp < n_panels {
        let j0 = jp * NR;
        let lanes = NR.min(n_out - j0);
        let panel = &packed[jp * kc * NR..(jp + 1) * kc * NR];
        // Load the current output values into the register tile (padded
        // lanes start at 0.0 and are never stored back).
        let mut acc = [[0.0f64; NR]; 4];
        for (accr, cr) in acc.iter_mut().zip([&*c0, &*c1, &*c2, &*c3]) {
            accr[..lanes].copy_from_slice(&cr[j0..j0 + lanes]);
        }
        let [mut t0, mut t1, mut t2, mut t3] = acc;
        let ks = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
        for ((((&x0, &x1), &x2), &x3), bv) in ks {
            if SKIP && (x0 == 0.0 || x1 == 0.0 || x2 == 0.0 || x3 == 0.0) {
                for (accr, xr) in
                    [&mut t0, &mut t1, &mut t2, &mut t3].into_iter().zip([x0, x1, x2, x3])
                {
                    if xr != 0.0 {
                        lane_update::<SUB>(accr, xr, bv);
                    }
                }
                continue;
            }
            // The hot body: 4 rows × 4 lanes of independent mul+add, each
            // row a broadcast(a) op over one 4-wide panel slice.
            lane_update::<SUB>(&mut t0, x0, bv);
            lane_update::<SUB>(&mut t1, x1, bv);
            lane_update::<SUB>(&mut t2, x2, bv);
            lane_update::<SUB>(&mut t3, x3, bv);
        }
        for (accr, cr) in [t0, t1, t2, t3].iter().zip([&mut *c0, &mut *c1, &mut *c2, &mut *c3]) {
            cr[j0..j0 + lanes].copy_from_slice(&accr[..lanes]);
        }
        jp += 1;
    }
}

/// Single-row edge flavor of [`update_rows_x4`].
pub(crate) fn update_rows_x1<const SUB: bool, const SKIP: bool>(
    c: &mut [f64],
    a: &[f64],
    packed: &[f64],
    kc: usize,
    n_out: usize,
) {
    let a = &a[..kc];
    let n_panels = n_out.div_ceil(NR);
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let lanes = NR.min(n_out - j0);
        let panel = &packed[jp * kc * NR..(jp + 1) * kc * NR];
        let mut acc = [0.0f64; NR];
        acc[..lanes].copy_from_slice(&c[j0..j0 + lanes]);
        for (&x, bv) in a.iter().zip(panel.chunks_exact(NR)) {
            if SKIP && x == 0.0 {
                continue;
            }
            lane_update::<SUB>(&mut acc, x, bv);
        }
        c[j0..j0 + lanes].copy_from_slice(&acc[..lanes]);
    }
}

/// Output rows per scheduling unit (multiple of the 4-row tile height).
const PACKED_ROW_BLOCK: usize = 32;

/// k-extent of one cache block: one packed panel sliver is `KC · NR · 8` =
/// 8 KiB, small enough to sit in L1 while a row block streams through it.
const KC: usize = 256;

/// Panels per cache block (`NC_PANELS · NR` = 64 columns): with `KC` rows,
/// one packed B block is 128 KiB — L2-resident, reused across every row
/// group of a scheduling chunk instead of streaming all of B per row group.
const NC_PANELS: usize = 16;

/// Minimum `m`/`k`/`n` before the packed path beats the unpacked kernel
/// (below this, packing cost dominates and [`Matrix::matmul_unpacked`] wins).
pub(crate) const PACKED_MIN_DIM: usize = 16;

/// Whether [`matmul_packed_into`] is the right kernel for this shape.
pub(crate) fn packed_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m >= PACKED_MIN_DIM && k >= PACKED_MIN_DIM && n >= PACKED_MIN_DIM
}

/// Computes `out = a · b` through the packed register-tile kernel, row
/// blocks distributed over [`crate::parallel`]. `out` must be zeroed and
/// already shaped `a.rows × b.cols`.
///
/// B is packed once into k-block-major panel layout
/// (`[kb][jp][k_local][lane]`), then each row chunk walks cache blocks
/// (`KC` × `NC_PANELS·NR`) of it. Per output element the k blocks are
/// visited in ascending order and `k` ascends within each block, so the
/// per-element reduction order is exactly that of the reference triple loop.
pub(crate) fn matmul_packed_into(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(out.shape(), (m, n));
    let n_panels = n.div_ceil(NR);
    let mut packed = vec![0.0; n_panels * k * NR];
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        let block = &mut packed[k0 * n_panels * NR..(k0 + kc) * n_panels * NR];
        pack_panels_into((k0..k0 + kc).map(|r| b.row(r)), n, block);
    }
    let packed = &packed;
    crate::parallel::for_each_chunk_mut(
        out.as_mut_slice(),
        PACKED_ROW_BLOCK * n,
        |start, chunk| {
            let row0 = start / n;
            let nrows = chunk.len() / n;
            for k0 in (0..k).step_by(KC) {
                let kc = KC.min(k - k0);
                let kb = &packed[k0 * n_panels * NR..(k0 + kc) * n_panels * NR];
                for jp0 in (0..n_panels).step_by(NC_PANELS) {
                    let jp1 = (jp0 + NC_PANELS).min(n_panels);
                    let jblock = &kb[jp0 * kc * NR..jp1 * kc * NR];
                    let j0 = jp0 * NR;
                    let n_sub = (jp1 * NR).min(n) - j0;
                    let mut rest = &mut *chunk;
                    let mut i = row0;
                    let end = row0 + nrows;
                    while i + 4 <= end {
                        let (r0, tail) = rest.split_at_mut(n);
                        let (r1, tail) = tail.split_at_mut(n);
                        let (r2, tail) = tail.split_at_mut(n);
                        let (r3, tail) = tail.split_at_mut(n);
                        update_rows_x4::<false, false>(
                            [
                                &mut r0[j0..j0 + n_sub],
                                &mut r1[j0..j0 + n_sub],
                                &mut r2[j0..j0 + n_sub],
                                &mut r3[j0..j0 + n_sub],
                            ],
                            [
                                &a.row(i)[k0..k0 + kc],
                                &a.row(i + 1)[k0..k0 + kc],
                                &a.row(i + 2)[k0..k0 + kc],
                                &a.row(i + 3)[k0..k0 + kc],
                            ],
                            jblock,
                            kc,
                            n_sub,
                        );
                        rest = tail;
                        i += 4;
                    }
                    while i < end {
                        let (r0, tail) = rest.split_at_mut(n);
                        update_rows_x1::<false, false>(
                            &mut r0[j0..j0 + n_sub],
                            &a.row(i)[k0..k0 + kc],
                            jblock,
                            kc,
                            n_sub,
                        );
                        rest = tail;
                        i += 1;
                    }
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * cols + j) as f64 * seed + seed).sin())
    }

    #[test]
    fn pack_panels_layout_and_padding() {
        let b = Matrix::from_fn(3, 6, |i, j| (i * 6 + j) as f64);
        let mut buf = Vec::new();
        pack_panels((0..3).map(|r| b.row(r)), 6, &mut buf);
        assert_eq!(buf.len(), 2 * 3 * NR);
        // Panel 0, k = 1 holds b[1][0..4].
        assert_eq!(&buf[NR..2 * NR], &[6.0, 7.0, 8.0, 9.0]);
        // Panel 1, k = 2 holds b[2][4..6] then zero padding.
        assert_eq!(&buf[3 * NR + 2 * NR..3 * NR + 3 * NR], &[16.0, 17.0, 0.0, 0.0]);
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_reference() {
        // Shapes straddling every edge case: tile tails in m and n,
        // single-lane panels, k below/above the panel stride.
        for &(m, k, n) in
            &[(16usize, 16usize, 16usize), (17, 19, 21), (20, 16, 18), (33, 47, 65), (64, 64, 64)]
        {
            let a = seeded(m, k, 0.7);
            let b = seeded(k, n, 1.3);
            let mut out = Matrix::zeros(m, n);
            matmul_packed_into(&mut out, &a, &b);
            let reference = a.matmul_reference(&b);
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}·{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn subtract_flavor_with_zero_skip_matches_serial_elimination() {
        // C -= A·B with scattered exact zeros in A, against a serial loop
        // that skips zero factors the way LU elimination does.
        let (m, kc, n) = (9usize, 8usize, 11usize);
        let a =
            Matrix::from_fn(
                m,
                kc,
                |i, j| if (i + j) % 3 == 0 { 0.0 } else { (i * j) as f64 * 0.1 - 1.0 },
            );
        let b = seeded(kc, n, 0.9);
        let mut c_fast = seeded(m, n, 2.1);
        let mut c_ref = c_fast.clone();
        let mut packed = Vec::new();
        pack_panels((0..kc).map(|r| b.row(r)), n, &mut packed);
        for i in 0..m {
            if i + 4 <= m && i % 4 == 0 {
                let rows = c_fast.as_mut_slice()[i * n..(i + 4) * n].split_at_mut(n);
                let (r0, tail) = rows;
                let (r1, tail) = tail.split_at_mut(n);
                let (r2, r3) = tail.split_at_mut(n);
                update_rows_x4::<true, true>(
                    [r0, r1, r2, r3],
                    [a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3)],
                    &packed,
                    kc,
                    n,
                );
            } else if i % 4 == 0 || i >= m - (m % 4) {
                let row = &mut c_fast.as_mut_slice()[i * n..(i + 1) * n];
                update_rows_x1::<true, true>(row, a.row(i), &packed, kc, n);
            }
        }
        for i in 0..m {
            for k in 0..kc {
                let factor = a[(i, k)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    c_ref[(i, j)] -= factor * b[(k, j)];
                }
            }
        }
        for (x, y) in c_fast.as_slice().iter().zip(c_ref.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
