//! Error type shared by all decompositions and solvers in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape that was actually supplied.
        found: (usize, usize),
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Shape required by the operation.
        expected: (usize, usize),
        /// Shape that was actually supplied.
        found: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Pivot index at which factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual measure at the point of failure.
        residual: f64,
    },
    /// An argument was outside the routine's domain (e.g. empty matrix).
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { found } => {
                write!(f, "expected a square matrix, found {}x{}", found.0, found.1)
            }
            LinalgError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision at pivot {pivot}")
            }
            LinalgError::NoConvergence { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:.3e})")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::Singular { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
        let e = LinalgError::ShapeMismatch { expected: (2, 2), found: (3, 1) };
        assert!(e.to_string().contains("2x2"));
        assert!(e.to_string().contains("3x1"));
        let e = LinalgError::NoConvergence { iterations: 7, residual: 0.5 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
