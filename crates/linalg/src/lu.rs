//! LU factorization with partial pivoting: the workhorse behind the digital
//! baseline solver (`x = A⁻¹b`) and the MNA solves in `gramc-circuit`.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` has a unit diagonal and is stored together with `U` in a single packed
/// matrix. Construct with [`LuDecomposition::new`], then call
/// [`solve`](LuDecomposition::solve) any number of times.
///
/// # Examples
///
/// ```
/// use gramc_linalg::{Matrix, LuDecomposition};
///
/// # fn main() -> Result<(), gramc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, below diagonal) and U (upper, including diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (±1), used for the determinant.
    perm_sign: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
const SINGULARITY_TOL: f64 = 1e-13;

/// Minimum RHS columns per thread before `solve_matrix` splits the batch.
const PAR_SOLVE_MIN_COLS: usize = 16;

/// Panel width of the blocked factorization.
const LU_PANEL: usize = 32;

/// Smallest dimension routed to the blocked factorization (below this the
/// panel/trailing split is pure overhead).
const LU_BLOCK_MIN: usize = 64;

/// Trailing-update rows per scheduling unit (multiple of the 4-row tile).
const LU_TRAIL_ROW_BLOCK: usize = 32;

impl LuDecomposition {
    /// Factorizes `a`.
    ///
    /// Dispatches by size: at `LU_BLOCK_MIN` and above this runs the
    /// blocked right-looking factorization (serial panel of `LU_PANEL`
    /// columns, then the O(n²)-per-panel trailing-submatrix update through
    /// the packed register-tile subtract kernel of `crate::kernel`, row
    /// blocks distributed over [`crate::parallel`]); smaller matrices use
    /// the serial unblocked loop
    /// ([`new_unblocked`](Self::new_unblocked)). Both paths perform the
    /// same eliminations in the same per-element order on the same values,
    /// so they choose identical pivots and produce bit-identical factors —
    /// with or without the `parallel` feature.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot smaller than the singularity
    ///   threshold (relative to the matrix scale) is encountered.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.is_square() && a.rows() >= LU_BLOCK_MIN {
            Self::new_blocked(a)
        } else {
            Self::new_unblocked(a)
        }
    }

    /// Serial unblocked factorization: the reference path every fast flavor
    /// is verified against, and the small-size path of [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// See [`new`](Self::new).
    pub fn new_unblocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { found: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        let scale = a.max_abs().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest remaining entry in column k
            // to the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Self { lu, perm, perm_sign })
    }

    /// Blocked right-looking factorization (see [`new`](Self::new) for the
    /// dispatch story and the equivalence argument).
    ///
    /// Each elimination step still divides by the pivot, updates with a
    /// separate multiply and subtract, and skips exact-zero factors — only
    /// *when* the trailing columns receive their updates moves (deferred to
    /// the panel boundary), never the per-element update order or values.
    fn new_blocked(a: &Matrix) -> Result<Self, LinalgError> {
        debug_assert!(a.is_square() && a.rows() > 0);
        let n = a.rows();
        let scale = a.max_abs().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut packed = Vec::new();

        for k0 in (0..n).step_by(LU_PANEL) {
            let k1 = (k0 + LU_PANEL).min(n);
            // Panel factorization: full-height columns k0..k1, eliminations
            // applied within the panel only. Every column is fully updated
            // by the time its pivot search runs (in-panel steps here,
            // earlier panels via their trailing updates), so pivot choices
            // match the unblocked loop exactly.
            for k in k0..k1 {
                let mut pivot_row = k;
                let mut pivot_val = lu[(k, k)].abs();
                for i in (k + 1)..n {
                    let v = lu[(i, k)].abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
                if pivot_val <= SINGULARITY_TOL * scale {
                    return Err(LinalgError::Singular { pivot: k });
                }
                if pivot_row != k {
                    lu.swap_rows(k, pivot_row);
                    perm.swap(k, pivot_row);
                    perm_sign = -perm_sign;
                }
                let pivot = lu[(k, k)];
                let data = lu.as_mut_slice();
                let (top, below) = data.split_at_mut((k + 1) * n);
                let urow = &top[k * n + k + 1..k * n + k1];
                for row in below.chunks_exact_mut(n) {
                    let factor = row[k] / pivot;
                    row[k] = factor;
                    if factor == 0.0 {
                        continue;
                    }
                    for (x, &u) in row[k + 1..k1].iter_mut().zip(urow) {
                        *x -= factor * u;
                    }
                }
            }
            if k1 == n {
                break;
            }
            // U12 update: panel rows catch up on columns k1..n, ascending
            // elimination step m per row — the updates the unblocked loop
            // interleaved with the panel's.
            {
                let data = lu.as_mut_slice();
                for k in (k0 + 1)..k1 {
                    let (head, tail) = data.split_at_mut(k * n);
                    let (row_k_head, row_k_trail) = tail[..n].split_at_mut(k1);
                    for m in k0..k {
                        let factor = row_k_head[m];
                        if factor == 0.0 {
                            continue;
                        }
                        let urow = &head[m * n + k1..(m + 1) * n];
                        for (x, &u) in row_k_trail.iter_mut().zip(urow) {
                            *x -= factor * u;
                        }
                    }
                }
            }
            // Trailing update: A22 -= L21 · U12 through the packed subtract
            // micro-kernel, 4-row groups distributed over scoped threads.
            let nb = k1 - k0;
            let ntrail = n - k1;
            {
                let data = lu.as_slice();
                crate::kernel::pack_panels(
                    (k0..k1).map(|r| &data[r * n + k1..(r + 1) * n]),
                    ntrail,
                    &mut packed,
                );
            }
            let packed_ref = &packed;
            let data = lu.as_mut_slice();
            let (_, below) = data.split_at_mut(k1 * n);
            crate::parallel::for_each_chunk_mut(below, LU_TRAIL_ROW_BLOCK * n, |_, chunk| {
                let nrows = chunk.len() / n;
                let mut rest = chunk;
                let mut done = 0;
                while done + 4 <= nrows {
                    let (r0, tail) = rest.split_at_mut(n);
                    let (r1, tail) = tail.split_at_mut(n);
                    let (r2, tail) = tail.split_at_mut(n);
                    let (r3, tail) = tail.split_at_mut(n);
                    let (l0, c0) = r0.split_at_mut(k1);
                    let (l1, c1) = r1.split_at_mut(k1);
                    let (l2, c2) = r2.split_at_mut(k1);
                    let (l3, c3) = r3.split_at_mut(k1);
                    crate::kernel::update_rows_x4::<true, true>(
                        [c0, c1, c2, c3],
                        [&l0[k0..], &l1[k0..], &l2[k0..], &l3[k0..]],
                        packed_ref,
                        nb,
                        ntrail,
                    );
                    rest = tail;
                    done += 4;
                }
                while done < nrows {
                    let (r0, tail) = rest.split_at_mut(n);
                    let (l0, c0) = r0.split_at_mut(k1);
                    crate::kernel::update_rows_x1::<true, true>(
                        c0,
                        &l0[k0..],
                        packed_ref,
                        nb,
                        ntrail,
                    );
                    rest = tail;
                    done += 1;
                }
            });
        }
        Ok(Self { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch { expected: (n, 1), found: (b.len(), 1) });
        }
        // Forward substitution with permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for all right-hand sides at once.
    ///
    /// All columns are forward/back-substituted in place on one row-major
    /// buffer (contiguous row operations, no per-column `Vec` allocation —
    /// the historical column-by-column path cost an allocation plus a
    /// strided gather/scatter per RHS). With the `parallel` feature and
    /// enough columns, independent column blocks are solved on scoped
    /// threads. [`solve`](Self::solve) remains the single-RHS entry point
    /// and this method matches it column-for-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch { expected: (n, b.cols()), found: b.shape() });
        }
        let m = b.cols();
        if m == 0 {
            return Ok(Matrix::zeros(n, 0));
        }
        let threads = crate::parallel::max_threads();
        if cfg!(feature = "parallel") && threads > 1 && m >= 2 * PAR_SOLVE_MIN_COLS {
            // Column blocks are independent systems: extract, solve each
            // block in place on its own thread, reassemble. The per-block
            // substitution is identical to the serial path, so results do
            // not depend on the split.
            let block_cols = m.div_ceil(threads).max(PAR_SOLVE_MIN_COLS);
            let mut blocks: Vec<Matrix> = (0..m)
                .step_by(block_cols)
                .map(|c0| b.block(0, c0, n, block_cols.min(m - c0)))
                .collect();
            crate::parallel::for_each_chunk_mut(&mut blocks, 1, |_, blk| {
                self.solve_in_place(&mut blk[0]);
            });
            let mut x = Matrix::zeros(n, m);
            for (bi, blk) in blocks.iter().enumerate() {
                x.set_block(0, bi * block_cols, blk);
            }
            return Ok(x);
        }
        let mut x = Matrix::zeros(n, m);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        self.solve_rows_in_place(&mut x);
        Ok(x)
    }

    /// Permutes `b`'s rows and substitutes in place (helper for the parallel
    /// column-block path, where each block arrives unpermuted).
    fn solve_in_place(&self, b: &mut Matrix) {
        let n = self.dim();
        let mut x = Matrix::zeros(n, b.cols());
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        self.solve_rows_in_place(&mut x);
        *b = x;
    }

    /// Forward/back-substitutes every column of the already row-permuted
    /// `x` in place.
    fn solve_rows_in_place(&self, x: &mut Matrix) {
        let n = self.dim();
        let m = x.cols();
        let data = x.as_mut_slice();
        // Forward substitution on unit-lower L: row_i -= l_ij · row_j, j < i.
        for i in 1..n {
            let (done, rest) = data.split_at_mut(i * m);
            let xi = &mut rest[..m];
            for j in 0..i {
                let lij = self.lu[(i, j)];
                if lij == 0.0 {
                    continue;
                }
                let xj = &done[j * m..(j + 1) * m];
                for (a, &b) in xi.iter_mut().zip(xj) {
                    *a -= lij * b;
                }
            }
        }
        // Back substitution on U: row_i -= u_ij · row_j (j > i), then /= u_ii.
        for i in (0..n).rev() {
            let (head, solved) = data.split_at_mut((i + 1) * m);
            let xi = &mut head[i * m..];
            for j in (i + 1)..n {
                let uij = self.lu[(i, j)];
                if uij == 0.0 {
                    continue;
                }
                let xj = &solved[(j - i - 1) * m..(j - i) * m];
                for (a, &b) in xi.iter_mut().zip(xj) {
                    *a -= uij * b;
                }
            }
            // True division (not multiplication by a reciprocal) so every
            // column matches the single-RHS `solve` path bit-for-bit.
            let pivot = self.lu[(i, i)];
            for a in xi.iter_mut() {
                *a /= pivot;
            }
        }
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        self.perm_sign * self.lu.diag().iter().product::<f64>()
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully constructed
    /// factorization, but the signature is kept fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience: solve `A·x = b` with a fresh LU factorization.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience: matrix inverse via LU.
///
/// # Errors
///
/// See [`LuDecomposition::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    LuDecomposition::new(a)?.inverse()
}

/// Convenience: determinant via LU. Returns 0 for singular matrices.
pub fn det(a: &Matrix) -> f64 {
    match LuDecomposition::new(a) {
        Ok(lu) => lu.det(),
        Err(_) => 0.0,
    }
}

/// Estimates the 1-norm condition number `‖A‖₁·‖A⁻¹‖₁` (exact inverse, so
/// this is the true κ₁ rather than an estimate; cost is O(n³)).
///
/// # Errors
///
/// Returns an error if `a` is singular or not square.
pub fn cond_1(a: &Matrix) -> Result<f64, LinalgError> {
    let inv = inverse(a)?;
    Ok(a.one_norm() * inv.one_norm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(2), 1e-12));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_triangular_and_permuted() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        assert!((det(&a) - 6.0).abs() < 1e-12);
        // Row-swapped version flips the sign.
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 5.0]]);
        assert!((det(&b) + 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuDecomposition::new(&a) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
        assert_eq!(det(&a), 0.0);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_matrix_matches_per_column_solve_exactly() {
        // The in-place multi-RHS sweep performs the same operations in the
        // same order as the single-RHS path, so columns agree bit-for-bit —
        // including sizes large enough to trigger the column-block split.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + (i as f64).sin()
            } else {
                ((3 * i + 7 * j) as f64 * 0.37).cos() * 0.4
            }
        });
        let lu = LuDecomposition::new(&a).unwrap();
        for m in [1usize, 3, 40] {
            let b = Matrix::from_fn(n, m, |i, j| ((i * m + j) as f64 * 0.61).sin());
            let x = lu.solve_matrix(&b).unwrap();
            for j in 0..m {
                let xj = lu.solve(&b.col(j)).unwrap();
                for i in 0..n {
                    assert!(
                        x[(i, j)].to_bits() == xj[i].to_bits(),
                        "m={m} column {j} row {i}: {} vs {}",
                        x[(i, j)],
                        xj[i]
                    );
                }
            }
        }
    }

    fn assert_factorizations_bit_identical(a: &Matrix, label: &str) {
        let blocked = LuDecomposition::new_blocked(a).unwrap();
        let serial = LuDecomposition::new_unblocked(a).unwrap();
        assert_eq!(blocked.perm, serial.perm, "{label}: pivot choices diverged");
        assert_eq!(blocked.perm_sign, serial.perm_sign, "{label}");
        for (x, y) in blocked.lu.as_slice().iter().zip(serial.lu.as_slice()) {
            assert!(x.to_bits() == y.to_bits(), "{label}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_factorization_matches_unblocked_bitwise() {
        // Sizes straddling panel boundaries (multiples of the panel, one
        // off, panel-sized, sub-panel) with dense sign-mixed data.
        for n in [5usize, 31, 32, 33, 64, 97, 130] {
            let a = Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    3.0 + (i as f64 * 0.3).sin()
                } else {
                    ((5 * i + 3 * j) as f64 * 0.29).sin() * 0.8 - 0.1
                }
            });
            assert_factorizations_bit_identical(&a, &format!("dense n={n}"));
        }
    }

    #[test]
    fn blocked_factorization_matches_unblocked_on_structured_matrices() {
        // Sparse/structured inputs exercise the exact-zero factor skip and
        // heavy pivoting: a permuted banded matrix and a permuted identity.
        let n = 70;
        let banded = Matrix::from_fn(n, n, |i, j| {
            let d = i.abs_diff(j);
            if d == 0 {
                4.0
            } else if d <= 2 {
                ((i + j) as f64 * 0.41).cos()
            } else {
                0.0
            }
        });
        assert_factorizations_bit_identical(&banded, "banded");
        let mut permuted = Matrix::zeros(n, n);
        for i in 0..n {
            permuted[(i, (i * 13 + 5) % n)] = 1.0 + i as f64 * 0.01;
        }
        assert_factorizations_bit_identical(&permuted, "permuted diagonal");
    }

    #[test]
    fn blocked_factorization_rejects_singular_like_unblocked() {
        // Make a 70×70 matrix singular by duplicating a row; both paths must
        // fail with the Singular error rather than producing garbage.
        let n = 70;
        let mut a = Matrix::from_fn(n, n, |i, j| ((3 * i + 7 * j) as f64 * 0.23).sin());
        let dup = a.row(10).to_vec();
        a.row_mut(50).copy_from_slice(&dup);
        assert!(matches!(LuDecomposition::new_blocked(&a), Err(LinalgError::Singular { .. })));
        assert!(matches!(LuDecomposition::new_unblocked(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn dispatched_factorization_solves_above_block_threshold() {
        let n = 96;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                5.0
            } else {
                ((i * n + j) as f64 * 0.13).sin() * 0.5
            }
        });
        let lu = LuDecomposition::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_empty_rhs() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        let x = lu.solve_matrix(&Matrix::zeros(3, 0)).unwrap();
        assert_eq!(x.shape(), (3, 0));
    }

    #[test]
    fn cond_of_identity_is_one() {
        let c = cond_1(&Matrix::identity(4)).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rhs_length_is_validated() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
