//! LU factorization with partial pivoting: the workhorse behind the digital
//! baseline solver (`x = A⁻¹b`) and the MNA solves in `gramc-circuit`.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` has a unit diagonal and is stored together with `U` in a single packed
/// matrix. Construct with [`LuDecomposition::new`], then call
/// [`solve`](LuDecomposition::solve) any number of times.
///
/// # Examples
///
/// ```
/// use gramc_linalg::{Matrix, LuDecomposition};
///
/// # fn main() -> Result<(), gramc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, below diagonal) and U (upper, including diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (±1), used for the determinant.
    perm_sign: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
const SINGULARITY_TOL: f64 = 1e-13;

/// Minimum RHS columns per thread before `solve_matrix` splits the batch.
const PAR_SOLVE_MIN_COLS: usize = 16;

impl LuDecomposition {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot smaller than the singularity
    ///   threshold (relative to the matrix scale) is encountered.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { found: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        let scale = a.max_abs().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest remaining entry in column k
            // to the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Self { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch { expected: (n, 1), found: (b.len(), 1) });
        }
        // Forward substitution with permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for all right-hand sides at once.
    ///
    /// All columns are forward/back-substituted in place on one row-major
    /// buffer (contiguous row operations, no per-column `Vec` allocation —
    /// the historical column-by-column path cost an allocation plus a
    /// strided gather/scatter per RHS). With the `parallel` feature and
    /// enough columns, independent column blocks are solved on scoped
    /// threads. [`solve`](Self::solve) remains the single-RHS entry point
    /// and this method matches it column-for-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch { expected: (n, b.cols()), found: b.shape() });
        }
        let m = b.cols();
        if m == 0 {
            return Ok(Matrix::zeros(n, 0));
        }
        let threads = crate::parallel::max_threads();
        if cfg!(feature = "parallel") && threads > 1 && m >= 2 * PAR_SOLVE_MIN_COLS {
            // Column blocks are independent systems: extract, solve each
            // block in place on its own thread, reassemble. The per-block
            // substitution is identical to the serial path, so results do
            // not depend on the split.
            let block_cols = m.div_ceil(threads).max(PAR_SOLVE_MIN_COLS);
            let mut blocks: Vec<Matrix> = (0..m)
                .step_by(block_cols)
                .map(|c0| b.block(0, c0, n, block_cols.min(m - c0)))
                .collect();
            crate::parallel::for_each_chunk_mut(&mut blocks, 1, |_, blk| {
                self.solve_in_place(&mut blk[0]);
            });
            let mut x = Matrix::zeros(n, m);
            for (bi, blk) in blocks.iter().enumerate() {
                x.set_block(0, bi * block_cols, blk);
            }
            return Ok(x);
        }
        let mut x = Matrix::zeros(n, m);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        self.solve_rows_in_place(&mut x);
        Ok(x)
    }

    /// Permutes `b`'s rows and substitutes in place (helper for the parallel
    /// column-block path, where each block arrives unpermuted).
    fn solve_in_place(&self, b: &mut Matrix) {
        let n = self.dim();
        let mut x = Matrix::zeros(n, b.cols());
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        self.solve_rows_in_place(&mut x);
        *b = x;
    }

    /// Forward/back-substitutes every column of the already row-permuted
    /// `x` in place.
    fn solve_rows_in_place(&self, x: &mut Matrix) {
        let n = self.dim();
        let m = x.cols();
        let data = x.as_mut_slice();
        // Forward substitution on unit-lower L: row_i -= l_ij · row_j, j < i.
        for i in 1..n {
            let (done, rest) = data.split_at_mut(i * m);
            let xi = &mut rest[..m];
            for j in 0..i {
                let lij = self.lu[(i, j)];
                if lij == 0.0 {
                    continue;
                }
                let xj = &done[j * m..(j + 1) * m];
                for (a, &b) in xi.iter_mut().zip(xj) {
                    *a -= lij * b;
                }
            }
        }
        // Back substitution on U: row_i -= u_ij · row_j (j > i), then /= u_ii.
        for i in (0..n).rev() {
            let (head, solved) = data.split_at_mut((i + 1) * m);
            let xi = &mut head[i * m..];
            for j in (i + 1)..n {
                let uij = self.lu[(i, j)];
                if uij == 0.0 {
                    continue;
                }
                let xj = &solved[(j - i - 1) * m..(j - i) * m];
                for (a, &b) in xi.iter_mut().zip(xj) {
                    *a -= uij * b;
                }
            }
            // True division (not multiplication by a reciprocal) so every
            // column matches the single-RHS `solve` path bit-for-bit.
            let pivot = self.lu[(i, i)];
            for a in xi.iter_mut() {
                *a /= pivot;
            }
        }
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        self.perm_sign * self.lu.diag().iter().product::<f64>()
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully constructed
    /// factorization, but the signature is kept fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience: solve `A·x = b` with a fresh LU factorization.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience: matrix inverse via LU.
///
/// # Errors
///
/// See [`LuDecomposition::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    LuDecomposition::new(a)?.inverse()
}

/// Convenience: determinant via LU. Returns 0 for singular matrices.
pub fn det(a: &Matrix) -> f64 {
    match LuDecomposition::new(a) {
        Ok(lu) => lu.det(),
        Err(_) => 0.0,
    }
}

/// Estimates the 1-norm condition number `‖A‖₁·‖A⁻¹‖₁` (exact inverse, so
/// this is the true κ₁ rather than an estimate; cost is O(n³)).
///
/// # Errors
///
/// Returns an error if `a` is singular or not square.
pub fn cond_1(a: &Matrix) -> Result<f64, LinalgError> {
    let inv = inverse(a)?;
    Ok(a.one_norm() * inv.one_norm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(2), 1e-12));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_triangular_and_permuted() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        assert!((det(&a) - 6.0).abs() < 1e-12);
        // Row-swapped version flips the sign.
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 5.0]]);
        assert!((det(&b) + 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuDecomposition::new(&a) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
        assert_eq!(det(&a), 0.0);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_matrix_matches_per_column_solve_exactly() {
        // The in-place multi-RHS sweep performs the same operations in the
        // same order as the single-RHS path, so columns agree bit-for-bit —
        // including sizes large enough to trigger the column-block split.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + (i as f64).sin()
            } else {
                ((3 * i + 7 * j) as f64 * 0.37).cos() * 0.4
            }
        });
        let lu = LuDecomposition::new(&a).unwrap();
        for m in [1usize, 3, 40] {
            let b = Matrix::from_fn(n, m, |i, j| ((i * m + j) as f64 * 0.61).sin());
            let x = lu.solve_matrix(&b).unwrap();
            for j in 0..m {
                let xj = lu.solve(&b.col(j)).unwrap();
                for i in 0..n {
                    assert!(
                        x[(i, j)].to_bits() == xj[i].to_bits(),
                        "m={m} column {j} row {i}: {} vs {}",
                        x[(i, j)],
                        xj[i]
                    );
                }
            }
        }
    }

    #[test]
    fn solve_matrix_empty_rhs() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        let x = lu.solve_matrix(&Matrix::zeros(3, 0)).unwrap();
        assert_eq!(x.shape(), (3, 0));
    }

    #[test]
    fn cond_of_identity_is_one() {
        let c = cond_1(&Matrix::identity(4)).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rhs_length_is_validated() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
