//! Free functions on `&[f64]` vectors: dot products, norms, AXPY and the
//! small utilities the solvers and circuit code share.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Sum of absolute entries.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scales a slice into a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Normalizes `a` to unit Euclidean norm, returning the normalized vector and
/// the original norm. A zero vector is returned unchanged with norm 0.
pub fn normalize(a: &[f64]) -> (Vec<f64>, f64) {
    let n = norm2(a);
    if n == 0.0 {
        (a.to_vec(), 0.0)
    } else {
        (scale(a, 1.0 / n), n)
    }
}

/// Relative error `‖a − b‖₂ / ‖b‖₂` of `a` against reference `b`.
///
/// Returns `‖a‖₂` if the reference is exactly zero.
pub fn rel_error(a: &[f64], b: &[f64]) -> f64 {
    let nb = norm2(b);
    let diff = norm2(&sub(a, b));
    if nb == 0.0 {
        diff
    } else {
        diff / nb
    }
}

/// Relative error of `a` against `b` with the sign of `a` chosen to best match
/// `b` — eigenvectors and singular vectors are defined only up to sign.
pub fn rel_error_up_to_sign(a: &[f64], b: &[f64]) -> f64 {
    let direct = rel_error(a, b);
    let flipped = rel_error(&scale(a, -1.0), b);
    direct.min(flipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_handles_zero() {
        let (v, n) = normalize(&[0.0, 0.0]);
        assert_eq!(v, vec![0.0, 0.0]);
        assert_eq!(n, 0.0);
        let (v, n) = normalize(&[0.0, 2.0]);
        assert_eq!(v, vec![0.0, 1.0]);
        assert_eq!(n, 2.0);
    }

    #[test]
    fn relative_errors() {
        assert!(rel_error(&[1.0, 0.0], &[1.0, 0.0]) < 1e-15);
        assert!((rel_error(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        // Sign-agnostic comparison: flipped vector is a perfect match.
        assert!(rel_error_up_to_sign(&[-1.0, -2.0], &[1.0, 2.0]) < 1e-15);
        // Zero reference falls back to absolute difference.
        assert_eq!(rel_error(&[3.0, 4.0], &[0.0, 0.0]), 5.0);
    }
}
