//! Householder QR factorization and least-squares solves.
//!
//! Used by the digital baseline for the PINV experiment (Fig. 4c) and by the
//! SVD as a pre-conditioning step for very tall matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// QR factorization `A = Q·R` via Householder reflections (`m ≥ n` required
/// for the thin form used here).
///
/// # Examples
///
/// ```
/// use gramc_linalg::{Matrix, QrDecomposition};
///
/// # fn main() -> Result<(), gramc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = QrDecomposition::new(&a)?;
/// let x = qr.solve_least_squares(&[1.0, 2.0, 4.0])?;
/// // Best-fit line through (0,1), (1,2), (2,4): intercept ≈ 0.833, slope = 1.5.
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar β of each reflector `H = I − β·v·vᵀ`.
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl QrDecomposition {
    /// Factorizes `a` (must satisfy `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] for under-determined shapes
    /// (`rows < cols`) or empty input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        if m < n {
            return Err(LinalgError::InvalidArgument("QR requires rows >= cols"));
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut norm_x = 0.0;
            for i in k..m {
                norm_x += qr[(i, k)] * qr[(i, k)];
            }
            let norm_x = norm_x.sqrt();
            if norm_x == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm_x } else { norm_x };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1..m, k]] (unnormalized); β = 2 / vᵀv
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            betas[k] = beta;

            // Apply H to the trailing columns k..n. The reflector vector is
            // (v0, qr[k+1.., k]); column k itself becomes (alpha, v-tail).
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let s = beta * dot;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            qr[(k, k)] = alpha;
            // Store the reflector tail scaled so v0 is implicit: we keep the
            // tail as-is and remember v0 separately cannot be done without
            // extra storage, so normalize the tail by v0 (standard LAPACK
            // convention with v0 = 1).
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            } else {
                betas[k] = 0.0;
            }
        }
        Ok(Self { qr, betas, rows: m, cols: n })
    }

    /// Applies `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        for k in 0..self.cols {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = [1, qr[k+1..m, k]]
            let mut dot = y[k];
            for i in (k + 1)..self.rows {
                dot += self.qr[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..self.rows {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// The upper-triangular factor `R` (thin, `cols × cols`).
    pub fn r(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.cols, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// The thin orthonormal factor `Q` (`rows × cols`).
    pub fn q(&self) -> Matrix {
        // Apply the reflectors to the first `cols` columns of the identity.
        let mut q = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let mut e = vec![0.0; self.rows];
            e[j] = 1.0;
            // Q·e = H₀·H₁·…·H_{n−1}·e applied in reverse order.
            for k in (0..self.cols).rev() {
                let beta = self.betas[k];
                if beta == 0.0 {
                    continue;
                }
                let mut dot = e[k];
                for i in (k + 1)..self.rows {
                    dot += self.qr[(i, k)] * e[i];
                }
                let s = beta * dot;
                e[k] -= s;
                for i in (k + 1)..self.rows {
                    e[i] -= s * self.qr[(i, k)];
                }
            }
            for i in 0..self.rows {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != rows`.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal,
    ///   i.e. `A` is rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                found: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        let scale = self.qr.max_abs().max(1.0);
        let mut x = vec![0.0; self.cols];
        for i in (0..self.cols).rev() {
            let mut sum = y[i];
            for j in (i + 1)..self.cols {
                sum -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= 1e-13 * scale {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }
}

/// Convenience: least-squares solve `min ‖A·x − b‖₂` with a fresh QR.
///
/// # Errors
///
/// See [`QrDecomposition::new`] and
/// [`QrDecomposition::solve_least_squares`].
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    QrDecomposition::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstructs(a: &Matrix, tol: f64) {
        let qr = QrDecomposition::new(a).unwrap();
        let q = qr.q();
        let r = qr.r();
        assert!(q.matmul(&r).approx_eq(a, tol), "QR does not reconstruct A");
        // Q orthonormal columns.
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.approx_eq(&Matrix::identity(a.cols()), tol), "QᵀQ != I");
    }

    #[test]
    fn square_reconstruction() {
        let a =
            Matrix::from_rows(&[&[12.0, -51.0, 4.0], &[6.0, 167.0, -68.0], &[-4.0, 24.0, -41.0]]);
        reconstructs(&a, 1e-10);
    }

    #[test]
    fn tall_reconstruction() {
        let a = Matrix::from_fn(7, 3, |i, j| {
            ((i * 3 + j) as f64).sin() + if i == j { 2.0 } else { 0.0 }
        });
        reconstructs(&a, 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 2.1, 2.9, 4.2];
        let x = least_squares(&a, &b).unwrap();
        // Normal equations solution via LU for cross-check.
        let at = a.transpose();
        let ata = at.matmul(&a);
        let atb = at.matvec(&b);
        let x_ne = crate::lu::solve(&ata, &atb).unwrap();
        for (u, v) in x.iter().zip(&x_ne) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.5, -2.0];
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).unwrap();
        for (u, v) in x.iter().zip(x_true) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(QrDecomposition::new(&a), Err(LinalgError::InvalidArgument(_))));
    }

    #[test]
    fn rank_deficient_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rhs_length_validated() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
