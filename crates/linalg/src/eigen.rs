//! Eigenvalue solvers: cyclic Jacobi for symmetric matrices (the digital
//! baseline for the EGV experiment, Fig. 4d) and power iteration for dominant
//! eigenpairs (used to program the eigenvalue feedback conductance on chip).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;

/// Full eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes all eigenpairs of the symmetric matrix `a` with the cyclic
    /// Jacobi method (robust, O(n³) per sweep, typically < 10 sweeps).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::InvalidArgument`] if `a` is not symmetric to `1e-9`
    ///   relative tolerance or is empty.
    /// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not
    ///   vanish within the sweep budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use gramc_linalg::{Matrix, SymmetricEigen};
    ///
    /// # fn main() -> Result<(), gramc_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
    /// let eig = SymmetricEigen::new(&a)?;
    /// assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
    /// assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { found: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("empty matrix"));
        }
        let scale = a.max_abs().max(1.0);
        if !a.is_symmetric(1e-9 * scale) {
            return Err(LinalgError::InvalidArgument("matrix is not symmetric"));
        }

        let mut m = a.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        let tol = 1e-14 * scale;

        for _sweep in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= tol * (n as f64) {
                return Ok(Self::sorted(m, v));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    // Jacobi rotation annihilating m[p][q].
                    let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        Err(LinalgError::NoConvergence { iterations: max_sweeps, residual: off.sqrt() })
    }

    fn sorted(m: Matrix, v: Matrix) -> Self {
        let n = m.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        let diag = m.diag();
        idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("NaN eigenvalue"));
        let eigenvalues: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |i, j| v[(i, idx[j])]);
        Self { eigenvalues, eigenvectors }
    }

    /// The eigenvector for the `k`-th largest eigenvalue (column `k`).
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        self.eigenvectors.col(k)
    }
}

/// Result of a dominant-eigenpair computation.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

/// Computes the dominant eigenpair of `a` by power iteration with Rayleigh
/// quotient estimates.
///
/// This mirrors what GRAMC's digital controller does to obtain the eigenvalue
/// estimate λ̂ that is programmed into the EGV feedback conductance.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is not square.
/// * [`LinalgError::NoConvergence`] if the iteration stalls (e.g. the two
///   dominant eigenvalues have equal magnitude).
pub fn power_iteration(a: &Matrix, max_iters: usize, tol: f64) -> Result<EigenPair, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { found: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidArgument("empty matrix"));
    }
    // Deterministic pseudo-random start vector to avoid orthogonal starts.
    let x0: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 2654435761) % 97) as f64 / 97.0).collect();
    let (mut x, _) = vector::normalize(&x0);
    let mut lambda = 0.0;
    for it in 0..max_iters {
        let y = a.matvec(&x);
        let new_lambda = vector::dot(&x, &y);
        let (y_norm, norm) = vector::normalize(&y);
        if norm == 0.0 {
            // a·x = 0: x is an eigenvector with eigenvalue 0.
            return Ok(EigenPair { value: 0.0, vector: x, iterations: it + 1 });
        }
        let delta = vector::rel_error_up_to_sign(&y_norm, &x);
        x = y_norm;
        lambda = new_lambda;
        if delta < tol {
            return Ok(EigenPair { value: lambda, vector: x, iterations: it + 1 });
        }
    }
    Err(LinalgError::NoConvergence { iterations: max_iters, residual: lambda })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_known_spectrum() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v = e.eigenvector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_v_lambda_vt() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.5], &[0.5, -0.5, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let lam = Matrix::from_diag(&e.eigenvalues);
        let rec = e.eigenvectors.matmul(&lam).matmul(&e.eigenvectors.transpose());
        assert!(rec.approx_eq(&a, 1e-10));
        // Orthonormal eigenvectors.
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0, -2.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0, -2.0]);
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(matches!(SymmetricEigen::new(&a), Err(LinalgError::InvalidArgument(_))));
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let a = Matrix::from_rows(&[&[5.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 3.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let p = power_iteration(&a, 5000, 1e-12).unwrap();
        assert!((p.value - e.eigenvalues[0]).abs() < 1e-8);
        assert!(vector::rel_error_up_to_sign(&p.vector, &e.eigenvector(0)) < 1e-5);
    }

    #[test]
    fn power_iteration_on_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let p = power_iteration(&a, 10, 1e-12).unwrap();
        assert_eq!(p.value, 0.0);
    }

    #[test]
    fn gram_matrix_is_psd() {
        // Gram matrices (the EGV workload) must produce non-negative spectra.
        let x = Matrix::from_fn(4, 3, |i, j| ((i + 2 * j) as f64).cos());
        let g = x.transpose().matmul(&x);
        let e = SymmetricEigen::new(&g).unwrap();
        for &lam in &e.eigenvalues {
            assert!(lam > -1e-10, "negative eigenvalue {lam} in Gram matrix");
        }
    }
}
