//! Seeded random matrix generators for the paper's workloads: Wishart
//! matrices (Fig. 4a/4b), Gram matrices (Fig. 4d) and general Gaussian
//! ensembles.
//!
//! Normal variates are produced with the Box–Muller transform so the crate
//! only depends on `rand`'s uniform source.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Draws one standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A vector of i.i.d. standard normal entries.
pub fn normal_vector<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// A vector of i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform_vector<R: Rng + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// An `rows × cols` matrix of i.i.d. standard normal entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| standard_normal(rng))
}

/// A Wishart matrix `W = X·Xᵀ / k` where `X` is `n × k` standard Gaussian.
///
/// This is the 128×128 test matrix of Fig. 4(a)/(b): symmetric positive
/// definite for `k ≥ n` (almost surely), with both positive and negative
/// off-diagonal entries — exercising the differential conductance mapping.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn wishart<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Matrix {
    assert!(k > 0, "Wishart requires k > 0 degrees of freedom");
    let x = gaussian_matrix(rng, n, k);
    let w = x.matmul(&x.transpose());
    w.scale(1.0 / k as f64)
}

/// A Gram matrix `G = Xᵀ·X / m` of `m` random feature vectors in `Rⁿ`
/// (the Fig. 4(d) EGV workload): symmetric positive semi-definite.
pub fn gram<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Matrix {
    assert!(m > 0, "Gram requires m > 0 samples");
    let x = gaussian_matrix(rng, m, n);
    x.transpose().matmul(&x).scale(1.0 / m as f64)
}

/// A random orthogonal matrix from the QR of a Gaussian matrix (Haar-ish).
pub fn random_orthogonal<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let g = gaussian_matrix(rng, n, n);
    let qr = crate::qr::QrDecomposition::new(&g).expect("square Gaussian is full rank a.s.");
    let mut q = qr.q();
    // Fix the sign convention (diag of R positive) for a uniform distribution.
    let r = qr.r();
    for j in 0..n {
        if r[(j, j)] < 0.0 {
            for i in 0..n {
                q[(i, j)] = -q[(i, j)];
            }
        }
    }
    q
}

/// A symmetric positive-definite matrix with a prescribed 2-norm condition
/// number: `Q·diag(σ)·Qᵀ` with log-spaced spectrum from 1 to `1/cond`.
///
/// # Panics
///
/// Panics if `cond < 1` or `n == 0`.
pub fn spd_with_condition<R: Rng + ?Sized>(rng: &mut R, n: usize, cond: f64) -> Matrix {
    assert!(cond >= 1.0, "condition number must be >= 1");
    assert!(n > 0, "empty matrix");
    let q = random_orthogonal(rng, n);
    let spectrum: Vec<f64> = (0..n)
        .map(|i| {
            if n == 1 {
                1.0
            } else {
                // log-spaced from 1 down to 1/cond
                (-(i as f64) / (n as f64 - 1.0) * cond.ln()).exp()
            }
        })
        .collect();
    let d = Matrix::from_diag(&spectrum);
    q.matmul(&d).matmul(&q.transpose())
}

/// A diagonally dominant matrix with random off-diagonal couplings — always
/// non-singular, representative of discretized PDE operators.
pub fn diagonally_dominant<R: Rng + ?Sized>(rng: &mut R, n: usize, coupling: f64) -> Matrix {
    let mut m =
        Matrix::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    0.0
                } else {
                    coupling * (rng.gen::<f64>() * 2.0 - 1.0)
                }
            },
        );
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = row_sum + 1.0;
    }
    m
}

/// Creates a deterministic RNG from a seed. All experiments in this
/// repository are seeded so figures regenerate identically.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymmetricEigen;

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn wishart_is_spd() {
        let mut rng = seeded_rng(2);
        let w = wishart(&mut rng, 12, 24);
        assert!(w.is_symmetric(1e-12));
        let e = SymmetricEigen::new(&w).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l > 0.0), "{:?}", e.eigenvalues);
    }

    #[test]
    fn gram_is_psd() {
        let mut rng = seeded_rng(3);
        let g = gram(&mut rng, 10, 15);
        assert!(g.is_symmetric(1e-12));
        let e = SymmetricEigen::new(&g).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-10));
    }

    #[test]
    fn orthogonal_is_orthogonal() {
        let mut rng = seeded_rng(4);
        let q = random_orthogonal(&mut rng, 8);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.approx_eq(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn spd_condition_is_controlled() {
        let mut rng = seeded_rng(5);
        let a = spd_with_condition(&mut rng, 10, 100.0);
        let e = SymmetricEigen::new(&a).unwrap();
        let cond = e.eigenvalues[0] / e.eigenvalues[9];
        assert!((cond - 100.0).abs() / 100.0 < 1e-6, "cond {cond}");
    }

    #[test]
    fn diagonally_dominant_solvable() {
        let mut rng = seeded_rng(6);
        let a = diagonally_dominant(&mut rng, 16, 0.5);
        let x_true = normal_vector(&mut rng, 16);
        let b = a.matvec(&x_true);
        let x = crate::lu::solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = wishart(&mut seeded_rng(7), 6, 12);
        let b = wishart(&mut seeded_rng(7), 6, 12);
        assert_eq!(a, b);
    }
}
