//! Feature-gated data parallelism built on `std::thread::scope`.
//!
//! The build environment cannot fetch rayon, so the `parallel` cargo feature
//! (on by default) enables a small scoped-thread fork/join layer with the
//! same work-splitting shape rayon's `par_chunks_mut` would give us. With
//! the feature disabled — or on a single-core host, or for work below the
//! splitting threshold — every helper degrades to the serial loop, so
//! results are identical either way (the kernels themselves are
//! deterministic; parallelism only splits disjoint output ranges).
//!
//! Thread count comes from [`max_threads`]: the `GRAMC_THREADS` environment
//! variable if set, else [`std::thread::available_parallelism`].

/// Whether this build of `gramc-linalg` has the `parallel` feature enabled
/// (reported by benches; `cfg!` in a downstream crate sees only that
/// crate's own features).
pub fn feature_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Maximum worker threads for data-parallel kernels.
///
/// Honors `GRAMC_THREADS` (values `0`/unparsable fall back to the detected
/// parallelism). Always at least 1. Resolved once per process — the env
/// lookup and `available_parallelism` syscall would otherwise run on every
/// kernel call, including tiny ones.
pub fn max_threads() -> usize {
    static MAX_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MAX_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("GRAMC_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs `f(start_index, chunk)` over `chunk_len`-sized disjoint chunks of
/// `data`, in parallel when the feature is on and splitting is worthwhile.
///
/// `start_index` is the offset of `chunk` inside `data`. Chunks are the unit
/// of scheduling: each worker thread processes a contiguous run of chunks,
/// so `f` must not rely on any cross-chunk ordering.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len).max(1);
    let threads = threads_for(n_chunks);
    if threads <= 1 {
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, chunk);
        }
        return;
    }
    run_parallel(data, chunk_len, threads, &f);
}

/// Number of worker threads to use for `pieces` independent work items.
fn threads_for(pieces: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        max_threads().min(pieces)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = pieces;
        1
    }
}

#[cfg(feature = "parallel")]
fn run_parallel<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // Hand each worker a contiguous run of whole chunks, offset-tagged so
    // the callback sees the same indices as the serial path.
    let n_chunks = data.len().div_ceil(chunk_len);
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let stride = chunks_per_worker * chunk_len;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = stride.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let base = offset;
            scope.spawn(move || {
                for (c, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + c * chunk_len, chunk);
                }
            });
            rest = tail;
            offset += take;
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn run_parallel<T, F>(data: &mut [T], chunk_len: usize, _threads: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(c * chunk_len, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        let mut data = vec![0u32; 1003];
        for_each_chunk_mut(&mut data, 64, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn offsets_match_serial_enumeration() {
        let mut data = vec![0usize; 257];
        for_each_chunk_mut(&mut data, 32, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut empty: Vec<f64> = Vec::new();
        for_each_chunk_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![1.0f64];
        for_each_chunk_mut(&mut one, 8, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 2.0;
        });
        assert_eq!(one[0], 2.0);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
