//! Feature-gated data parallelism built on `std::thread::scope`.
//!
//! The build environment cannot fetch rayon, so the `parallel` cargo feature
//! (on by default) enables a small scoped-thread fork/join layer with the
//! same work-splitting shape rayon's `par_chunks_mut` would give us. With
//! the feature disabled — or on a single-core host, or for work below the
//! splitting threshold — every helper degrades to the serial loop, so
//! results are identical either way (the kernels themselves are
//! deterministic; parallelism only splits disjoint output ranges).
//!
//! Thread count comes from [`max_threads`]: the `GRAMC_THREADS` environment
//! variable if set, else [`std::thread::available_parallelism`].

/// Whether this build of `gramc-linalg` has the `parallel` feature enabled
/// (reported by benches; `cfg!` in a downstream crate sees only that
/// crate's own features).
pub fn feature_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Maximum worker threads for data-parallel kernels.
///
/// Honors `GRAMC_THREADS` (values `0`/unparsable fall back to the detected
/// parallelism). Always at least 1. Resolved once per process — the env
/// lookup and `available_parallelism` syscall would otherwise run on every
/// kernel call, including tiny ones.
pub fn max_threads() -> usize {
    static MAX_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MAX_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("GRAMC_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

std::thread_local! {
    /// Per-thread cap on worker count, layered on top of [`max_threads`].
    /// `usize::MAX` means "no extra cap". See [`with_thread_cap`].
    static THREAD_CAP: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Worker-thread budget for kernels launched from the current thread:
/// [`max_threads`] clamped by any enclosing [`with_thread_cap`] scope.
pub fn current_max_threads() -> usize {
    max_threads().min(THREAD_CAP.with(|c| c.get())).max(1)
}

/// Runs `f` with kernels launched from this thread capped at `cap` worker
/// threads (on top of the process-wide [`max_threads`]).
///
/// Two users: benches measure the serial behavior of a parallel kernel in the
/// same process (`with_thread_cap(1, …)`), and nested parallelism — e.g. a
/// plane-level [`map_collect`] whose items each call a threaded `matmul` —
/// divides the budget between levels instead of oversubscribing the host.
/// The cap is thread-local and restored on exit (including on panic).
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_CAP.with(|c| c.get());
    let _restore = Restore(prev);
    THREAD_CAP.with(|c| c.set(cap.max(1).min(prev)));
    f()
}

/// Maps `f` over `items` on scoped threads, returning results in input order.
///
/// Each worker handles one item and runs under a [`with_thread_cap`] scope
/// dividing the current budget across items, so an `f` that itself calls
/// threaded kernels does not oversubscribe the host. Serial (in-order) when
/// the feature is off, the budget is 1, or there are fewer than two items —
/// so, as with [`for_each_chunk_mut`], results are identical either way as
/// long as `f` is deterministic per item.
pub fn map_collect<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads_for(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    map_collect_parallel(items, &f)
}

#[cfg(feature = "parallel")]
fn map_collect_parallel<T, R, F>(items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let inner_cap = current_max_threads().div_ceil(items.len()).max(1);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, item) in out.iter_mut().zip(items) {
            scope.spawn(move || {
                *slot = Some(with_thread_cap(inner_cap, || f(item)));
            });
        }
    });
    out.into_iter().map(|r| r.expect("map_collect worker filled its slot")).collect()
}

#[cfg(not(feature = "parallel"))]
fn map_collect_parallel<T, R, F>(items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

/// Runs `f(start_index, chunk)` over `chunk_len`-sized disjoint chunks of
/// `data`, in parallel when the feature is on and splitting is worthwhile.
///
/// `start_index` is the offset of `chunk` inside `data`. Chunks are the unit
/// of scheduling: each worker thread processes a contiguous run of chunks,
/// so `f` must not rely on any cross-chunk ordering.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len).max(1);
    let threads = threads_for(n_chunks);
    if threads <= 1 {
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, chunk);
        }
        return;
    }
    run_parallel(data, chunk_len, threads, &f);
}

/// Number of worker threads to use for `pieces` independent work items.
fn threads_for(pieces: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        current_max_threads().min(pieces)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = pieces;
        1
    }
}

#[cfg(feature = "parallel")]
fn run_parallel<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // Hand each worker a contiguous run of whole chunks, offset-tagged so
    // the callback sees the same indices as the serial path.
    let n_chunks = data.len().div_ceil(chunk_len);
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let stride = chunks_per_worker * chunk_len;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = stride.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let base = offset;
            scope.spawn(move || {
                for (c, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + c * chunk_len, chunk);
                }
            });
            rest = tail;
            offset += take;
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn run_parallel<T, F>(data: &mut [T], chunk_len: usize, _threads: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(c * chunk_len, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        let mut data = vec![0u32; 1003];
        for_each_chunk_mut(&mut data, 64, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn offsets_match_serial_enumeration() {
        let mut data = vec![0usize; 257];
        for_each_chunk_mut(&mut data, 32, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut empty: Vec<f64> = Vec::new();
        for_each_chunk_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![1.0f64];
        for_each_chunk_mut(&mut one, 8, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 2.0;
        });
        assert_eq!(one[0], 2.0);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn thread_cap_is_scoped_and_restored() {
        let before = current_max_threads();
        with_thread_cap(1, || {
            assert_eq!(current_max_threads(), 1);
            // Nested scopes can only shrink the budget.
            with_thread_cap(8, || assert_eq!(current_max_threads(), 1));
        });
        assert_eq!(current_max_threads(), before);
    }

    #[test]
    fn map_collect_preserves_input_order() {
        let items: Vec<usize> = (0..23).collect();
        let out = map_collect(&items, |&i| i * i);
        assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(map_collect(&empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn map_collect_matches_serial_under_cap() {
        let items: Vec<f64> = (0..7).map(|i| i as f64 * 0.3).collect();
        let par = map_collect(&items, |x| x.sin());
        let ser = with_thread_cap(1, || map_collect(&items, |x| x.sin()));
        assert_eq!(par, ser);
    }
}
