//! # gramc-telemetry
//!
//! Observability primitives shared by the whole workspace: relaxed-atomic
//! hardware counters ([`HwCounters`] / [`HwSnapshot`]), lock-free
//! log-bucketed latency histograms ([`LatencyHistogram`]), and a bounded
//! structured event journal ([`EventJournal`]) exportable in the
//! chrome://tracing trace-event format.
//!
//! Everything here is **observation only**: no RNG, no floating-point state
//! that feeds back into the simulation, no allocation on record paths (the
//! journal ring is preallocated, histogram buckets are fixed arrays, and
//! counters are plain atomics). The instrumented crates gate their use
//! behind a `telemetry` cargo feature; this crate itself has no features
//! and no dependencies.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of hardware counter fields (also the length of
/// [`HwSnapshot::fields`]).
pub const HW_FIELDS: usize = 10;

/// Monotonic per-component hardware event counters.
///
/// Incremented with `Relaxed` atomics from inside `CrossbarArray` and
/// `MacroGroup`; shared between a macro group and its arrays via `Arc` so
/// one accumulator sees every analog event of a shard. Reads
/// ([`snapshot`](Self::snapshot)) are also relaxed: callers that need a
/// consistent cut take it while holding whatever lock serializes the
/// instrumented work (the runtime snapshots under the shard lock).
#[derive(Debug, Default)]
pub struct HwCounters {
    dac_drives: AtomicU64,
    adc_conversions: AtomicU64,
    settle_events: AtomicU64,
    solve_settles: AtomicU64,
    write_pulses: AtomicU64,
    write_cycles: AtomicU64,
    read_cycles_mvm: AtomicU64,
    read_cycles_solve: AtomicU64,
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
}

macro_rules! counter_adders {
    ($($(#[$doc:meta])* $add:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $add(&self, n: u64) {
                self.$field.fetch_add(n, Ordering::Relaxed);
            }
        )*
    };
}

impl HwCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    counter_adders! {
        /// Records `n` DAC input drives (one per driven vector element).
        add_dac_drives => dac_drives,
        /// Records `n` ADC output conversions (one per captured element).
        add_adc_conversions => adc_conversions,
        /// Records `n` open-loop MVM settle events (one per plane per
        /// applied vector).
        add_settle_events => settle_events,
        /// Records `n` closed-loop feedback settle events (INV/PINV/EGV
        /// solve iterations).
        add_solve_settles => solve_settles,
        /// Records `n` write-verify programming pulses (direct programming
        /// counts one blind pulse per cell).
        add_write_pulses => write_pulses,
        /// Records `n` cell write cycles (cells touched by programming).
        add_write_cycles => write_cycles,
        /// Records `n` cell read cycles biased during MVM settles.
        add_read_cycles_mvm => read_cycles_mvm,
        /// Records `n` cell read cycles biased during solve settles.
        add_read_cycles_solve => read_cycles_solve,
        /// Records `n` conductance snapshot-cache hits.
        add_snapshot_hits => snapshot_hits,
        /// Records `n` conductance snapshot-cache misses (rebuilds).
        add_snapshot_misses => snapshot_misses,
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> HwSnapshot {
        HwSnapshot {
            dac_drives: self.dac_drives.load(Ordering::Relaxed),
            adc_conversions: self.adc_conversions.load(Ordering::Relaxed),
            settle_events: self.settle_events.load(Ordering::Relaxed),
            solve_settles: self.solve_settles.load(Ordering::Relaxed),
            write_pulses: self.write_pulses.load(Ordering::Relaxed),
            write_cycles: self.write_cycles.load(Ordering::Relaxed),
            read_cycles_mvm: self.read_cycles_mvm.load(Ordering::Relaxed),
            read_cycles_solve: self.read_cycles_solve.load(Ordering::Relaxed),
            snapshot_hits: self.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: self.snapshot_misses.load(Ordering::Relaxed),
        }
    }

    /// Folds a snapshot into this accumulator (aggregation across shards
    /// or job kinds).
    pub fn add_snapshot(&self, s: &HwSnapshot) {
        self.add_dac_drives(s.dac_drives);
        self.add_adc_conversions(s.adc_conversions);
        self.add_settle_events(s.settle_events);
        self.add_solve_settles(s.solve_settles);
        self.add_write_pulses(s.write_pulses);
        self.add_write_cycles(s.write_cycles);
        self.add_read_cycles_mvm(s.read_cycles_mvm);
        self.add_read_cycles_solve(s.read_cycles_solve);
        self.add_snapshot_hits(s.snapshot_hits);
        self.add_snapshot_misses(s.snapshot_misses);
    }
}

/// A plain-integer copy of [`HwCounters`] at one instant.
///
/// All fields are event counts, so the type is `Eq` and safe to embed in
/// summaries that derive `Eq` themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwSnapshot {
    /// DAC input drives.
    pub dac_drives: u64,
    /// ADC output conversions.
    pub adc_conversions: u64,
    /// Open-loop MVM settle events (per plane per applied vector).
    pub settle_events: u64,
    /// Closed-loop solve settle events (INV/PINV/EGV iterations).
    pub solve_settles: u64,
    /// Write-verify programming pulses.
    pub write_pulses: u64,
    /// Cells touched by programming.
    pub write_cycles: u64,
    /// Cell read cycles biased during MVM settles.
    pub read_cycles_mvm: u64,
    /// Cell read cycles biased during solve settles.
    pub read_cycles_solve: u64,
    /// Conductance snapshot-cache hits.
    pub snapshot_hits: u64,
    /// Conductance snapshot-cache misses.
    pub snapshot_misses: u64,
}

impl HwSnapshot {
    /// Counter deltas since `earlier` (saturating, so a stale `earlier`
    /// cannot underflow).
    pub fn since(&self, earlier: &HwSnapshot) -> HwSnapshot {
        HwSnapshot {
            dac_drives: self.dac_drives.saturating_sub(earlier.dac_drives),
            adc_conversions: self.adc_conversions.saturating_sub(earlier.adc_conversions),
            settle_events: self.settle_events.saturating_sub(earlier.settle_events),
            solve_settles: self.solve_settles.saturating_sub(earlier.solve_settles),
            write_pulses: self.write_pulses.saturating_sub(earlier.write_pulses),
            write_cycles: self.write_cycles.saturating_sub(earlier.write_cycles),
            read_cycles_mvm: self.read_cycles_mvm.saturating_sub(earlier.read_cycles_mvm),
            read_cycles_solve: self.read_cycles_solve.saturating_sub(earlier.read_cycles_solve),
            snapshot_hits: self.snapshot_hits.saturating_sub(earlier.snapshot_hits),
            snapshot_misses: self.snapshot_misses.saturating_sub(earlier.snapshot_misses),
        }
    }

    /// Field names and values, in a stable order (for generic JSON/report
    /// emission).
    pub fn fields(&self) -> [(&'static str, u64); HW_FIELDS] {
        [
            ("dac_drives", self.dac_drives),
            ("adc_conversions", self.adc_conversions),
            ("settle_events", self.settle_events),
            ("solve_settles", self.solve_settles),
            ("write_pulses", self.write_pulses),
            ("write_cycles", self.write_cycles),
            ("read_cycles_mvm", self.read_cycles_mvm),
            ("read_cycles_solve", self.read_cycles_solve),
            ("snapshot_hits", self.snapshot_hits),
            ("snapshot_misses", self.snapshot_misses),
        ]
    }

    /// Sum of all counters (a quick "did anything happen" probe).
    pub fn total(&self) -> u64 {
        self.fields().iter().map(|&(_, v)| v).sum()
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }
}

impl std::ops::AddAssign<&HwSnapshot> for HwSnapshot {
    fn add_assign(&mut self, rhs: &HwSnapshot) {
        self.dac_drives += rhs.dac_drives;
        self.adc_conversions += rhs.adc_conversions;
        self.settle_events += rhs.settle_events;
        self.solve_settles += rhs.solve_settles;
        self.write_pulses += rhs.write_pulses;
        self.write_cycles += rhs.write_cycles;
        self.read_cycles_mvm += rhs.read_cycles_mvm;
        self.read_cycles_solve += rhs.read_cycles_solve;
        self.snapshot_hits += rhs.snapshot_hits;
        self.snapshot_misses += rhs.snapshot_misses;
    }
}

/// Number of histogram buckets: bucket `k` holds durations in
/// `[2^(k-1), 2^k)` nanoseconds (bucket 0 holds 0 ns).
pub const HIST_BUCKETS: usize = 64;

/// A lock-free latency histogram with logarithmic (power-of-two
/// nanosecond) buckets.
///
/// `record_ns` is wait-free: one `fetch_add` into a bucket, one into the
/// count/sum accumulators and a `fetch_max` for the exact maximum. Good to
/// ~2× relative quantile error by construction, which is plenty for p50/p99
/// serving dashboards; the maximum is exact.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 → bucket 0; ns in [2^(k-1), 2^k) → bucket k (capped).
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bucket `k` covers `[2^(k-1), 2^k)` ns).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Exact maximum recorded duration in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (0 < q ≤ 1) in nanoseconds, or 0 when empty.
    ///
    /// Walks the cumulative bucket counts and returns the geometric
    /// midpoint of the bucket holding the quantile rank, clamped to the
    /// exact recorded maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if k == 0 {
                    return 0;
                }
                // Bucket k covers [2^(k-1), 2^k): geometric midpoint
                // ≈ 2^(k-1) · √2 ≈ 3·2^(k-1)/2, computed in integers.
                let lo = 1u64 << (k - 1);
                let mid = lo + lo / 2;
                return mid.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile estimate in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile estimate in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile estimate in nanoseconds (tail SLO metric).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Samples recorded in buckets strictly above the bucket holding
    /// `threshold_ns` — a bucket-resolution count of samples exceeding the
    /// threshold, monotone non-increasing in the threshold. Exact when the
    /// threshold is a power of two (a bucket boundary); otherwise
    /// undercounts by at most the threshold's own bucket. SLO burn-rate
    /// evaluation uses this as its violation counter.
    pub fn count_over(&self, threshold_ns: u64) -> u64 {
        let k = LatencyHistogram::bucket_of(threshold_ns);
        self.buckets.iter().skip(k + 1).sum()
    }
}

/// Flow-event role of a journal record: whether a chrome://tracing flow
/// arrow departs from it or lands on it. Flows stitch spans on different
/// lanes (a request's queue-wait span on its shard lane, the coalesced
/// batch's execution span on a worker lane) into one causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowPhase {
    /// Not part of a flow.
    #[default]
    None,
    /// A flow arrow with id [`JournalEvent::flow_id`] departs from this
    /// record (chrome `ph:"s"`).
    Start,
    /// The flow arrow with id [`JournalEvent::flow_id`] terminates at this
    /// record (chrome `ph:"f"` binding to the enclosing slice).
    End,
}

/// One record in an [`EventJournal`].
///
/// Names and categories are `&'static str` so recording never allocates;
/// the two argument words carry fixed numeric payloads (shard index, batch
/// size, …) whose meaning is per-event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Event name (e.g. `"dispatch:MvmBatch"`).
    pub name: &'static str,
    /// Category lane (e.g. `"runtime"`, `"health"`).
    pub category: &'static str,
    /// Start time in nanoseconds since the journal's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 marks an instant event).
    pub dur_ns: u64,
    /// First numeric argument (by convention: shard / lane index).
    pub arg_a: u64,
    /// Second numeric argument (by convention: a size or count).
    pub arg_b: u64,
    /// Whether this record starts or ends a flow ([`FlowPhase::None`] for
    /// plain spans and instants).
    pub flow: FlowPhase,
    /// Flow identifier shared by the linked records (by convention a
    /// request id; 0 when `flow` is [`FlowPhase::None`]).
    pub flow_id: u64,
}

impl Default for JournalEvent {
    fn default() -> Self {
        Self {
            name: "",
            category: "",
            ts_ns: 0,
            dur_ns: 0,
            arg_a: 0,
            arg_b: 0,
            flow: FlowPhase::None,
            flow_id: 0,
        }
    }
}

struct Ring {
    buf: Vec<JournalEvent>,
    head: usize,
}

/// A bounded, preallocated ring buffer of [`JournalEvent`]s.
///
/// Once the ring is full, new events overwrite the oldest (the overwrite
/// count is tracked). Recording takes a mutex but never allocates, so the
/// journal is safe to use from the runtime's hot paths; export is meant
/// for post-run inspection.
pub struct EventJournal {
    epoch: Instant,
    ring: Mutex<Ring>,
    capacity: usize,
    overwritten: AtomicU64,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl EventJournal {
    /// A journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            ring: Mutex::new(Ring { buf: Vec::with_capacity(capacity), head: 0 }),
            capacity,
            overwritten: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the journal was created (the trace epoch).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an instant event stamped `now`.
    pub fn instant(&self, name: &'static str, category: &'static str, arg_a: u64, arg_b: u64) {
        let ts = self.now_ns();
        self.record(JournalEvent {
            name,
            category,
            ts_ns: ts,
            dur_ns: 0,
            arg_a,
            arg_b,
            ..JournalEvent::default()
        });
    }

    /// Records a span that started at `start_ns` (from [`now_ns`](Self::now_ns))
    /// and ends now.
    pub fn span(
        &self,
        name: &'static str,
        category: &'static str,
        start_ns: u64,
        arg_a: u64,
        arg_b: u64,
    ) {
        let end = self.now_ns();
        self.record(JournalEvent {
            name,
            category,
            ts_ns: start_ns,
            dur_ns: end.saturating_sub(start_ns).max(1),
            arg_a,
            arg_b,
            ..JournalEvent::default()
        })
    }

    /// Appends one event, overwriting the oldest when full.
    pub fn record(&self, ev: JournalEvent) {
        let mut ring = self.ring.lock().expect("journal poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % self.capacity;
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("journal poisoned").buf.len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of events held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted to make room since creation.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// All held events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        let ring = self.ring.lock().expect("journal poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Exports the journal in chrome://tracing "trace event" JSON (an array
    /// of `X` duration and `i` instant events; open via `chrome://tracing`
    /// or Perfetto). `arg_a` becomes the track (`tid`), so per-shard lanes
    /// render separately.
    pub fn to_chrome_trace(&self) -> String {
        to_chrome_trace(&self.events())
    }
}

/// Formats journal events as a chrome://tracing trace-event JSON array.
///
/// Duration records become `X` slices, zero-duration records become `i`
/// instants. A record with a [`FlowPhase`] additionally emits the chrome
/// flow record (`s` to start the arrow, `f` with `bp:"e"` to land it):
/// the flow record shares the slice's `pid`/`tid` and is timestamped at
/// the slice midpoint, so chrome binds it to that slice. Flow-carrying
/// `X` slices also expose the flow id as `args.req`, which is what the
/// offline `trace_analyze` tooling keys on.
pub fn to_chrome_trace(events: &[JournalEvent]) -> String {
    let mut out = String::from("[\n");
    // Flow records are appended after their carrier, so commas between
    // records are decided by position in the output, not the input.
    let mut records: Vec<String> = Vec::with_capacity(events.len());
    for ev in events {
        let ts_us = ev.ts_ns as f64 / 1e3;
        if ev.dur_ns > 0 {
            let req = match ev.flow {
                FlowPhase::None => String::new(),
                _ => format!(",\"req\":{}", ev.flow_id),
            };
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}{}}}}}",
                ev.name,
                ev.category,
                ts_us,
                ev.dur_ns as f64 / 1e3,
                ev.arg_a,
                ev.arg_a,
                ev.arg_b,
                req,
            ));
        } else if ev.flow == FlowPhase::None {
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                ev.name, ev.category, ts_us, ev.arg_a, ev.arg_a, ev.arg_b,
            ));
        }
        match ev.flow {
            FlowPhase::None => {}
            FlowPhase::Start | FlowPhase::End => {
                // Timestamp inside the carrier slice (its midpoint; the
                // record's own ts for zero-duration carriers) so the
                // arrow binds to that slice.
                let bind_us = (ev.ts_ns + ev.dur_ns / 2) as f64 / 1e3;
                let (ph, bp) = match ev.flow {
                    FlowPhase::Start => ("s", ""),
                    _ => ("f", ",\"bp\":\"e\""),
                };
                records.push(format!(
                    "{{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"{}\"{},\"id\":{},\
                     \"ts\":{:.3},\"pid\":0,\"tid\":{}}}",
                    ph, bp, ev.flow_id, bind_us, ev.arg_a,
                ));
            }
        }
    }
    for (i, rec) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(rec);
        out.push_str(comma);
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_and_diff() {
        let c = HwCounters::new();
        c.add_dac_drives(3);
        c.add_adc_conversions(2);
        c.add_settle_events(1);
        let s1 = c.snapshot();
        assert_eq!(s1.dac_drives, 3);
        assert_eq!(s1.total(), 6);
        c.add_dac_drives(4);
        c.add_write_pulses(10);
        let d = c.snapshot().since(&s1);
        assert_eq!(d.dac_drives, 4);
        assert_eq!(d.write_pulses, 10);
        assert_eq!(d.adc_conversions, 0);

        let acc = HwCounters::new();
        acc.add_snapshot(&s1);
        acc.add_snapshot(&d);
        assert_eq!(acc.snapshot(), c.snapshot());

        let mut sum = HwSnapshot::default();
        sum += &s1;
        sum += &d;
        assert_eq!(sum, c.snapshot());
    }

    #[test]
    fn snapshot_fields_cover_every_counter() {
        let c = HwCounters::new();
        c.add_dac_drives(1);
        c.add_adc_conversions(1);
        c.add_settle_events(1);
        c.add_solve_settles(1);
        c.add_write_pulses(1);
        c.add_write_cycles(1);
        c.add_read_cycles_mvm(1);
        c.add_read_cycles_solve(1);
        c.add_snapshot_hits(1);
        c.add_snapshot_misses(1);
        let s = c.snapshot();
        // Every field reachable through the adders shows up in fields();
        // a new counter that forgets to extend fields() fails here.
        assert!(s.fields().iter().all(|&(_, v)| v == 1));
        assert_eq!(s.total(), HW_FIELDS as u64);
        assert!(!s.is_zero());
        assert!(HwSnapshot::default().is_zero());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 1_000, 2_000, 50_000, 1_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max_ns, 1_000_000);
        let (p50, p90, p99) = (s.p50_ns(), s.p90_ns(), s.p99_ns());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= s.max_ns);
        // p50 of the sample set is 1000 ns; the log bucket estimate must be
        // within 2x.
        assert!((500..=2000).contains(&p50), "p50 = {p50}");
        assert!(s.mean_ns() > 0.0);
        // Empty histogram: all quantiles zero.
        let e = LatencyHistogram::new().snapshot();
        assert_eq!((e.p50_ns(), e.p99_ns(), e.mean_ns()), (0, 0, 0.0));
    }

    #[test]
    fn journal_ring_wraps_oldest_first() {
        let j = EventJournal::new(3);
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            j.record(JournalEvent {
                name,
                category: "t",
                ts_ns: i as u64,
                ..JournalEvent::default()
            });
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.capacity(), 3);
        assert_eq!(j.overwritten(), 2);
        let names: Vec<_> = j.events().iter().map(|e| e.name).collect();
        assert_eq!(names, ["c", "d", "e"]);
    }

    #[test]
    fn journal_spans_and_instants_export_as_chrome_trace() {
        let j = EventJournal::new(16);
        let t0 = j.now_ns();
        j.instant("coalesce", "runtime", 2, 8);
        j.span("dispatch:MvmBatch", "runtime", t0, 1, 64);
        let trace = j.to_chrome_trace();
        assert!(trace.starts_with("[\n"));
        assert!(trace.ends_with("]\n"));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"dispatch:MvmBatch\""));
        assert!(trace.contains("\"tid\":1"));
        // Balanced brackets/braces make it parseable.
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn flow_events_link_spans_across_lanes() {
        let j = EventJournal::new(16);
        // A queue-wait span starting flow 42 on the shard lane, the flow
        // landing inside an execution span on a worker lane.
        j.record(JournalEvent {
            name: "queued:mvm_batch",
            category: "runtime",
            ts_ns: 1_000,
            dur_ns: 2_000,
            arg_a: 0,
            arg_b: 7,
            flow: FlowPhase::Start,
            flow_id: 42,
        });
        j.record(JournalEvent {
            name: "job:mvm_batch",
            category: "runtime",
            ts_ns: 3_000,
            dur_ns: 4_000,
            arg_a: 1000,
            arg_b: 7,
            ..JournalEvent::default()
        });
        j.record(JournalEvent {
            name: "req",
            category: "flow",
            ts_ns: 5_000,
            arg_a: 1000,
            flow: FlowPhase::End,
            flow_id: 42,
            ..JournalEvent::default()
        });
        let trace = j.to_chrome_trace();
        assert!(trace.contains("\"ph\":\"s\""), "flow start record: {trace}");
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""), "flow end record: {trace}");
        assert_eq!(trace.matches("\"id\":42").count(), 2, "both ends share the id: {trace}");
        // The carrier slice exposes the flow id for offline analysis.
        assert!(trace.contains("\"req\":42"), "args.req on the carrier: {trace}");
        // The flow start binds inside its carrier slice (midpoint 2 µs).
        assert!(trace.contains("\"ph\":\"s\",\"id\":42,\"ts\":2.000"), "{trace}");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn count_over_is_a_monotone_tail_count() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 3_000, 50_000, 1_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        // Power-of-two thresholds are bucket boundaries: exact counts.
        assert_eq!(s.count_over(1 << 8), 3, "256 ns: 3000/50000/1e6 above");
        assert_eq!(s.count_over(1 << 12), 2, "4096 ns: 50000/1e6 above");
        assert_eq!(s.count_over(u64::MAX), 0);
        assert_eq!(s.count_over(0), s.count, "everything is above 0 ns");
        let mut prev = u64::MAX;
        for t in [0u64, 128, 256, 4_096, 1 << 20, u64::MAX] {
            let c = s.count_over(t);
            assert!(c <= prev, "count_over must not increase with threshold");
            prev = c;
        }
    }
}
