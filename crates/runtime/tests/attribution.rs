//! Integration tests of request-scoped tracing and per-tenant
//! attribution: conservation of the hardware-counter split (tenant shares
//! sum bit-exactly to the global totals, on one shard and on many),
//! tenant-quota admission, bit-identity of the tenant-attributed APIs to
//! the plain ones, the configurable journal ring with its drop metrics,
//! and the chrome-trace flow events that link every coalesced rider to
//! the shared batch execution span.

use gramc_core::tiling::TileMapping;
use gramc_core::MacroConfig;
use gramc_linalg::random;
use gramc_runtime::{Placement, Runtime, RuntimeError, TenantId, TenantQuota};

/// A runtime with one loaded seeded operator, drained (no server: batches
/// coalesce deterministically until `run_all`).
fn fixture(shards: usize, dim: usize, seed: u64) -> (Runtime, gramc_runtime::OperatorHandle) {
    let rt = Runtime::new(shards, 2, MacroConfig::small_ideal(dim), seed);
    let mut rng = random::seeded_rng(seed ^ 0xa77);
    let a = random::gaussian_matrix(&mut rng, dim, dim);
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    rt.run_all();
    loaded.wait().expect("load completes");
    (rt, op)
}

/// Request ids are unique and strictly increasing per submission, starting
/// at 1 on a fresh runtime (0 is reserved for "no request").
#[test]
fn request_ids_are_unique_and_ordered() {
    let (rt, op) = fixture(1, 8, 11);
    let mut rng = random::seeded_rng(12);
    let mut ids = Vec::new();
    for _ in 0..5 {
        let h = rt.submit_mvm(op, random::normal_vector(&mut rng, 8)).unwrap();
        ids.push(h.request_id().0);
    }
    rt.run_all();
    assert_eq!(ids[0], 2, "load took id 1; ids start at 1 on a fresh runtime");
    for w in ids.windows(2) {
        assert!(w[0] < w[1], "ids must be strictly increasing: {ids:?}");
    }
}

/// The tenant quota rejects typed once a tenant sits at its in-flight
/// bound — riders of a coalesced batch count too — while other tenants
/// keep being admitted, and capacity frees once the backlog retires.
#[test]
fn tenant_quota_rejects_typed_and_frees_on_completion() {
    let (rt, op) = fixture(1, 8, 21);
    let rt = rt.with_tenant_quota(TenantQuota { max_in_flight: 2 });
    let mut rng = random::seeded_rng(22);
    let mut x = || random::normal_vector(&mut rng, 8);
    let flood = TenantId(1);
    let polite = TenantId(2);

    // First submission opens the batch, second rides; both hold a slot.
    let a = rt.submit_mvm_for(flood, op, x()).unwrap();
    let b = rt.submit_mvm_for(flood, op, x()).unwrap();
    let err = rt.submit_mvm_for(flood, op, x()).unwrap_err();
    assert!(
        matches!(err, RuntimeError::QueueFull { limit: 2 }),
        "expected the quota as QueueFull {{ limit: 2 }}, got {err:?}"
    );

    // The flooding tenant backs up on itself; others are unaffected.
    let c = rt.submit_mvm_for(polite, op, x()).expect("other tenants keep their own quota");

    rt.run_all();
    a.wait().unwrap();
    b.wait().unwrap();
    c.wait().unwrap();
    rt.submit_mvm_for(flood, op, x()).expect("capacity frees when requests retire");
    rt.run_all();

    #[cfg(feature = "telemetry")]
    {
        let snap = rt.metrics_snapshot();
        let of = |t: TenantId| snap.tenants.iter().find(|m| m.tenant == t).unwrap();
        assert_eq!(of(flood).rejected, 1, "the quota rejection is metered per tenant");
        assert_eq!(of(flood).requests, 3, "rejected submissions are not requests");
        assert_eq!(of(polite).rejected, 0);
        assert_eq!(snap.rejected, 1, "tenant rejections feed the global gauge");
    }
}

/// The tenant-attributed APIs return results bit-identical to the plain
/// APIs: attribution is measurement, never a compute path.
#[test]
fn tenant_apis_are_bit_identical_to_plain_apis() {
    let dim = 6;
    let config = MacroConfig::small(dim);
    let plain = Runtime::new(2, 2, config.clone(), 77);
    let tenanted =
        Runtime::new(2, 2, config, 77).with_tenant_quota(TenantQuota { max_in_flight: 64 });

    let mut rng = random::seeded_rng(78);
    let a = random::spd_with_condition(&mut rng, dim, 4.0);
    let xs: Vec<Vec<f64>> = (0..4).map(|_| random::normal_vector(&mut rng, dim)).collect();
    let b = random::normal_vector(&mut rng, dim);

    let run = |rt: &Runtime, tenant: Option<TenantId>| {
        let (op, loaded) = match tenant {
            Some(t) => rt.submit_load_for(t, &a, TileMapping::FourBit, Placement::Pinned(1)),
            None => rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(1)),
        }
        .unwrap();
        rt.run_all();
        loaded.wait().unwrap();
        let mvm = match tenant {
            Some(t) => rt.submit_mvm_batch_for(t, op, xs.clone()),
            None => rt.submit_mvm_batch(op, xs.clone()),
        }
        .unwrap();
        let inv = match tenant {
            Some(t) => rt.submit_solve_inv_for(t, op, b.clone()),
            None => rt.submit_solve_inv(op, b.clone()),
        }
        .unwrap();
        rt.run_all();
        (mvm.wait_vectors().unwrap(), inv.wait_vector().unwrap())
    };

    assert_eq!(
        run(&plain, None),
        run(&tenanted, Some(TenantId(9))),
        "tenant attribution must not perturb results"
    );
}

/// Conservation on one shard: the per-tenant hardware-counter shares of a
/// two-tenant coalesced batch (and everything else that ran) sum
/// bit-exactly to the global `hw_total` — integer remainder assignment,
/// no lost or invented counts.
#[cfg(feature = "telemetry")]
#[test]
fn tenant_hw_attribution_is_conservative_one_shard() {
    let (rt, op) = fixture(1, 8, 31);
    let mut rng = random::seeded_rng(32);
    // A two-tenant coalesced batch: 3 riders for tenant 1, 2 for tenant 2,
    // all hydrated into one MvmSet execution whose delta is split 3:2
    // per rider row.
    let handles: Vec<_> = [1, 1, 1, 2, 2]
        .iter()
        .map(|&t| rt.submit_mvm_for(TenantId(t), op, random::normal_vector(&mut rng, 8)).unwrap())
        .collect();
    rt.run_all();
    for h in handles {
        h.wait().unwrap();
    }
    assert_conservation(&rt);
}

/// Conservation across shards: mixed kinds (coalesced MVMs, explicit
/// batches, INV solves) from three tenants over three shards still sum
/// bit-exactly to the global totals.
#[cfg(feature = "telemetry")]
#[test]
fn tenant_hw_attribution_is_conservative_across_shards() {
    let dim = 6;
    let rt = Runtime::new(3, 2, MacroConfig::small(dim), 41);
    let mut rng = random::seeded_rng(42);
    let mut handles = Vec::new();
    let mut ops = Vec::new();
    for shard in 0..3 {
        let a = random::spd_with_condition(&mut rng, dim, 4.0);
        let (op, loaded) = rt
            .submit_load_for(
                TenantId(shard as u32),
                &a,
                TileMapping::FourBit,
                Placement::Pinned(shard),
            )
            .unwrap();
        rt.run_all();
        loaded.wait().unwrap();
        ops.push(op);
    }
    for (i, &op) in ops.iter().enumerate() {
        let t = TenantId(i as u32);
        handles.push(rt.submit_mvm_for(t, op, random::normal_vector(&mut rng, dim)).unwrap());
        handles.push(
            rt.submit_mvm_for(TenantId(2 - i as u32), op, random::normal_vector(&mut rng, dim))
                .unwrap(),
        );
        let xs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, dim)).collect();
        handles.push(rt.submit_mvm_batch_for(t, op, xs).unwrap());
        handles.push(rt.submit_solve_inv_for(t, op, random::normal_vector(&mut rng, dim)).unwrap());
    }
    rt.run_all();
    for h in handles {
        h.wait().unwrap();
    }
    assert_conservation(&rt);
}

/// Asserts the conservation law: tenant hardware shares sum bit-exactly
/// to `hw_total`, and per-tenant latency counts cover every request.
#[cfg(feature = "telemetry")]
fn assert_conservation(rt: &Runtime) {
    let snap = rt.metrics_snapshot();
    let mut sum = gramc_runtime::HwSnapshot::default();
    let mut latency_count = 0;
    let mut requests = 0;
    for t in &snap.tenants {
        sum += &t.hw;
        latency_count += t.latency.count;
        requests += t.requests;
    }
    assert!(!snap.hw_total.is_zero(), "the fixture must exercise hardware");
    assert_eq!(sum, snap.hw_total, "tenant hw shares must sum bit-exactly to the global total");
    assert_eq!(
        latency_count, requests,
        "every admitted request records exactly one per-tenant latency sample"
    );
}

/// The journal ring is sizable at construction; an undersized ring
/// surfaces its overwrites as a drop count and drop rate in the metrics
/// stream, and the per-interval drop counter resets between captures.
#[cfg(feature = "telemetry")]
#[test]
fn journal_capacity_and_drop_rate_are_observable() {
    let rt = Runtime::new(1, 2, MacroConfig::small_ideal(8), 51).with_journal_capacity(32);
    let mut rng = random::seeded_rng(52);
    let a = random::gaussian_matrix(&mut rng, 8, 8);
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    rt.run_all();
    loaded.wait().unwrap();
    // Each served job emits several journal events; 64 jobs overflow a
    // 32-slot ring many times over.
    for _ in 0..64 {
        let h = rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 8)]).unwrap();
        rt.run_all();
        h.wait().unwrap();
    }
    let snap = rt.metrics_snapshot();
    assert_eq!(snap.journal_capacity, 32);
    assert_eq!(snap.journal_len, 32, "the ring is full");
    assert!(snap.journal_overwritten > 0, "the ring must have wrapped");
    assert_eq!(
        snap.journal_dropped_since_last, snap.journal_overwritten,
        "first capture baselines at zero"
    );
    assert!(snap.to_json().contains("\"drop_rate\""));

    let idle = rt.metrics_snapshot();
    assert_eq!(idle.journal_dropped_since_last, 0, "no new drops between captures");
    assert_eq!(idle.journal_overwritten, snap.journal_overwritten);
}

/// Every coalesced rider keeps its own request id and leaves a linked
/// flow in the chrome trace: a `queued:rider` span, one flow-start and
/// one flow-end record per request id, binding its queue wait to the
/// shared batch execution span.
#[cfg(feature = "telemetry")]
#[test]
fn coalesced_riders_leave_linked_flow_events() {
    let (rt, op) = fixture(1, 8, 61);
    let mut rng = random::seeded_rng(62);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            rt.submit_mvm_for(TenantId(i % 2), op, random::normal_vector(&mut rng, 8)).unwrap()
        })
        .collect();
    rt.run_all();
    for h in &handles {
        h.wait().unwrap();
    }

    let trace = rt.journal_chrome_trace();
    let count = |needle: &str| trace.matches(needle).count();
    assert_eq!(count("\"queued:mvm_many\""), 1, "one lead queue-wait span per batch");
    assert_eq!(count("\"queued:rider\""), 3, "one rider span per non-lead request");
    assert_eq!(count("\"job:mvm_many\""), 1, "the batch executes once");
    for h in &handles {
        let rid = h.request_id().0;
        assert_eq!(
            count(&format!("\"req\":{rid}}}")),
            1,
            "request {rid} annotates exactly one queue-wait span"
        );
        assert_eq!(
            count(&format!("\"id\":{rid},")),
            2,
            "request {rid} needs a flow start and a flow end"
        );
    }
    // Chrome flow-event grammar: starts and ends pair up.
    assert_eq!(count("\"ph\":\"s\""), count("\"ph\":\"f\""), "unbalanced flow records");
    assert!(trace.contains("\"bp\":\"e\""), "flow ends bind to their enclosing slice");
}
