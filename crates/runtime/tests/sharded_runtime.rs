//! Integration tests of the sharded runtime: the determinism contract,
//! work stealing under skew, the operator-registry lifecycle and
//! cross-shard tiling.

use gramc_core::tiling::TileMapping;
use gramc_core::{MacroConfig, MacroGroup};
use gramc_linalg::{random, vector, Matrix};
use gramc_runtime::{Placement, QueuePolicy, Runtime, RuntimeError, ShardedTiledOperator};

/// The core correctness contract: with fixed seeds and pinned placement,
/// the sharded runtime replays exactly what a lone `MacroGroup` would do —
/// bit-identical outputs, including every stochastic analog effect,
/// because shard tickets preserve program order under stealing.
#[test]
fn sharded_runtime_is_bit_identical_to_single_group() {
    // Paper-default non-idealities: write-verify programming noise, read
    // noise, offsets — everything the RNG touches.
    let config = MacroConfig::small(6);
    let rt = Runtime::new(3, 2, config.clone(), 42);
    let mut reference = MacroGroup::new(2, config, Runtime::shard_seed_of(42, 1));

    let mut rng = random::seeded_rng(90);
    let a = random::spd_with_condition(&mut rng, 6, 5.0);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    let ref_op = reference.load_matrix(&a).unwrap();

    // Many users, one model: individual requests coalesce into the same
    // single mvm_batch dispatch the reference issues.
    let xs: Vec<Vec<f64>> = (0..5).map(|_| random::normal_vector(&mut rng, 6)).collect();
    let handles: Vec<_> = xs.iter().map(|x| rt.submit_mvm(op, x.clone()).unwrap()).collect();
    let summary = rt.run_all();
    assert_eq!(summary.executed, 1, "5 coalesced requests = 1 analog dispatch");
    let ys_ref = reference.mvm_batch(ref_op, &xs).unwrap();
    for (h, y_ref) in handles.iter().zip(&ys_ref) {
        assert_eq!(&h.wait_vector().unwrap(), y_ref, "sharded MVM must be bit-identical");
    }

    // The solve paths continue the same RNG stream on both sides.
    let bs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, 6)).collect();
    let batch = rt.solve_inv_batch(op, &bs).unwrap();
    let batch_ref = reference.solve_inv_batch(ref_op, &bs).unwrap();
    assert_eq!(batch, batch_ref, "sharded INV batch must be bit-identical");

    let x = rt.solve_inv(op, &bs[0]).unwrap();
    let x_ref = reference.solve_inv(ref_op, &bs[0]).unwrap();
    assert_eq!(x, x_ref, "sharded INV must be bit-identical");
}

/// Submission order survives coalescing: the coalesced batch takes its
/// ticket at its first request's submission point, so jobs submitted later
/// — against the same operator or a different one on the same shard —
/// execute after it. In particular a free must not retire the operator
/// before earlier-submitted coalesced requests run, and the shard's RNG
/// stream must match a reference group replaying submission order.
#[test]
fn coalesced_mvms_execute_at_first_submission_point() {
    // Paper-default non-idealities so the RNG stream detects reordering.
    // 4 macros per shard: two differential operators of 2 planes each.
    let config = MacroConfig::small(6);
    let rt = Runtime::new(2, 4, config.clone(), 42);
    let mut reference = MacroGroup::new(4, config, Runtime::shard_seed_of(42, 1));

    let mut rng = random::seeded_rng(92);
    let a = random::spd_with_condition(&mut rng, 6, 5.0);
    let a2 = random::spd_with_condition(&mut rng, 6, 4.0);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    let other = rt.load(&a2, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    let ref_op = reference.load_matrix(&a).unwrap();
    let ref_other = reference.load_matrix(&a2).unwrap();

    // Coalesced MVM on `op`, then a solve on a *different* operator of the
    // same shard, then a free of `op`: the drain must replay exactly this
    // submission order.
    let x = random::normal_vector(&mut rng, 6);
    let b = random::normal_vector(&mut rng, 6);
    let h_mvm = rt.submit_mvm(op, x.clone()).unwrap();
    let h_inv = rt.submit_solve_inv(other, b.clone()).unwrap();
    let h_free = rt.submit_free(op).unwrap();
    // The handle is dead to further submissions the moment the free is
    // accepted, even though the free job has not executed yet.
    assert!(matches!(rt.submit_mvm(op, x.clone()), Err(RuntimeError::InvalidHandle)));
    rt.run_all();

    let y_ref = reference.mvm_batch(ref_op, &[x]).unwrap().remove(0);
    assert_eq!(h_mvm.wait_vector().unwrap(), y_ref, "MVM must run before the free");
    let x_ref = reference.solve_inv(ref_other, &b).unwrap();
    assert_eq!(h_inv.wait_vector().unwrap(), x_ref, "solve must run in submission order");
    h_free.wait().unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![0, 1]);
}

/// Worst-case skew: every job lands on deque 0, targeting operators
/// spread over all four shards. Only stealing lets the other workers
/// contribute; all jobs must retire with correct results either way.
#[test]
fn skewed_queue_drains_through_stealing() {
    let shards = 4;
    let rt = Runtime::with_queue_policy(
        shards,
        2,
        MacroConfig::small_ideal(4),
        7,
        QueuePolicy::Fixed(0),
    );
    let mut rng = random::seeded_rng(91);
    let mut ops = Vec::new();
    let mut mats = Vec::new();
    for s in 0..shards {
        let a = random::gaussian_matrix(&mut rng, 4, 4);
        let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(s)).unwrap();
        ops.push(op);
        mats.push(a);
    }
    // Explicit batch jobs (bypassing coalescing) so the scheduler sees 40
    // distinct jobs, all on deque 0.
    let inputs: Vec<Vec<f64>> = (0..40).map(|_| random::normal_vector(&mut rng, 4)).collect();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(k, x)| rt.submit_mvm_batch(ops[k % shards], vec![x.clone()]).unwrap())
        .collect();
    assert_eq!(rt.queued_jobs(), 40);
    let summary = rt.run_all();
    assert_eq!(summary.executed, 40, "every skewed job must retire");
    assert_eq!(summary.per_worker.len(), shards);
    assert_eq!(rt.queued_jobs(), 0);
    for (k, (x, h)) in inputs.iter().zip(&handles).enumerate() {
        let y = h.wait_vectors().unwrap().remove(0);
        // Ideal config: only 8-bit weight quantization separates the
        // analog result from the true product.
        let y_ref = mats[k % shards].matvec(x);
        assert!(vector::rel_error(&y, &y_ref) < 0.05, "job {k}: {y:?} vs {y_ref:?}");
    }
}

/// Shape errors are caught at `submit_mvm`, before the request joins a
/// coalesced batch — one malformed request must not fail the whole crowd.
#[test]
fn malformed_mvm_request_is_rejected_at_submission() {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 11);
    let a = Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.1 });
    let op = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded).unwrap();

    let good = rt.submit_mvm(op, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
    assert!(
        matches!(rt.submit_mvm(op, vec![1.0; 3]), Err(RuntimeError::Core(_))),
        "short request must be rejected at submit time"
    );
    rt.run_all();
    assert_eq!(good.wait_vector().unwrap().len(), 4, "valid requests still serve");
}

/// A fully pipelined lifecycle — load, MVM, free submitted back-to-back
/// with no drain in between — retires in one `run_all`.
#[test]
fn pipelined_load_mvm_free_completes_in_one_drain() {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 12);
    let a = Matrix::from_fn(4, 4, |i, j| if i == j { 2.0 } else { 0.2 });
    let (op, h_load) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let h_mvm = rt.submit_mvm(op, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
    let h_free = rt.submit_free(op).unwrap();
    assert!(matches!(rt.submit_free(op), Err(RuntimeError::DoubleFree)));
    rt.run_all();
    h_load.wait().unwrap();
    assert_eq!(h_mvm.wait_vector().unwrap().len(), 4);
    h_free.wait().unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![0, 0]);
}

/// Load / free across shards: least-loaded spreading, double-free
/// rejection, dead-handle rejection and capacity reuse after free.
#[test]
fn operator_registry_lifecycle() {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 3);
    let a = Matrix::from_rows(&[
        &[1.0, 0.2, 0.0, -0.3],
        &[0.0, 0.8, 0.1, 0.0],
        &[0.5, 0.0, 1.0, 0.2],
        &[-0.2, 0.4, 0.0, 0.9],
    ]);
    let op0 = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded).unwrap();
    let op1 = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded).unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![1, 1], "least-loaded must spread");

    rt.free(op0).unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![0, 1]);
    assert!(matches!(rt.free(op0), Err(RuntimeError::DoubleFree)));
    assert!(matches!(rt.submit_free(op0), Err(RuntimeError::DoubleFree)));
    assert!(matches!(rt.submit_mvm(op0, vec![0.0; 4]), Err(RuntimeError::InvalidHandle)));
    assert!(matches!(rt.mvm_batch(op0, &[vec![0.0; 4]]), Err(RuntimeError::InvalidHandle)));

    // op1 is untouched by op0's lifecycle.
    let y = rt.mvm(op1, &[1.0, 0.0, 0.0, 0.0]).unwrap();
    assert_eq!(y.len(), 4);

    // Freed capacity is reusable, pinned placement is honored and
    // validated.
    let op2 = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![1, 1]);
    rt.free(op2).unwrap();
    assert!(matches!(
        rt.load(&a, TileMapping::FourBit, Placement::Pinned(9)),
        Err(RuntimeError::BadShard { shard: 9, shards: 2 })
    ));
}

/// Cross-shard tiling: a 10×10 matrix on 4×4 arrays spreads 9 tiles
/// round-robin over the shards and reduces to the right product.
#[test]
fn sharded_tiled_operator_accumulates_across_shards() {
    let rt = Runtime::new(2, 10, MacroConfig::small_ideal(4), 21);
    let mut rng = random::seeded_rng(81);
    let a = random::gaussian_matrix(&mut rng, 10, 10);
    let mut tiled = ShardedTiledOperator::load(&rt, &a, TileMapping::FourBit).unwrap();
    assert_eq!(tiled.tile_count(), 9);
    assert_eq!(tiled.shape(), (10, 10));
    let spread = rt.live_operators_per_shard();
    assert_eq!(spread.iter().sum::<usize>(), 9);
    assert!(spread.iter().all(|&n| n > 0), "tiles must spread over shards: {spread:?}");

    let xs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, 10)).collect();
    let ys = tiled.mvm_batch(&rt, &xs).unwrap();
    for (x, y) in xs.iter().zip(&ys) {
        let y_ref = a.matvec(x);
        assert!(vector::rel_error(y, &y_ref) < 0.08, "{y:?} vs {y_ref:?}");
    }

    tiled.free(&rt).unwrap();
    assert_eq!(rt.live_operators_per_shard(), vec![0, 0]);
    assert!(tiled.mvm(&rt, &[0.0; 10]).is_err());
    assert!(tiled.free(&rt).is_err());
}

/// `wait_timeout` bounds the wait on a job nobody drains: it must return
/// [`RuntimeError::WaitTimeout`] instead of blocking forever, and still
/// deliver the result once the job actually retires.
#[test]
fn wait_timeout_bounds_undrained_jobs() {
    use std::time::Duration;

    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 13);
    let a = Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.1 });
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();

    // Submitted but never drained: the bounded wait gives up.
    let h = rt.submit_mvm(op, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
    assert!(matches!(h.wait_timeout(Duration::from_millis(20)), Err(RuntimeError::WaitTimeout)));
    // A zero timeout on a pending job expires immediately.
    assert!(matches!(h.wait_timeout(Duration::ZERO), Err(RuntimeError::WaitTimeout)));

    // Once drained, the same handle serves the result through the bounded
    // wait as well.
    rt.run_all();
    let y = match h.wait_timeout(Duration::from_secs(5)).unwrap() {
        gramc_runtime::JobOutput::Vector(y) => y,
        other => panic!("expected a vector, got {other:?}"),
    };
    assert_eq!(y.len(), 4);
}

/// Non-finite inputs are rejected at submit time on every compute path,
/// mirroring the shape check: one poisoned request must not reach an
/// analog dispatch or take down a coalesced batch.
#[test]
fn non_finite_inputs_are_rejected_at_submission() {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 14);
    let a = Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.1 });
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();

    let nan = vec![1.0, f64::NAN, 0.0, 0.0];
    let inf = vec![f64::INFINITY, 0.0, 0.0, 0.0];
    assert!(matches!(rt.submit_mvm(op, nan.clone()), Err(RuntimeError::NonFiniteInput)));
    assert!(matches!(
        rt.submit_mvm_batch(op, vec![vec![1.0; 4], inf.clone()]),
        Err(RuntimeError::NonFiniteInput)
    ));
    assert!(matches!(rt.submit_solve_inv(op, nan.clone()), Err(RuntimeError::NonFiniteInput)));
    assert!(matches!(rt.submit_solve_inv_batch(op, vec![inf]), Err(RuntimeError::NonFiniteInput)));

    // A good request submitted alongside the rejected ones still serves.
    let good = rt.submit_mvm(op, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
    let summary = rt.run_all();
    assert_eq!(good.wait_vector().unwrap().len(), 4);
    assert_eq!(summary.failed_checks, 0);
    assert_eq!(summary.degraded, 0);
    assert!(summary.events.is_empty());
}

/// A load that exceeds shard capacity fails cleanly and rolls back the
/// tiles already placed.
#[test]
fn sharded_tiling_rolls_back_on_capacity_error() {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 22);
    let mut rng = random::seeded_rng(82);
    let a = random::gaussian_matrix(&mut rng, 12, 12); // 9 tiles, won't fit
    assert!(ShardedTiledOperator::load(&rt, &a, TileMapping::FourBit).is_err());
    assert_eq!(rt.live_operators_per_shard(), vec![0, 0], "rollback must free all tiles");
}

// ── telemetry ─────────────────────────────────────────────────────────

/// Hardware counters are a pure function of the submitted workload, never
/// of the schedule: the same jobs pinned to shard 0 must produce bitwise
/// equal counters, per-kind attribution and analog outputs whether the
/// drain runs inline on the calling thread with linalg fan-out capped to
/// one lane, or across three stealing worker threads uncapped. (Shard 0
/// is seeded identically regardless of how many shards exist, so the two
/// runtimes replay the same RNG stream.)
#[cfg(feature = "telemetry")]
#[test]
fn hardware_counters_are_invariant_to_worker_thread_count() {
    let config = MacroConfig::small(6);
    let run = |shards: usize, cap: Option<usize>| {
        let rt = Runtime::new(shards, 2, config.clone(), 31);
        let mut rng = random::seeded_rng(77);
        let a = random::spd_with_condition(&mut rng, 6, 4.0);
        let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
        let xs: Vec<Vec<f64>> = (0..6).map(|_| random::normal_vector(&mut rng, 6)).collect();
        let handles: Vec<_> = xs.iter().map(|x| rt.submit_mvm(op, x.clone()).unwrap()).collect();
        let solve = rt.submit_solve_inv(op, random::normal_vector(&mut rng, 6)).unwrap();
        match cap {
            Some(c) => gramc_linalg::parallel::with_thread_cap(c, || rt.run_all()),
            None => rt.run_all(),
        };
        let mut ys: Vec<f64> = handles.iter().flat_map(|h| h.wait_vector().unwrap()).collect();
        ys.extend(solve.wait_vector().unwrap());
        (rt.hw_snapshot(), rt.metrics_snapshot(), ys)
    };
    let (hw1, m1, ys1) = run(1, Some(1));
    let (hw3, m3, ys3) = run(3, None);

    assert_eq!(hw1, hw3, "hardware counters must not depend on worker threads");
    assert_eq!(ys1, ys3, "analog outputs must not depend on worker threads");
    for (k1, k3) in m1.kinds.iter().zip(&m3.kinds) {
        assert_eq!(k1.jobs, k3.jobs, "{} job count differs", k1.kind);
        assert_eq!(k1.hw, k3.hw, "{} attribution differs", k1.kind);
    }

    // Snapshot self-consistency: every executed job records exactly one
    // sample in each lifecycle histogram, the per-kind attribution sums to
    // the group totals, and the journal saw the work.
    let jobs: u64 = m3.kinds.iter().map(|k| k.jobs).sum();
    assert_eq!(m3.submit_to_dispatch.count, jobs);
    assert_eq!(m3.dispatch_to_complete.count, jobs);
    assert_eq!(m3.submit_to_complete.count, jobs);
    let mut sum = gramc_runtime::HwSnapshot::default();
    for k in &m3.kinds {
        sum += &k.hw;
    }
    assert_eq!(sum, m3.hw_total);
    assert_eq!(hw3, m3.hw_total, "all analog work flowed through the runtime");
    assert!(m3.journal_len > 0, "journal must have recorded the job spans");
    assert!(m3.queue_depth_max >= 1);
}

/// Cross-build determinism anchor: one deterministic serving trace, its
/// outputs folded into a single checksum pinned here. CI runs this exact
/// test with telemetry on and off (`--no-default-features`), and in the
/// single-threaded scheduler fallback; the constant must hold in every
/// build, proving instrumentation and scheduling never perturb a bit of
/// the analog math. Regenerate (only after an *intentional* numerics
/// change) by running the test and copying the reported actual value.
#[test]
fn analog_outputs_match_pinned_golden_checksum() {
    let rt = Runtime::new(2, 2, MacroConfig::small(8), 64);
    let mut rng = random::seeded_rng(55);
    let a = random::spd_with_condition(&mut rng, 8, 6.0);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    let xs: Vec<Vec<f64>> = (0..4).map(|_| random::normal_vector(&mut rng, 8)).collect();
    let mvms: Vec<_> = xs.iter().map(|x| rt.submit_mvm(op, x.clone()).unwrap()).collect();
    let solve = rt.submit_solve_inv(op, random::normal_vector(&mut rng, 8)).unwrap();
    rt.run_all();

    let mut acc: u64 = 0;
    for y in mvms.iter().chain(std::iter::once(&solve)) {
        for v in y.wait_vector().unwrap() {
            acc = acc.rotate_left(7) ^ v.to_bits();
        }
    }
    assert_eq!(acc, 0x34B7_034A_BDE4_33DF, "analog output checksum drifted across builds");
}
