//! Integration tests of the persistent serving engine: admission control
//! at the queue bound, parked-worker completion without a global drain,
//! graceful shutdown, the serving determinism contract and the pinned
//! metrics schema.

use std::sync::Arc;
use std::time::Duration;

use gramc_core::tiling::TileMapping;
use gramc_core::{MacroConfig, MacroGroup};
use gramc_linalg::random;
use gramc_runtime::{Placement, Runtime, RuntimeError, RuntimeServer};

/// A live 2-shard server with one loaded seeded 64-dim operator.
fn serving_fixture(seed: u64) -> (Arc<Runtime>, RuntimeServer, gramc_runtime::OperatorHandle) {
    let rt = Arc::new(Runtime::new(2, 2, MacroConfig::small_ideal(16), seed));
    let server = RuntimeServer::start(rt.clone());
    let mut rng = random::seeded_rng(seed ^ 0x5eed);
    let a = random::gaussian_matrix(&mut rng, 16, 16);
    let (op, loaded) =
        rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded).expect("load");
    loaded.wait().expect("server completes the load without run_all");
    (rt, server, op)
}

/// Admission control: with a queue bound and no workers draining, the
/// submission past the bound fails typed with the configured limit, the
/// queue itself is untouched, and capacity frees up once the backlog
/// drains.
#[test]
fn queue_full_rejects_past_the_bound() {
    let rt = Runtime::new(1, 2, MacroConfig::small_ideal(8), 3).with_queue_limit(2);
    let mut rng = random::seeded_rng(17);
    let a = random::gaussian_matrix(&mut rng, 8, 8);
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let x = random::normal_vector(&mut rng, 8);
    let queued = rt.submit_mvm_batch(op, vec![x.clone()]).unwrap();

    // Two jobs queued (load + batch): the bound is hit exactly now.
    let err = rt.submit_mvm_batch(op, vec![x.clone()]).unwrap_err();
    assert!(
        matches!(err, RuntimeError::QueueFull { limit: 2 }),
        "expected QueueFull {{ limit: 2 }}, got {err:?}"
    );
    assert_eq!(rt.queued_jobs(), 2, "a rejected submission must not enqueue");

    #[cfg(feature = "telemetry")]
    {
        let snap = rt.metrics_snapshot();
        assert_eq!(snap.rejected, 1, "rejections are metered");
        assert_eq!(snap.queue_depth, 2);
    }

    // Draining restores admission capacity.
    rt.run_all();
    loaded.wait().unwrap();
    queued.wait().unwrap();
    rt.submit_mvm_batch(op, vec![x]).expect("capacity frees after the drain");
}

/// Without a server (and no run_all), a submitted job never completes —
/// `wait_timeout` elapses typed. Attaching a server then finishes the very
/// same job: persistent workers pick up pre-existing backlog on start.
#[test]
fn wait_timeout_elapses_until_a_server_attaches() {
    let rt = Arc::new(Runtime::new(2, 2, MacroConfig::small_ideal(8), 5));
    let mut rng = random::seeded_rng(29);
    let a = random::gaussian_matrix(&mut rng, 8, 8);
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let h = rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 8)]).unwrap();

    let err = h.wait_timeout(Duration::from_millis(30)).unwrap_err();
    assert!(matches!(err, RuntimeError::WaitTimeout), "no workers: {err:?}");

    let server = RuntimeServer::start(rt.clone());
    loaded.wait().unwrap();
    h.wait_timeout(Duration::from_secs(10)).expect("server completes the queued job");
    let report = server.shutdown();
    assert_eq!(report.panicked_workers, 0);
    assert!(report.jobs_executed >= 2, "load + mvm served, got {}", report.jobs_executed);
}

/// Graceful shutdown drains: every job submitted before `shutdown` still
/// completes and answers its waiters, and the report accounts for all of
/// them.
#[test]
fn graceful_shutdown_completes_in_flight_jobs() {
    let (rt, server, op) = serving_fixture(7);
    let mut rng = random::seeded_rng(31);
    let handles: Vec<_> = (0..48)
        .map(|_| rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 16)]).unwrap())
        .collect();

    // Shut down immediately: most of the 48 are still queued.
    let report = server.shutdown();
    assert_eq!(report.workers, 2);
    assert_eq!(report.panicked_workers, 0);
    for h in &handles {
        h.wait_timeout(Duration::from_millis(1))
            .expect("every pre-shutdown submission completes during the drain");
    }
    assert!(report.jobs_executed >= 49, "load + 48 batches, got {}", report.jobs_executed);
}

/// The serving determinism contract: with fixed seeds and pinned
/// placement, results served by persistent workers are bit-identical to a
/// lone `MacroGroup` replaying the same submission order — across MVM,
/// INV-batch and PINV-batch paths. (Explicit batches, not coalesced
/// `submit_mvm`: batch composition under a live server depends on timing.)
#[test]
fn served_results_are_bit_identical_to_lone_group() {
    let config = MacroConfig::small(6);
    let rt = Arc::new(Runtime::new(3, 2, config.clone(), 42));
    let mut reference = MacroGroup::new(2, config, Runtime::shard_seed_of(42, 1));
    let server = RuntimeServer::start(rt.clone());

    let mut rng = random::seeded_rng(90);
    let a = random::spd_with_condition(&mut rng, 6, 5.0);
    let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    loaded.wait().unwrap();
    let ref_op = reference.load_matrix(&a).unwrap();

    // Submit→wait sequentially so program order on the shard is exactly
    // the reference's call order.
    let xs: Vec<Vec<f64>> = (0..5).map(|_| random::normal_vector(&mut rng, 6)).collect();
    let ys = rt.submit_mvm_batch(op, xs.clone()).unwrap().wait_vectors().unwrap();
    assert_eq!(ys, reference.mvm_batch(ref_op, &xs).unwrap(), "served MVM batch differs");

    let bs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, 6)).collect();
    let inv = rt.submit_solve_inv_batch(op, bs.clone()).unwrap().wait_vectors().unwrap();
    assert_eq!(inv, reference.solve_inv_batch(ref_op, &bs).unwrap(), "served INV batch differs");

    let pinv = rt.submit_solve_pinv_batch(op, bs.clone()).unwrap().wait_vectors().unwrap();
    assert_eq!(pinv, reference.solve_pinv_batch(ref_op, &bs).unwrap(), "served PINV batch differs");

    let report = server.shutdown();
    assert_eq!(report.panicked_workers, 0);
}

/// Every served job leaves its two-stage span pair in the journal: a
/// `queued:<kind>` span on the shard lane (submit → dispatch) abutting a
/// `job:<kind>` span on the worker lane (dispatch → complete).
#[cfg(feature = "telemetry")]
#[test]
fn serving_trace_has_span_pair_per_job() {
    let (rt, server, op) = serving_fixture(13);
    let mut rng = random::seeded_rng(37);
    let n = 8;
    for _ in 0..n {
        rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 16)]).unwrap().wait().unwrap();
    }
    server.shutdown();

    let trace = rt.journal_chrome_trace();
    let count = |needle: &str| trace.matches(needle).count();
    assert_eq!(count("\"queued:mvm_batch\""), n, "one queue-wait span per batch");
    assert_eq!(count("\"job:mvm_batch\""), n, "one execution span per batch");
    assert_eq!(count("\"queued:load\""), 1);
    assert_eq!(count("\"job:load\""), 1);
    assert_eq!(count("\"submit\""), n + 1, "one submit instant per submission");
}

/// The metrics JSONL contract CI and dashboards parse: schema version is
/// pinned at 3 (v3 added the `tenants` and `slo` sections and the widened
/// `journal` block) and every reporter record is one compact line carrying
/// it.
#[cfg(feature = "telemetry")]
#[test]
fn metrics_stream_schema_version_is_pinned() {
    assert_eq!(gramc_runtime::METRICS_SCHEMA_VERSION, 3, "schema bumps must be deliberate");

    let (rt, server, op) = serving_fixture(19);
    let path = std::env::temp_dir().join("gramc_serving_metrics_test.jsonl");
    let reporter =
        gramc_runtime::MetricsReporter::start(rt.clone(), &path, Duration::from_millis(10))
            .expect("start reporter");
    let mut rng = random::seeded_rng(41);
    for _ in 0..4 {
        rt.submit_mvm_batch(op, vec![random::normal_vector(&mut rng, 16)]).unwrap().wait().unwrap();
    }
    server.shutdown();
    let lines_written = reporter.stop().expect("reporter stops cleanly");
    assert!(lines_written >= 1, "at least the final snapshot is written");

    let stream = std::fs::read_to_string(&path).expect("read metrics stream");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), lines_written, "one record per line");
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"schema_version\": 3"), "schema version missing: {line}");
        assert!(line.contains("\"tenants\""), "tenants section missing: {line}");
        assert!(line.contains("\"slo\""), "slo section missing: {line}");
        assert!(line.contains("\"drop_rate\""), "journal drop rate missing: {line}");
        let opens = line.matches('{').count();
        assert_eq!(opens, line.matches('}').count(), "unbalanced braces: {line}");
    }
}
