//! End-to-end fault-injection tests of the self-healing runtime: a shard
//! hit by stuck-at faults mid-workload must be quarantined, its operators
//! re-programmed onto a healthy shard, and subsequent results must match
//! the fault-free baseline within the paper's analog noise tolerance —
//! while a zero-rate fault plan must change nothing at all, bit for bit.

#![cfg(feature = "fault-inject")]

use gramc_core::tiling::TileMapping;
use gramc_core::{MacroConfig, MacroGroup};
use gramc_linalg::{random, vector};
use gramc_runtime::{FaultConfig, HealthConfig, HealthEvent, Placement, Runtime, RuntimeError};

/// Analog MVM error budget on the small ideal config (weight quantization
/// only) — same bound the fault-free sharded tests use.
const NOISE_TOL: f64 = 0.05;

fn serving_health() -> HealthConfig {
    HealthConfig {
        residual_tolerance: Some(0.2),
        quarantine_after: 2,
        max_retries: 2,
        ..HealthConfig::default()
    }
}

/// The tentpole scenario: a multi-shard runtime serving MVMs, one shard
/// struck by stuck-at faults mid-workload. The runtime must detect the bad
/// results through its residual checks, quarantine the sick shard, migrate
/// its operator to the healthy shard, answer the in-flight jobs correctly
/// anyway, and keep serving within the fault-free noise budget — reporting
/// every step through `RunSummary`.
#[test]
fn stuck_shard_is_quarantined_and_operators_migrate() {
    // 6 macros per shard: room on the healthy shard for its own operator,
    // the migrated one, and one post-recovery placement (2 planes each).
    let rt =
        Runtime::new(2, 6, MacroConfig::small_ideal(4), 42).with_health_config(serving_health());
    let mut rng = random::seeded_rng(7);
    let a = random::gaussian_matrix(&mut rng, 4, 4);
    let b = random::gaussian_matrix(&mut rng, 4, 4);
    let op_a = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let op_b = rt.load(&b, TileMapping::FourBit, Placement::Pinned(1)).unwrap();

    // Fault-free baseline on both shards.
    let xs: Vec<Vec<f64>> = (0..4).map(|_| random::normal_vector(&mut rng, 4)).collect();
    for x in &xs {
        let y = rt.mvm(op_a, x).unwrap();
        assert!(vector::rel_error(&y, &a.matvec(x)) < NOISE_TOL);
    }

    // Mid-workload, shard 0's arrays break: a third of the cells stick.
    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.3), 99).unwrap();

    let handles: Vec<_> =
        xs.iter().map(|x| rt.submit_mvm_batch(op_a, vec![x.clone()]).unwrap()).collect();
    let summary = rt.run_all();

    // The residual checks caught the garbage, the shard crossed the
    // quarantine threshold, and the operator moved to shard 1.
    assert!(summary.failed_checks > 0, "stuck cells must fail residual checks");
    assert!(
        summary.events.iter().any(|e| matches!(e, HealthEvent::ShardQuarantined { shard: 0, .. })),
        "events: {:?}",
        summary.events
    );
    assert!(
        summary.events.contains(&HealthEvent::OperatorMigrated { op: op_a, from: 0, to: 1 }),
        "events: {:?}",
        summary.events
    );
    assert_eq!(rt.quarantined_shards(), vec![0]);
    assert!(rt.shard_failures(0) >= 2);

    // The in-flight jobs were still answered correctly (re-dispatched to
    // the healthy shard or, out of retries, via the digital fallback).
    for (x, h) in xs.iter().zip(&handles) {
        let y = h.wait_vectors().unwrap().remove(0);
        assert!(
            vector::rel_error(&y, &a.matvec(x)) < NOISE_TOL,
            "recovered result must match the fault-free baseline"
        );
    }

    // Post-recovery serving: both operators keep answering within the
    // fault-free noise budget; nothing lands on the quarantined shard.
    for x in &xs {
        let y = rt.mvm(op_a, x).unwrap();
        assert!(vector::rel_error(&y, &a.matvec(x)) < NOISE_TOL, "migrated operator serves");
        let y = rt.mvm(op_b, x).unwrap();
        assert!(vector::rel_error(&y, &b.matvec(x)) < NOISE_TOL, "healthy shard unaffected");
    }

    // New placements avoid the quarantined shard even when "least loaded".
    let op_c = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded).unwrap();
    let y = rt.mvm(op_c, &xs[0]).unwrap();
    assert!(vector::rel_error(&y, &a.matvec(&xs[0])) < NOISE_TOL);
    assert_eq!(rt.live_operators_per_shard()[0], 0, "no placements on the sick shard");
}

/// Health probes feed the same quarantine machinery as job-level checks:
/// probing a faulted shard between drains detects the damage from readback
/// alone — no user job has to produce garbage first.
#[test]
fn probes_detect_faults_and_trigger_migration() {
    let rt =
        Runtime::new(2, 4, MacroConfig::small_ideal(4), 43).with_health_config(serving_health());
    let mut rng = random::seeded_rng(8);
    let a = random::gaussian_matrix(&mut rng, 4, 4);
    let a2 = random::gaussian_matrix(&mut rng, 4, 4);
    let op0 = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let op1 = rt.load(&a2, TileMapping::FourBit, Placement::Pinned(0)).unwrap();

    // Healthy probe: tiny readback residuals, no failures recorded.
    let reports = rt.probe_shard(0).unwrap();
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|(_, r)| r.residual < 0.05), "{reports:?}");
    assert_eq!(rt.shard_failures(0), 0);

    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.3), 17).unwrap();

    // Both operators' probes miss the tolerance → two failed checks →
    // quarantine + migration, straight from the probe path.
    let reports = rt.probe_shard(0).unwrap();
    assert!(reports.iter().all(|(_, r)| r.residual > 0.05), "{reports:?}");
    assert!(reports.iter().all(|(_, r)| r.bad_cells > 0));
    assert_eq!(rt.quarantined_shards(), vec![0]);

    // The migrated operators serve healthily; the events surface in the
    // next drain's summary.
    let x = random::normal_vector(&mut rng, 4);
    let h0 = rt.submit_mvm(op0, x.clone()).unwrap();
    let h1 = rt.submit_mvm(op1, x.clone()).unwrap();
    let summary = rt.run_all();
    assert!(summary
        .events
        .iter()
        .any(|e| matches!(e, HealthEvent::ShardQuarantined { shard: 0, .. })));
    assert_eq!(
        summary
            .events
            .iter()
            .filter(|e| matches!(e, HealthEvent::OperatorMigrated { from: 0, to: 1, .. }))
            .count(),
        2,
        "both operators migrate: {:?}",
        summary.events
    );
    assert!(vector::rel_error(&h0.wait_vector().unwrap(), &a.matvec(&x)) < NOISE_TOL);
    assert!(vector::rel_error(&h1.wait_vector().unwrap(), &a2.matvec(&x)) < NOISE_TOL);
}

/// With every shard quarantined there is nowhere left to migrate: the
/// runtime drops to the explicit `Degraded` mode and answers from the
/// digital reference path — correct results, counted and reported.
#[test]
fn degraded_mode_serves_digitally_when_no_shard_is_healthy() {
    let rt =
        Runtime::new(1, 4, MacroConfig::small_ideal(4), 44).with_health_config(serving_health());
    let mut rng = random::seeded_rng(9);
    let a = random::spd_with_condition(&mut rng, 4, 3.0);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();

    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.4), 5).unwrap();
    rt.probe_shard(0).unwrap();
    rt.probe_shard(0).unwrap();
    assert_eq!(rt.quarantined_shards(), vec![0]);

    // MVM and solve both come back exact: the digital path computes with
    // the registry's kept matrix.
    let x = random::normal_vector(&mut rng, 4);
    let h_mvm = rt.submit_mvm(op, x.clone()).unwrap();
    let h_inv = rt.submit_solve_inv(op, x.clone()).unwrap();
    let summary = rt.run_all();
    assert!(summary.degraded > 0, "degraded dispatches must be counted");
    assert!(summary
        .events
        .iter()
        .any(|e| matches!(e, HealthEvent::OperatorDegraded { shard: 0, .. })));
    let y = h_mvm.wait_vector().unwrap();
    assert!(vector::rel_error(&y, &a.matvec(&x)) < 1e-12, "digital MVM is exact");
    let sol = h_inv.wait_vector().unwrap();
    assert!(vector::rel_error(&a.matvec(&sol), &x) < 1e-9, "digital solve is exact");

    // Loads on a fully quarantined runtime still succeed — digitally.
    let op2 = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded).unwrap();
    let y2 = rt.mvm(op2, &x).unwrap();
    assert!(vector::rel_error(&y2, &a.matvec(&x)) < 1e-12);
}

/// Satellite 1: a load whose write-verify pass cannot converge (stuck
/// cells can never reach their targets) is reprogrammed the configured
/// number of times and then fails with the typed
/// [`RuntimeError::ProgramVerifyFailed`] — and the failure feeds the
/// shard's health record.
#[test]
fn unverifiable_load_fails_typed_after_bounded_retries() {
    let health = HealthConfig {
        max_load_failure_frac: 0.01,
        quarantine_after: 100, // keep the shard un-quarantined for this test
        ..serving_health()
    };
    let rt = Runtime::new(1, 4, MacroConfig::small_ideal(4), 45).with_health_config(health);
    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.3), 23).unwrap();

    let mut rng = random::seeded_rng(10);
    let a = random::gaussian_matrix(&mut rng, 4, 4);
    let err = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap_err();
    let RuntimeError::ProgramVerifyFailed { failed_cells, total_cells } = err else {
        panic!("expected ProgramVerifyFailed, got {err:?}");
    };
    assert!(failed_cells > 0 && failed_cells <= total_cells);
    assert!(rt.shard_failures(0) > 0, "the failed load counts against the shard");
    assert_eq!(rt.live_operators_per_shard(), vec![0], "failed load leaves nothing behind");
}

/// The metered flavor of the bounded-retry contract above: each of the
/// three programming attempts (initial + `max_retries`) blind-writes both
/// conductance planes of the 4×4 region, so the "load" job-kind must
/// attribute exactly 3 · 2 · 16 write cycles and pulses — one failing job,
/// fully accounted, with no converter or read activity.
#[cfg(feature = "telemetry")]
#[test]
fn failed_load_retries_are_metered_exactly() {
    let health =
        HealthConfig { max_load_failure_frac: 0.01, quarantine_after: 100, ..serving_health() };
    let rt = Runtime::new(1, 4, MacroConfig::small_ideal(4), 45).with_health_config(health);
    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.3), 23).unwrap();

    let mut rng = random::seeded_rng(10);
    let a = random::gaussian_matrix(&mut rng, 4, 4);
    let err = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap_err();
    assert!(matches!(err, RuntimeError::ProgramVerifyFailed { .. }));

    let m = rt.metrics_snapshot();
    let load = m.kinds.iter().find(|k| k.kind == "load").expect("load kind");
    assert_eq!(load.jobs, 1, "the retries all happen inside one load job");
    assert_eq!(load.hw.write_cycles, 3 * 2 * 16);
    assert_eq!(load.hw.write_pulses, 3 * 2 * 16);
    assert_eq!(
        load.hw.dac_drives + load.hw.adc_conversions + load.hw.settle_events,
        0,
        "programming drives no converters"
    );
    assert_eq!(m.hw_total, load.hw, "nothing but the doomed load ran");
}

/// Satellite 4 determinism contract: the `fault-inject` feature compiled
/// in with a **zero-rate** plan installed must be bit-identical to the
/// baseline — same seeds, pinned placement, identical RNG stream — so the
/// instrumentation itself provably costs nothing.
#[test]
fn zero_rate_injection_is_bit_identical_to_baseline() {
    // Default health config: residual checks off, exactly as the baseline
    // bit-identity test runs — nothing may touch the RNG stream.
    let config = MacroConfig::small(6);
    let rt = Runtime::new(2, 2, config.clone(), 42);
    let mut reference = MacroGroup::new(2, config, Runtime::shard_seed_of(42, 1));

    // Zero-rate plans on every shard: installed, but empty.
    let zero = FaultConfig::default();
    assert!(zero.is_fault_free());
    rt.inject_shard_faults(0, &zero, 1).unwrap();
    rt.inject_shard_faults(1, &zero, 2).unwrap();

    let mut rng = random::seeded_rng(90);
    let a = random::spd_with_condition(&mut rng, 6, 5.0);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(1)).unwrap();
    let ref_op = reference.load_matrix(&a).unwrap();

    let xs: Vec<Vec<f64>> = (0..5).map(|_| random::normal_vector(&mut rng, 6)).collect();
    let handles: Vec<_> = xs.iter().map(|x| rt.submit_mvm(op, x.clone()).unwrap()).collect();
    let summary = rt.run_all();
    let ys_ref = reference.mvm_batch(ref_op, &xs).unwrap();
    for (h, y_ref) in handles.iter().zip(&ys_ref) {
        assert_eq!(&h.wait_vector().unwrap(), y_ref, "zero-rate plan must be bit-identical");
    }
    assert_eq!(summary.failed_checks, 0);
    assert_eq!(summary.degraded, 0);
    assert!(summary.events.is_empty());

    let bs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, 6)).collect();
    assert_eq!(
        rt.solve_inv_batch(op, &bs).unwrap(),
        reference.solve_inv_batch(ref_op, &bs).unwrap(),
        "solve path bit-identical under zero-rate injection"
    );
}

/// Clearing faults restores a shard's arrays; drift advances only under an
/// installed drift plan. Sanity for the runtime-level fault controls.
#[test]
fn fault_controls_round_trip() {
    let rt =
        Runtime::new(2, 4, MacroConfig::small_ideal(4), 46).with_health_config(serving_health());
    let mut rng = random::seeded_rng(11);
    let a = random::gaussian_matrix(&mut rng, 4, 4);
    let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
    let x = random::normal_vector(&mut rng, 4);

    rt.inject_shard_faults(0, &FaultConfig::stuck_at(0.3), 3).unwrap();
    let bad = rt.probe_shard(0).unwrap()[0].1;
    assert!(bad.residual > 0.05);

    rt.clear_shard_faults(0).unwrap();
    let good = rt.probe_shard(0).unwrap()[0].1;
    assert!(good.residual < 0.05, "cleared faults restore the readback");

    // Out-of-range shard indices are typed errors on every control.
    assert!(matches!(
        rt.inject_shard_faults(9, &FaultConfig::default(), 0),
        Err(RuntimeError::BadShard { shard: 9, shards: 2 })
    ));
    assert!(matches!(rt.advance_shard_fault_time(9, 1.0), Err(RuntimeError::BadShard { .. })));
    assert!(matches!(rt.clear_shard_faults(9), Err(RuntimeError::BadShard { .. })));

    let y = rt.mvm(op, &x).unwrap();
    assert!(vector::rel_error(&y, &a.matvec(&x)) < NOISE_TOL, "shard serves again");
}
