//! Error type of the sharded runtime.

use std::error::Error;
use std::fmt;

use gramc_core::CoreError;

/// Errors produced by the sharded runtime layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Error from the macro-group / analog layer of one shard.
    Core(CoreError),
    /// An operator handle that was never issued, whose load failed, or
    /// that refers to a freed operator.
    InvalidHandle,
    /// The operator was already freed (or its free is already queued).
    DoubleFree,
    /// A pinned placement or shard index is out of range.
    BadShard {
        /// Requested shard.
        shard: usize,
        /// Number of shards in the runtime.
        shards: usize,
    },
    /// A job produced a different output variant than the caller expected
    /// (e.g. waiting for a vector on a `Load` job).
    WrongOutput,
    /// The job panicked on its shard. The panic is re-raised out of
    /// [`Runtime::run_all`](crate::Runtime::run_all) on the driving thread;
    /// waiters on other threads see this error instead of hanging.
    JobPanicked,
    /// [`JobHandle::wait_timeout`](crate::JobHandle::wait_timeout) gave up
    /// before the job retired — usually a job that was submitted but never
    /// drained with [`Runtime::run_all`](crate::Runtime::run_all).
    WaitTimeout,
    /// A submitted input vector contains a non-finite value (`NaN` or
    /// `±inf`). Rejected at submission, mirroring the shape check, so one
    /// malformed request cannot poison an analog dispatch or a coalesced
    /// batch.
    NonFiniteInput,
    /// Admission control rejected the submission: the runtime's bounded
    /// queue already holds `limit` unretired jobs. Typed backpressure — the
    /// caller should retry later, shed load, or raise the bound with
    /// [`Runtime::with_queue_limit`](crate::Runtime::with_queue_limit).
    QueueFull {
        /// The configured queue bound that was hit.
        limit: usize,
    },
    /// A load's write-verify pass left more cells unconverged than the
    /// health policy's `max_load_failure_frac` allows, even after its
    /// bounded reprogram retries.
    ProgramVerifyFailed {
        /// Cells that failed to verify on the final attempt.
        failed_cells: usize,
        /// Cells programmed per attempt.
        total_cells: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "shard error: {e}"),
            Self::InvalidHandle => write!(f, "invalid or stale operator handle"),
            Self::DoubleFree => write!(f, "operator already freed"),
            Self::BadShard { shard, shards } => {
                write!(f, "shard {shard} out of range (runtime has {shards})")
            }
            Self::WrongOutput => write!(f, "job output variant does not match the request"),
            Self::JobPanicked => write!(f, "job panicked on its shard"),
            Self::WaitTimeout => write!(f, "timed out waiting for a job to retire"),
            Self::NonFiniteInput => write!(f, "input vector contains NaN or infinite values"),
            Self::QueueFull { limit } => {
                write!(f, "submission rejected: queue already holds {limit} jobs")
            }
            Self::ProgramVerifyFailed { failed_cells, total_cells } => {
                write!(f, "write-verify failed on {failed_cells}/{total_cells} cells")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}
