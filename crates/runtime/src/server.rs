//! Persistent serving front-end: always-on worker threads over a
//! [`Runtime`], parked between submissions, plus the live metrics reporter
//! that streams [`MetricsSnapshot`](crate::MetricsSnapshot) JSONL while the
//! server runs.
//!
//! [`Runtime::run_all`] is a *batch* drain — it spins workers up, empties
//! the queues and tears them down, so every caller pays thread start-up and
//! no submission completes until somebody drains. [`RuntimeServer`] inverts
//! that: one thread per shard runs for the server's whole lifetime,
//! executing jobs the moment they are due and parking on a condvar when the
//! queues run dry. `submit_* → JobHandle::wait` then behaves like a real
//! service call: no global drain, first-come completion, bounded queues
//! with typed rejection when admission control is on
//! ([`Runtime::with_queue_limit`]).

use std::sync::Arc;
use std::thread::JoinHandle;

use crate::runtime::Runtime;

/// What one [`RuntimeServer`] lifetime did, returned by
/// [`shutdown`](RuntimeServer::shutdown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Worker threads the server ran (one per shard).
    pub workers: usize,
    /// Workers that died to a panicking job body instead of exiting
    /// cleanly. Waiters on the panicked job saw
    /// [`RuntimeError::JobPanicked`](crate::RuntimeError::JobPanicked);
    /// the remaining workers kept serving.
    pub panicked_workers: usize,
    /// Jobs retired across the server's lifetime.
    pub jobs_executed: usize,
}

/// Always-on serving engine: persistent worker threads over an
/// [`Arc<Runtime>`].
///
/// Workers are spawned by [`start`](Self::start) (one per shard, same
/// ticket discipline as [`Runtime::run_all`], so results stay bit-identical
/// under fixed seeds and pinned placement) and run until
/// [`shutdown`](Self::shutdown), which drains in-flight work before
/// joining. Between submissions workers park on a condvar; any `submit_*`
/// wakes them.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use gramc_core::tiling::TileMapping;
/// use gramc_core::MacroConfig;
/// use gramc_linalg::Matrix;
/// use gramc_runtime::{Placement, Runtime, RuntimeServer};
///
/// # fn main() -> Result<(), gramc_runtime::RuntimeError> {
/// let rt = Arc::new(Runtime::new(2, 2, MacroConfig::small_ideal(4), 7));
/// let server = RuntimeServer::start(rt.clone());
/// let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
/// let (op, loaded) = rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded)?;
/// loaded.wait()?; // no run_all: the server completes it
/// let y = rt.submit_mvm(op, vec![1.0, 2.0])?.wait_vector()?;
/// assert!((y[0] - 0.0).abs() < 0.05);
/// let report = server.shutdown();
/// assert_eq!(report.panicked_workers, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RuntimeServer {
    rt: Arc<Runtime>,
    workers: Vec<JoinHandle<()>>,
    executed_at_start: usize,
}

impl RuntimeServer {
    /// Spawns one persistent worker per shard and marks the runtime served
    /// (submissions start waking the park condvar). Jobs already queued are
    /// picked up immediately.
    pub fn start(rt: Arc<Runtime>) -> Self {
        let executed_at_start = rt.executed_total();
        rt.begin_serving();
        let workers = (0..rt.shard_count())
            .map(|w| {
                let rt = rt.clone();
                std::thread::Builder::new()
                    .name(format!("gramc-serve-{w}"))
                    .spawn(move || rt.serve_loop(w))
                    .expect("spawning a serving worker")
            })
            .collect();
        Self { rt, workers, executed_at_start }
    }

    /// The served runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Graceful shutdown: raises the stop flag, wakes every parked worker,
    /// and joins them. Workers finish draining the queues first, so every
    /// job submitted before this call still completes and its waiters are
    /// answered. Blocks until all workers have exited.
    pub fn shutdown(self) -> ServeReport {
        self.rt.signal_shutdown();
        let workers = self.workers.len();
        let mut panicked_workers = 0;
        for handle in self.workers {
            if handle.join().is_err() {
                panicked_workers += 1;
            }
        }
        self.rt.end_serving();
        ServeReport {
            workers,
            panicked_workers,
            jobs_executed: self.rt.executed_total() - self.executed_at_start,
        }
    }
}

/// Background thread that periodically appends one
/// [`MetricsSnapshot`](crate::MetricsSnapshot) JSONL record to a file while
/// a server runs — the live metrics stream of a serving deployment. One
/// line per tick (compact JSON, schema-versioned); a final snapshot is
/// always written at [`stop`](Self::stop) so short runs still record their
/// end state.
#[cfg(feature = "telemetry")]
#[derive(Debug)]
pub struct MetricsReporter {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: JoinHandle<std::io::Result<usize>>,
}

#[cfg(feature = "telemetry")]
impl MetricsReporter {
    /// Starts snapshotting `rt` every `interval` into the JSONL file at
    /// `path` (created or truncated).
    ///
    /// # Errors
    ///
    /// I/O errors creating the file.
    pub fn start(
        rt: Arc<Runtime>,
        path: &std::path::Path,
        interval: std::time::Duration,
    ) -> std::io::Result<Self> {
        use std::io::Write as _;
        let file = std::fs::File::create(path)?;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new().name("gramc-metrics".into()).spawn(
            move || -> std::io::Result<usize> {
                let mut out = std::io::BufWriter::new(file);
                let mut lines = 0usize;
                loop {
                    let stopping = stop_flag.load(std::sync::atomic::Ordering::SeqCst);
                    out.write_all(rt.metrics_snapshot().to_jsonl_line().as_bytes())?;
                    out.flush()?;
                    lines += 1;
                    if stopping {
                        return Ok(lines);
                    }
                    std::thread::sleep(interval);
                }
            },
        )?;
        Ok(Self { stop, thread })
    }

    /// Stops the reporter after one final snapshot and returns the number
    /// of JSONL records written.
    ///
    /// # Errors
    ///
    /// I/O errors from the reporter thread; a panicked reporter surfaces as
    /// [`std::io::ErrorKind::Other`].
    pub fn stop(self) -> std::io::Result<usize> {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        self.thread.join().map_err(|_| std::io::Error::other("metrics reporter panicked"))?
    }
}
