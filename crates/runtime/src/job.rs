//! Jobs, result slots and the handles callers wait on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gramc_core::tiling::TileMapping;
use gramc_linalg::Matrix;

use crate::error::RuntimeError;
use crate::registry::OperatorHandle;
use crate::tenant::{RequestId, TenantEntry, TenantId};

/// Result of a completed job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobOutput {
    /// One result vector (an MVM request or a single-RHS solve).
    Vector(Vec<f64>),
    /// One result per input vector (explicit batch jobs).
    Vectors(Vec<Vec<f64>>),
    /// The operator placed by a `Load` job.
    Loaded(OperatorHandle),
    /// Acknowledgement of a `Free` job.
    Freed,
}

/// One-shot result cell a job fills and any number of waiters read.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<Option<Result<JobOutput, RuntimeError>>>,
    ready: Condvar,
    /// The submitting tenant's accounting entry; its in-flight unit is
    /// returned when the slot is first filled. `None` only for slots that
    /// never went through admission (none today).
    gate: Option<Arc<TenantEntry>>,
}

impl Slot {
    /// First write wins: a panic-path error fill never clobbers a result
    /// the job already delivered. The winning fill releases the tenant's
    /// in-flight unit — exactly once per request, on every completion
    /// path (result, typed error, digital fallback, panic fill).
    pub(crate) fn fill(&self, result: Result<JobOutput, RuntimeError>) {
        let mut state = self.state.lock().expect("slot lock");
        if state.is_none() {
            *state = Some(result);
            self.ready.notify_all();
            if let Some(gate) = &self.gate {
                gate.release();
            }
        }
    }

    fn wait(&self) -> Result<JobOutput, RuntimeError> {
        let mut state = self.state.lock().expect("slot lock");
        while state.is_none() {
            state = self.ready.wait(state).expect("slot lock");
        }
        state.clone().expect("checked above")
    }

    fn wait_timeout(&self, timeout: Duration) -> Result<JobOutput, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("slot lock");
        while state.is_none() {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                return Err(RuntimeError::WaitTimeout);
            };
            state = self.ready.wait_timeout(state, left).expect("slot lock").0;
        }
        state.clone().expect("checked above")
    }

    fn try_peek(&self) -> Option<Result<JobOutput, RuntimeError>> {
        self.state.lock().expect("slot lock").clone()
    }
}

/// Handle to a submitted job.
///
/// The result is retrieved with [`wait`](Self::wait) (blocking) or
/// [`try_result`](Self::try_result) (non-blocking). Jobs only execute
/// inside [`Runtime::run_all`](crate::Runtime::run_all), so on a single
/// thread call `run_all` first and `wait` after; `wait` blocks safely when
/// another thread is driving the runtime.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) slot: Arc<Slot>,
    request: RequestId,
}

impl JobHandle {
    pub(crate) fn new(request: RequestId, gate: Arc<TenantEntry>) -> Self {
        Self { slot: Arc::new(Slot { gate: Some(gate), ..Slot::default() }), request }
    }

    /// The request id minted for this submission — the key of its spans
    /// and flow events in the chrome trace.
    pub fn request_id(&self) -> RequestId {
        self.request
    }

    /// Blocks until the job has retired and returns its output.
    ///
    /// # Errors
    ///
    /// The job's own error, if it failed.
    pub fn wait(&self) -> Result<JobOutput, RuntimeError> {
        self.slot.wait()
    }

    /// Blocks until the job has retired and returns its single result
    /// vector.
    ///
    /// # Errors
    ///
    /// The job's own error, or [`RuntimeError::WrongOutput`] if the job
    /// does not produce a single vector.
    pub fn wait_vector(&self) -> Result<Vec<f64>, RuntimeError> {
        match self.wait()? {
            JobOutput::Vector(v) => Ok(v),
            _ => Err(RuntimeError::WrongOutput),
        }
    }

    /// Blocks until the job has retired and returns its batch of result
    /// vectors.
    ///
    /// # Errors
    ///
    /// The job's own error, or [`RuntimeError::WrongOutput`] if the job
    /// does not produce a batch.
    pub fn wait_vectors(&self) -> Result<Vec<Vec<f64>>, RuntimeError> {
        match self.wait()? {
            JobOutput::Vectors(v) => Ok(v),
            _ => Err(RuntimeError::WrongOutput),
        }
    }

    /// Blocks until the job has retired **or** `timeout` elapses. A caller
    /// waiting on a job nobody drains — e.g. `run_all` was never called, or
    /// the driving thread died — gets [`RuntimeError::WaitTimeout`] instead
    /// of blocking forever.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WaitTimeout`] on expiry; otherwise the job's own
    /// error, if it failed.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<JobOutput, RuntimeError> {
        self.slot.wait_timeout(timeout)
    }

    /// The job's result if it has already retired, `None` otherwise.
    pub fn try_result(&self) -> Option<Result<JobOutput, RuntimeError>> {
        self.slot.try_peek()
    }
}

/// What a job does once a worker runs it on its shard. `Clone` because the
/// recovery machinery re-dispatches failed or migrated jobs.
#[derive(Debug, Clone)]
pub(crate) enum JobKind {
    /// Dispatch of one operator's coalesced MVM requests: drains the
    /// operator's pending batch at execution time and runs it as one
    /// `mvm_batch` (one result slot per request, carried by the batch).
    MvmMany { handle: OperatorHandle },
    /// A drained coalesced batch being re-dispatched (retry or migration):
    /// the requests already left the pending table, so they ride in the
    /// job, one result slot per request.
    MvmSet { handle: OperatorHandle, xs: Vec<Vec<f64>> },
    /// Explicit batch MVM: one `mvm_batch` dispatch, one slot for the
    /// whole batch.
    MvmBatch { handle: OperatorHandle, xs: Vec<Vec<f64>> },
    /// Single-RHS INV solve.
    SolveInv { handle: OperatorHandle, b: Vec<f64> },
    /// Multi-RHS INV solve through `MacroGroup::solve_inv_batch`.
    SolveInvBatch { handle: OperatorHandle, bs: Vec<Vec<f64>> },
    /// Multi-RHS PINV (least-squares) solve through
    /// `MacroGroup::solve_pinv_batch`.
    SolvePinvBatch { handle: OperatorHandle, bs: Vec<Vec<f64>> },
    /// Place a matrix on the job's shard and fulfil the registry entry.
    Load { handle: OperatorHandle, matrix: Arc<Matrix>, mapping: TileMapping },
    /// Release the operator and retire the registry entry.
    Free { handle: OperatorHandle },
}

impl JobKind {
    /// The operator a compute job targets (`None` for load/free lifecycle
    /// jobs, which the recovery path never re-dispatches).
    pub(crate) fn operator(&self) -> Option<OperatorHandle> {
        match self {
            Self::MvmMany { handle }
            | Self::MvmSet { handle, .. }
            | Self::MvmBatch { handle, .. }
            | Self::SolveInv { handle, .. }
            | Self::SolveInvBatch { handle, .. }
            | Self::SolvePinvBatch { handle, .. } => Some(*handle),
            Self::Load { .. } | Self::Free { .. } => None,
        }
    }
}

/// Attribution record of one request riding in a job: who submitted it,
/// its weight in the batch's hardware-counter split, and when it was
/// submitted (journal clock) for its queue-wait span.
///
/// Solo jobs carry exactly one; a hydrated coalesced dispatch carries one
/// per rider, in submission order (the split's remainder assignment is
/// keyed to that order, so attribution is deterministic).
#[derive(Debug, Clone, Copy)]
// `tenant`/`rows` feed attribution, which is telemetry-only; the meta
// still rides along without the feature so quota release stays uniform.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) struct RequestMeta {
    pub request: RequestId,
    pub tenant: TenantId,
    /// Row weight of this request in the batch (1 for a coalesced rider,
    /// the batch size for explicit batch jobs).
    pub rows: u64,
    /// Submission timestamp on the journal clock (riders stamp their own;
    /// enqueued jobs are stamped at ticket assignment — a re-dispatch
    /// restamps, matching the per-dispatch latency contract).
    #[cfg(feature = "telemetry")]
    pub submit_ns: u64,
}

impl RequestMeta {
    pub fn new(request: RequestId, tenant: TenantId, rows: u64) -> Self {
        Self {
            request,
            tenant,
            rows,
            #[cfg(feature = "telemetry")]
            submit_ns: 0,
        }
    }
}

/// A scheduled job: target shard, per-shard ticket, payload, the result
/// slots to fill (exactly one, except `MvmMany`, whose slots live in the
/// pending batch until it executes — and `MvmSet`, with one per request),
/// per-request attribution metadata, and how many times the recovery
/// policy has already re-dispatched it.
#[derive(Debug)]
pub(crate) struct Job {
    pub shard: usize,
    pub ticket: u64,
    pub kind: JobKind,
    pub slots: Vec<Arc<Slot>>,
    /// One record per request riding in this job (parallel to `slots` for
    /// multi-request kinds). Empty only for an `MvmMany` dispatch before
    /// hydration drains its pending batch into the job.
    pub meta: Vec<RequestMeta>,
    pub retries: u32,
    /// Enqueue timestamp feeding the serving histograms (a re-dispatched
    /// job restarts the clock; its measured latency is per dispatch).
    #[cfg(feature = "telemetry")]
    pub submitted: Instant,
    /// Enqueue timestamp on the journal clock, so the queued span of the
    /// submit→complete breakdown starts exactly at submission.
    #[cfg(feature = "telemetry")]
    pub submit_ns: u64,
}
