//! Serving telemetry for the sharded runtime (the `telemetry` feature):
//! latency histograms over the job lifecycle, a queue-depth gauge,
//! per-shard scheduler counters, per-job-kind hardware attribution and the
//! structured event journal.
//!
//! Everything here observes; nothing feeds back. Counters are relaxed
//! atomics, histograms are lock-free, and the journal ring is preallocated,
//! so the instrumented scheduler paths stay allocation-free and results
//! stay bit-identical to the untelemetered build.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use gramc_core::metrics::{AnalogCostModel, Cost};
use gramc_telemetry::{EventJournal, HistogramSnapshot, HwCounters, HwSnapshot, LatencyHistogram};

use crate::job::JobKind;
use crate::tenant::{TenantEntry, TenantId};

/// Stable display/index order of the job kinds.
pub(crate) const KIND_NAMES: [&str; 8] = [
    "mvm_many",
    "mvm_set",
    "mvm_batch",
    "solve_inv",
    "solve_inv_batch",
    "solve_pinv_batch",
    "load",
    "free",
];

/// Index of a job kind in [`KIND_NAMES`] / the per-kind aggregates.
pub(crate) fn kind_index(kind: &JobKind) -> usize {
    match kind {
        JobKind::MvmMany { .. } => 0,
        JobKind::MvmSet { .. } => 1,
        JobKind::MvmBatch { .. } => 2,
        JobKind::SolveInv { .. } => 3,
        JobKind::SolveInvBatch { .. } => 4,
        JobKind::SolvePinvBatch { .. } => 5,
        JobKind::Load { .. } => 6,
        JobKind::Free { .. } => 7,
    }
}

/// Journal lane (`tid`) offset of worker-execution spans. Lanes below the
/// base are shard lanes (queue-wait spans, instants, health events); lane
/// `WORKER_LANE_BASE + w` is worker `w`'s execution track — so a chrome
/// trace shows queueing per shard and occupancy per worker side by side.
pub(crate) const WORKER_LANE_BASE: u64 = 1000;

/// Journal span name of a job kind (static, so recording never allocates).
pub(crate) fn kind_span_name(ix: usize) -> &'static str {
    match ix {
        0 => "job:mvm_many",
        1 => "job:mvm_set",
        2 => "job:mvm_batch",
        3 => "job:solve_inv",
        4 => "job:solve_inv_batch",
        5 => "job:solve_pinv_batch",
        6 => "job:load",
        _ => "job:free",
    }
}

/// Journal span name of a job kind's queue-wait stage (submit → dispatch),
/// static for the same no-allocation reason.
pub(crate) fn kind_queued_name(ix: usize) -> &'static str {
    match ix {
        0 => "queued:mvm_many",
        1 => "queued:mvm_set",
        2 => "queued:mvm_batch",
        3 => "queued:solve_inv",
        4 => "queued:solve_inv_batch",
        5 => "queued:solve_pinv_batch",
        6 => "queued:load",
        _ => "queued:free",
    }
}

/// Splits `total` into integer shares proportional to `weights`, summing
/// back to `total` **exactly** (this is what keeps per-tenant attribution
/// conservative). Largest-remainder assignment: each share gets its floor
/// `total·wᵢ/W`, then the remainder units go one each to the largest
/// fractional parts, ties broken by position — so the split is
/// deterministic in submission order. Zero total weight degenerates to
/// handing everything to the first share.
pub(crate) fn split_exact(total: u64, weights: &[u64]) -> Vec<u64> {
    let w_sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if w_sum == 0 {
        let mut out = vec![0; weights.len()];
        if let Some(first) = out.first_mut() {
            *first = total;
        }
        return out;
    }
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let num = u128::from(total) * u128::from(w);
        let base = (num / w_sum) as u64;
        shares.push(base);
        assigned += base;
        fracs.push((num % w_sum, i));
    }
    fracs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut rem = total - assigned;
    for &(_, i) in &fracs {
        if rem == 0 {
            break;
        }
        shares[i] += 1;
        rem -= 1;
    }
    shares
}

/// [`split_exact`] applied field-by-field over a hardware-counter delta:
/// one snapshot per weight, each field's shares summing to the delta's
/// field exactly.
pub(crate) fn split_hw(delta: &HwSnapshot, weights: &[u64]) -> Vec<HwSnapshot> {
    let mut out = vec![HwSnapshot::default(); weights.len()];
    let mut apply = |get: fn(&HwSnapshot) -> u64, set: fn(&mut HwSnapshot, u64)| {
        for (o, share) in out.iter_mut().zip(split_exact(get(delta), weights)) {
            set(o, share);
        }
    };
    apply(|s| s.dac_drives, |s, v| s.dac_drives = v);
    apply(|s| s.adc_conversions, |s, v| s.adc_conversions = v);
    apply(|s| s.settle_events, |s, v| s.settle_events = v);
    apply(|s| s.solve_settles, |s, v| s.solve_settles = v);
    apply(|s| s.write_pulses, |s, v| s.write_pulses = v);
    apply(|s| s.write_cycles, |s, v| s.write_cycles = v);
    apply(|s| s.read_cycles_mvm, |s, v| s.read_cycles_mvm = v);
    apply(|s| s.read_cycles_solve, |s, v| s.read_cycles_solve = v);
    apply(|s| s.snapshot_hits, |s, v| s.snapshot_hits = v);
    apply(|s| s.snapshot_misses, |s, v| s.snapshot_misses = v);
    out
}

/// Scheduler counters of one shard.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Jobs of this shard executed by a thief worker.
    pub steals: AtomicU64,
    /// Failed-check re-dispatches of this shard's jobs.
    pub retries: AtomicU64,
    /// Migration bounces (job re-enqueued toward its operator's new home).
    pub requeues: AtomicU64,
    /// Times this shard was quarantined.
    pub quarantines: AtomicU64,
    /// Wall-clock nanoseconds this shard's jobs spent executing (dispatch →
    /// complete, summed) — the numerator of per-shard utilization.
    pub busy_ns: AtomicU64,
}

/// Per-job-kind aggregate: dispatch count plus the hardware events the
/// kind's job bodies caused (snapshot-diffed under the shard lock).
#[derive(Debug, Default)]
pub(crate) struct KindAgg {
    pub jobs: AtomicU64,
    pub hw: HwCounters,
}

/// Live burn-rate state published by the [`SloMonitor`](crate::SloMonitor)
/// and read into the `slo` section of [`MetricsSnapshot`]. Burn rates are
/// stored ×1000 so the whole struct stays atomic.
#[derive(Debug, Default)]
pub(crate) struct SloState {
    /// Latency SLO alerts fired since the monitor started.
    pub latency_alerts: AtomicU64,
    /// Rejection SLO alerts fired since the monitor started.
    pub rejection_alerts: AtomicU64,
    /// Short-window latency burn rate ×1000.
    pub latency_burn_milli: AtomicU64,
    /// Short-window rejection burn rate ×1000.
    pub rejection_burn_milli: AtomicU64,
    /// 1 while the latency alert is raised and not yet re-armed.
    pub latency_alerting: AtomicU64,
    /// 1 while the rejection alert is raised and not yet re-armed.
    pub rejection_alerting: AtomicU64,
}

/// The runtime's telemetry sink (one per [`Runtime`](crate::Runtime)).
#[derive(Debug)]
pub(crate) struct RtTelemetry {
    pub submit_to_dispatch: LatencyHistogram,
    pub dispatch_to_complete: LatencyHistogram,
    pub submit_to_complete: LatencyHistogram,
    /// High-water mark of jobs enqueued at once.
    pub queue_depth_max: AtomicUsize,
    /// Submissions rejected by the admission bound
    /// ([`RuntimeError::QueueFull`](crate::RuntimeError::QueueFull)).
    pub rejected: AtomicU64,
    pub per_shard: Vec<ShardCounters>,
    pub per_kind: [KindAgg; KIND_NAMES.len()],
    pub journal: EventJournal,
    /// Journal `overwritten` at the previous [`MetricsSnapshot::capture`] —
    /// the baseline of the per-interval drop rate in the metrics stream.
    pub last_overwritten: AtomicU64,
    /// SLO monitor outputs (zeros until a monitor runs).
    pub slo: SloState,
}

/// Journal capacity: enough for the serving benches' full drains while
/// keeping the preallocated ring small (~160 KiB).
const JOURNAL_CAPACITY: usize = 4096;

impl RtTelemetry {
    pub fn new(shards: usize) -> Self {
        Self {
            submit_to_dispatch: LatencyHistogram::new(),
            dispatch_to_complete: LatencyHistogram::new(),
            submit_to_complete: LatencyHistogram::new(),
            queue_depth_max: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
            per_kind: std::array::from_fn(|_| KindAgg::default()),
            journal: EventJournal::new(JOURNAL_CAPACITY),
            last_overwritten: AtomicU64::new(0),
            slo: SloState::default(),
        }
    }

    /// Folds one executed job into its kind's aggregate.
    pub fn record_job(&self, kind_ix: usize, hw: &HwSnapshot) {
        let agg = &self.per_kind[kind_ix];
        agg.jobs.fetch_add(1, Ordering::Relaxed);
        agg.hw.add_snapshot(hw);
    }

    /// Sum of every kind's attributed hardware events — i.e. everything the
    /// job bodies did (direct `shard_group()` use is not included).
    pub fn kind_hw_total(&self) -> HwSnapshot {
        let mut total = HwSnapshot::default();
        for agg in &self.per_kind {
            total += &agg.hw.snapshot();
        }
        total
    }
}

/// Point-in-time copy of one shard's scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Jobs of this shard executed by a thief worker.
    pub steals: u64,
    /// Failed-check re-dispatches of this shard's jobs.
    pub retries: u64,
    /// Migration bounces of this shard's jobs.
    pub requeues: u64,
    /// Times this shard was quarantined.
    pub quarantines: u64,
    /// Nanoseconds this shard's jobs spent executing (dispatch→complete,
    /// summed). Divide by the serving window for utilization.
    pub busy_ns: u64,
}

/// Point-in-time copy of one job kind's aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindMetrics {
    /// Job kind name (stable, snake_case).
    pub kind: &'static str,
    /// Jobs of this kind executed.
    pub jobs: u64,
    /// Hardware events attributed to this kind's job bodies.
    pub hw: HwSnapshot,
}

impl KindMetrics {
    /// Modeled analog latency/energy of this kind's hardware events.
    pub fn analog_cost(&self, model: &AnalogCostModel) -> Cost {
        model.attribute(&self.hw)
    }
}

/// Point-in-time copy of one tenant's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// The tenant.
    pub tenant: TenantId,
    /// Requests submitted and not yet answered.
    pub in_flight: u64,
    /// Requests ever admitted.
    pub requests: u64,
    /// Submissions rejected by the tenant quota.
    pub rejected: u64,
    /// Submit→complete latency of this tenant's requests.
    pub latency: HistogramSnapshot,
    /// This tenant's exact share of the hardware counters.
    pub hw: HwSnapshot,
}

impl TenantMetrics {
    /// Modeled analog latency/energy of this tenant's hardware share.
    pub fn analog_cost(&self, model: &AnalogCostModel) -> Cost {
        model.attribute(&self.hw)
    }
}

/// Point-in-time copy of the SLO monitor's outputs (all zeros until an
/// [`SloMonitor`](crate::SloMonitor) runs against the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloMetrics {
    /// Latency SLO alerts fired since the monitor started.
    pub latency_alerts: u64,
    /// Rejection SLO alerts fired since the monitor started.
    pub rejection_alerts: u64,
    /// Short-window latency burn rate (violation fraction / error budget).
    pub latency_burn: f64,
    /// Short-window rejection burn rate.
    pub rejection_burn: f64,
    /// Whether the latency alert is currently raised.
    pub latency_alerting: bool,
    /// Whether the rejection alert is currently raised.
    pub rejection_alerting: bool,
}

/// Version of the JSON layout emitted by [`MetricsSnapshot::to_json`].
/// Bump on any key rename/removal; additions alone do not require a bump
/// but get one anyway so downstream dashboards can pin exactly.
///
/// v3 added the `tenants` and `slo` sections and widened `journal` with
/// `capacity`, `dropped_since_last` and `drop_rate`.
pub const METRICS_SCHEMA_VERSION: u32 = 3;

/// A consistent cut of the runtime's serving metrics
/// ([`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot)).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Submission → job execution start.
    pub submit_to_dispatch: HistogramSnapshot,
    /// Execution start → result slots filled.
    pub dispatch_to_complete: HistogramSnapshot,
    /// Submission → result slots filled (the serving latency).
    pub submit_to_complete: HistogramSnapshot,
    /// High-water mark of jobs enqueued at once.
    pub queue_depth_max: usize,
    /// Current queue depth (jobs submitted but not yet retired).
    pub queue_depth: usize,
    /// Submissions rejected by the admission bound.
    pub rejected: u64,
    /// Scheduler counters per shard.
    pub shards: Vec<ShardMetrics>,
    /// Per-job-kind dispatch counts and hardware attribution.
    pub kinds: Vec<KindMetrics>,
    /// Sum of every kind's hardware events.
    pub hw_total: HwSnapshot,
    /// Per-tenant accounting, in tenant-id order. Tenant hardware shares
    /// sum exactly to the per-kind totals (`hw_total`) of the jobs that
    /// carried attribution metadata.
    pub tenants: Vec<TenantMetrics>,
    /// SLO monitor outputs.
    pub slo: SloMetrics,
    /// Events currently held in the journal.
    pub journal_len: usize,
    /// The journal ring's capacity.
    pub journal_capacity: usize,
    /// Journal events evicted to make room since creation.
    pub journal_overwritten: u64,
    /// Journal events evicted since the previous snapshot — per-interval
    /// in the metrics stream, because each capture resets the baseline.
    pub journal_dropped_since_last: u64,
}

impl MetricsSnapshot {
    pub(crate) fn capture(
        t: &RtTelemetry,
        queue_depth: usize,
        tenants: &[(TenantId, Arc<TenantEntry>)],
    ) -> Self {
        let shards = t
            .per_shard
            .iter()
            .map(|s| ShardMetrics {
                steals: s.steals.load(Ordering::Relaxed),
                retries: s.retries.load(Ordering::Relaxed),
                requeues: s.requeues.load(Ordering::Relaxed),
                quarantines: s.quarantines.load(Ordering::Relaxed),
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
            })
            .collect();
        let kinds = KIND_NAMES
            .iter()
            .zip(&t.per_kind)
            .map(|(&kind, agg)| KindMetrics {
                kind,
                jobs: agg.jobs.load(Ordering::Relaxed),
                hw: agg.hw.snapshot(),
            })
            .collect();
        let tenants = tenants
            .iter()
            .map(|(id, e)| TenantMetrics {
                tenant: *id,
                in_flight: e.in_flight.load(Ordering::SeqCst),
                requests: e.requests.load(Ordering::Relaxed),
                rejected: e.rejected.load(Ordering::Relaxed),
                latency: e.latency.snapshot(),
                hw: e.hw.snapshot(),
            })
            .collect();
        let s = &t.slo;
        let slo = SloMetrics {
            latency_alerts: s.latency_alerts.load(Ordering::Relaxed),
            rejection_alerts: s.rejection_alerts.load(Ordering::Relaxed),
            latency_burn: s.latency_burn_milli.load(Ordering::Relaxed) as f64 / 1e3,
            rejection_burn: s.rejection_burn_milli.load(Ordering::Relaxed) as f64 / 1e3,
            latency_alerting: s.latency_alerting.load(Ordering::Relaxed) != 0,
            rejection_alerting: s.rejection_alerting.load(Ordering::Relaxed) != 0,
        };
        let overwritten = t.journal.overwritten();
        let dropped =
            overwritten.saturating_sub(t.last_overwritten.swap(overwritten, Ordering::Relaxed));
        Self {
            submit_to_dispatch: t.submit_to_dispatch.snapshot(),
            dispatch_to_complete: t.dispatch_to_complete.snapshot(),
            submit_to_complete: t.submit_to_complete.snapshot(),
            queue_depth_max: t.queue_depth_max.load(Ordering::Relaxed),
            queue_depth,
            rejected: t.rejected.load(Ordering::Relaxed),
            shards,
            kinds,
            hw_total: t.kind_hw_total(),
            tenants,
            slo,
            journal_len: t.journal.len(),
            journal_capacity: t.journal.capacity(),
            journal_overwritten: overwritten,
            journal_dropped_since_last: dropped,
        }
    }

    /// Modeled analog latency/energy of everything the job bodies did.
    pub fn analog_cost(&self, model: &AnalogCostModel) -> Cost {
        model.attribute(&self.hw_total)
    }

    /// Serializes the snapshot as a self-contained JSON object (hand-rolled
    /// — the workspace has no serde). Hardware counters are priced through
    /// the default [`AnalogCostModel`]; histograms report count, mean and
    /// the p50/p90/p99/p999/max ladder in nanoseconds. The layout is
    /// versioned by the `"schema_version"` key
    /// ([`METRICS_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let model = AnalogCostModel::default();
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
                h.count,
                h.mean_ns(),
                h.p50_ns(),
                h.p90_ns(),
                h.p99_ns(),
                h.p999_ns(),
                h.max_ns
            )
        };
        let hw_json = |hw: &HwSnapshot| {
            let mut s = String::from("{");
            for (i, (name, v)) in hw.fields().iter().enumerate() {
                let comma = if i + 1 < gramc_telemetry::HW_FIELDS { ", " } else { "" };
                let _ = write!(s, "\"{name}\": {v}{comma}");
            }
            s.push('}');
            s
        };
        let cost_json = |hw: &HwSnapshot| {
            let c = model.attribute(hw);
            format!("{{\"latency_s\": {:e}, \"energy_j\": {:e}}}", c.latency, c.energy)
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", METRICS_SCHEMA_VERSION);
        let _ = writeln!(out, "  \"submit_to_dispatch\": {},", hist(&self.submit_to_dispatch));
        let _ = writeln!(out, "  \"dispatch_to_complete\": {},", hist(&self.dispatch_to_complete));
        let _ = writeln!(out, "  \"submit_to_complete\": {},", hist(&self.submit_to_complete));
        let _ = writeln!(out, "  \"queue_depth\": {},", self.queue_depth);
        let _ = writeln!(out, "  \"queue_depth_max\": {},", self.queue_depth_max);
        let _ = writeln!(out, "  \"rejected\": {},", self.rejected);
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let comma = if i + 1 < self.shards.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"steals\": {}, \"retries\": {}, \"requeues\": {}, \
                 \"quarantines\": {}, \"busy_ns\": {}}}{}",
                s.steals, s.retries, s.requeues, s.quarantines, s.busy_ns, comma
            );
        }
        out.push_str("  ],\n  \"kinds\": {\n");
        for (i, k) in self.kinds.iter().enumerate() {
            let comma = if i + 1 < self.kinds.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"jobs\": {}, \"hw\": {}, \"modeled\": {}}}{}",
                k.kind,
                k.jobs,
                hw_json(&k.hw),
                cost_json(&k.hw),
                comma
            );
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"hw_total\": {},", hw_json(&self.hw_total));
        let _ = writeln!(out, "  \"modeled_total\": {},", cost_json(&self.hw_total));
        out.push_str("  \"tenants\": {\n");
        for (i, t) in self.tenants.iter().enumerate() {
            let comma = if i + 1 < self.tenants.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"in_flight\": {}, \"requests\": {}, \"rejected\": {}, \
                 \"latency\": {}, \"hw\": {}, \"modeled\": {}}}{}",
                t.tenant,
                t.in_flight,
                t.requests,
                t.rejected,
                hist(&t.latency),
                hw_json(&t.hw),
                cost_json(&t.hw),
                comma
            );
        }
        out.push_str("  },\n");
        let _ = writeln!(
            out,
            "  \"slo\": {{\"latency_alerts\": {}, \"rejection_alerts\": {}, \
             \"latency_burn\": {:.3}, \"rejection_burn\": {:.3}, \
             \"latency_alerting\": {}, \"rejection_alerting\": {}}},",
            self.slo.latency_alerts,
            self.slo.rejection_alerts,
            self.slo.latency_burn,
            self.slo.rejection_burn,
            self.slo.latency_alerting,
            self.slo.rejection_alerting
        );
        let drop_rate = self.journal_dropped_since_last as f64 / self.journal_len.max(1) as f64;
        let _ = writeln!(
            out,
            "  \"journal\": {{\"len\": {}, \"capacity\": {}, \"overwritten\": {}, \
             \"dropped_since_last\": {}, \"drop_rate\": {:.3}}}",
            self.journal_len,
            self.journal_capacity,
            self.journal_overwritten,
            self.journal_dropped_since_last,
            drop_rate
        );
        out.push_str("}\n");
        out
    }

    /// [`to_json`](Self::to_json) flattened onto one line — the record
    /// format of the live metrics JSONL stream
    /// ([`MetricsReporter`](crate::MetricsReporter)). No key or string in
    /// the document contains whitespace, so collapsing the pretty layout
    /// yields valid compact JSON.
    pub fn to_jsonl_line(&self) -> String {
        let mut line: String = self.to_json().split_whitespace().collect::<Vec<_>>().join(" ");
        line.push('\n');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_names() {
        use crate::registry::OperatorHandle;
        let h = OperatorHandle(0);
        assert_eq!(kind_index(&JobKind::MvmMany { handle: h }), 0);
        assert_eq!(kind_index(&JobKind::SolvePinvBatch { handle: h, bs: Vec::new() }), 5);
        assert_eq!(kind_index(&JobKind::Free { handle: h }), 7);
        assert_eq!(KIND_NAMES[0], "mvm_many");
        assert_eq!(KIND_NAMES[5], "solve_pinv_batch");
        assert_eq!(KIND_NAMES[7], "free");
        for i in 0..KIND_NAMES.len() {
            assert!(kind_span_name(i).ends_with(KIND_NAMES[i]));
            assert!(kind_queued_name(i).ends_with(KIND_NAMES[i]));
        }
    }

    #[test]
    fn snapshot_json_is_balanced_and_priced() {
        let t = RtTelemetry::new(2);
        t.submit_to_dispatch.record_ns(1_000);
        t.dispatch_to_complete.record_ns(2_000);
        t.submit_to_complete.record_ns(3_000);
        let hw = HwSnapshot { dac_drives: 8, adc_conversions: 8, ..Default::default() };
        t.record_job(2, &hw);
        let tenants = [(TenantId(7), Arc::new(TenantEntry::default()))];
        tenants[0].1.hw.add_dac_drives(5);
        let snap = MetricsSnapshot::capture(&t, 3, &tenants);
        assert_eq!(snap.kinds[2].jobs, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.hw_total.dac_drives, 8);
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].hw.dac_drives, 5);
        assert!(snap.analog_cost(&AnalogCostModel::default()).energy > 0.0);
        let json = snap.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"submit_to_complete\""));
        assert!(json.contains("\"mvm_batch\""));
        assert!(json.contains("\"solve_pinv_batch\""));
        assert!(json.contains("\"energy_j\""));
        assert!(json.contains("\"tenant-7\""));
        assert!(json.contains("\"slo\""));
        assert!(json.contains("\"drop_rate\""));
    }

    #[test]
    fn jsonl_line_is_one_compact_line() {
        let t = RtTelemetry::new(1);
        t.submit_to_complete.record_ns(5_000);
        let line = MetricsSnapshot::capture(&t, 0, &[]).to_jsonl_line();
        assert!(line.ends_with('\n'));
        assert_eq!(line.trim_end().matches('\n').count(), 0);
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"schema_version\": 3"));
    }

    #[test]
    fn split_exact_is_conservative_and_deterministic() {
        // 10 over equal thirds: remainder units go to the earliest shares.
        assert_eq!(split_exact(10, &[1, 1, 1]), [4, 3, 3]);
        // Proportional to weight, still summing exactly.
        assert_eq!(split_exact(10, &[3, 1]), [8, 2]);
        assert_eq!(split_exact(7, &[2, 3, 2]), [2, 3, 2]);
        // Degenerate weights: everything lands on the first share.
        assert_eq!(split_exact(5, &[0, 0]), [5, 0]);
        // Fuzz the conservation invariant across shapes.
        for total in [0u64, 1, 2, 17, 1_000_003] {
            for weights in [&[1u64][..], &[1, 1], &[5, 3, 9], &[1, 0, 2, 2]] {
                let shares = split_exact(total, weights);
                assert_eq!(shares.iter().sum::<u64>(), total, "{total} over {weights:?}");
            }
        }
    }

    #[test]
    fn split_hw_splits_every_field_exactly() {
        let delta = HwSnapshot {
            dac_drives: 11,
            adc_conversions: 7,
            settle_events: 3,
            read_cycles_mvm: 1_000_001,
            ..Default::default()
        };
        let shares = split_hw(&delta, &[1, 1, 2]);
        assert_eq!(shares.len(), 3);
        let mut sum = HwSnapshot::default();
        for s in &shares {
            sum += s;
        }
        assert_eq!(sum, delta, "field-wise split must be conservative");
        // The weight-2 share gets about half of each field.
        assert_eq!(shares[2].read_cycles_mvm, 500_001);
    }
}
