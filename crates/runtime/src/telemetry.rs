//! Serving telemetry for the sharded runtime (the `telemetry` feature):
//! latency histograms over the job lifecycle, a queue-depth gauge,
//! per-shard scheduler counters, per-job-kind hardware attribution and the
//! structured event journal.
//!
//! Everything here observes; nothing feeds back. Counters are relaxed
//! atomics, histograms are lock-free, and the journal ring is preallocated,
//! so the instrumented scheduler paths stay allocation-free and results
//! stay bit-identical to the untelemetered build.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use gramc_core::metrics::{AnalogCostModel, Cost};
use gramc_telemetry::{EventJournal, HistogramSnapshot, HwCounters, HwSnapshot, LatencyHistogram};

use crate::job::JobKind;

/// Stable display/index order of the job kinds.
pub(crate) const KIND_NAMES: [&str; 8] = [
    "mvm_many",
    "mvm_set",
    "mvm_batch",
    "solve_inv",
    "solve_inv_batch",
    "solve_pinv_batch",
    "load",
    "free",
];

/// Index of a job kind in [`KIND_NAMES`] / the per-kind aggregates.
pub(crate) fn kind_index(kind: &JobKind) -> usize {
    match kind {
        JobKind::MvmMany { .. } => 0,
        JobKind::MvmSet { .. } => 1,
        JobKind::MvmBatch { .. } => 2,
        JobKind::SolveInv { .. } => 3,
        JobKind::SolveInvBatch { .. } => 4,
        JobKind::SolvePinvBatch { .. } => 5,
        JobKind::Load { .. } => 6,
        JobKind::Free { .. } => 7,
    }
}

/// Journal lane (`tid`) offset of worker-execution spans. Lanes below the
/// base are shard lanes (queue-wait spans, instants, health events); lane
/// `WORKER_LANE_BASE + w` is worker `w`'s execution track — so a chrome
/// trace shows queueing per shard and occupancy per worker side by side.
pub(crate) const WORKER_LANE_BASE: u64 = 1000;

/// Journal span name of a job kind (static, so recording never allocates).
pub(crate) fn kind_span_name(ix: usize) -> &'static str {
    match ix {
        0 => "job:mvm_many",
        1 => "job:mvm_set",
        2 => "job:mvm_batch",
        3 => "job:solve_inv",
        4 => "job:solve_inv_batch",
        5 => "job:solve_pinv_batch",
        6 => "job:load",
        _ => "job:free",
    }
}

/// Journal span name of a job kind's queue-wait stage (submit → dispatch),
/// static for the same no-allocation reason.
pub(crate) fn kind_queued_name(ix: usize) -> &'static str {
    match ix {
        0 => "queued:mvm_many",
        1 => "queued:mvm_set",
        2 => "queued:mvm_batch",
        3 => "queued:solve_inv",
        4 => "queued:solve_inv_batch",
        5 => "queued:solve_pinv_batch",
        6 => "queued:load",
        _ => "queued:free",
    }
}

/// Scheduler counters of one shard.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Jobs of this shard executed by a thief worker.
    pub steals: AtomicU64,
    /// Failed-check re-dispatches of this shard's jobs.
    pub retries: AtomicU64,
    /// Migration bounces (job re-enqueued toward its operator's new home).
    pub requeues: AtomicU64,
    /// Times this shard was quarantined.
    pub quarantines: AtomicU64,
    /// Wall-clock nanoseconds this shard's jobs spent executing (dispatch →
    /// complete, summed) — the numerator of per-shard utilization.
    pub busy_ns: AtomicU64,
}

/// Per-job-kind aggregate: dispatch count plus the hardware events the
/// kind's job bodies caused (snapshot-diffed under the shard lock).
#[derive(Debug, Default)]
pub(crate) struct KindAgg {
    pub jobs: AtomicU64,
    pub hw: HwCounters,
}

/// The runtime's telemetry sink (one per [`Runtime`](crate::Runtime)).
#[derive(Debug)]
pub(crate) struct RtTelemetry {
    pub submit_to_dispatch: LatencyHistogram,
    pub dispatch_to_complete: LatencyHistogram,
    pub submit_to_complete: LatencyHistogram,
    /// High-water mark of jobs enqueued at once.
    pub queue_depth_max: AtomicUsize,
    /// Submissions rejected by the admission bound
    /// ([`RuntimeError::QueueFull`](crate::RuntimeError::QueueFull)).
    pub rejected: AtomicU64,
    pub per_shard: Vec<ShardCounters>,
    pub per_kind: [KindAgg; KIND_NAMES.len()],
    pub journal: EventJournal,
}

/// Journal capacity: enough for the serving benches' full drains while
/// keeping the preallocated ring small (~160 KiB).
const JOURNAL_CAPACITY: usize = 4096;

impl RtTelemetry {
    pub fn new(shards: usize) -> Self {
        Self {
            submit_to_dispatch: LatencyHistogram::new(),
            dispatch_to_complete: LatencyHistogram::new(),
            submit_to_complete: LatencyHistogram::new(),
            queue_depth_max: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
            per_kind: std::array::from_fn(|_| KindAgg::default()),
            journal: EventJournal::new(JOURNAL_CAPACITY),
        }
    }

    /// Folds one executed job into its kind's aggregate.
    pub fn record_job(&self, kind_ix: usize, hw: &HwSnapshot) {
        let agg = &self.per_kind[kind_ix];
        agg.jobs.fetch_add(1, Ordering::Relaxed);
        agg.hw.add_snapshot(hw);
    }

    /// Sum of every kind's attributed hardware events — i.e. everything the
    /// job bodies did (direct `shard_group()` use is not included).
    pub fn kind_hw_total(&self) -> HwSnapshot {
        let mut total = HwSnapshot::default();
        for agg in &self.per_kind {
            total += &agg.hw.snapshot();
        }
        total
    }
}

/// Point-in-time copy of one shard's scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Jobs of this shard executed by a thief worker.
    pub steals: u64,
    /// Failed-check re-dispatches of this shard's jobs.
    pub retries: u64,
    /// Migration bounces of this shard's jobs.
    pub requeues: u64,
    /// Times this shard was quarantined.
    pub quarantines: u64,
    /// Nanoseconds this shard's jobs spent executing (dispatch→complete,
    /// summed). Divide by the serving window for utilization.
    pub busy_ns: u64,
}

/// Point-in-time copy of one job kind's aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindMetrics {
    /// Job kind name (stable, snake_case).
    pub kind: &'static str,
    /// Jobs of this kind executed.
    pub jobs: u64,
    /// Hardware events attributed to this kind's job bodies.
    pub hw: HwSnapshot,
}

impl KindMetrics {
    /// Modeled analog latency/energy of this kind's hardware events.
    pub fn analog_cost(&self, model: &AnalogCostModel) -> Cost {
        model.attribute(&self.hw)
    }
}

/// Version of the JSON layout emitted by [`MetricsSnapshot::to_json`].
/// Bump on any key rename/removal; additions alone do not require a bump
/// but get one anyway so downstream dashboards can pin exactly.
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// A consistent cut of the runtime's serving metrics
/// ([`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot)).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Submission → job execution start.
    pub submit_to_dispatch: HistogramSnapshot,
    /// Execution start → result slots filled.
    pub dispatch_to_complete: HistogramSnapshot,
    /// Submission → result slots filled (the serving latency).
    pub submit_to_complete: HistogramSnapshot,
    /// High-water mark of jobs enqueued at once.
    pub queue_depth_max: usize,
    /// Current queue depth (jobs submitted but not yet retired).
    pub queue_depth: usize,
    /// Submissions rejected by the admission bound.
    pub rejected: u64,
    /// Scheduler counters per shard.
    pub shards: Vec<ShardMetrics>,
    /// Per-job-kind dispatch counts and hardware attribution.
    pub kinds: Vec<KindMetrics>,
    /// Sum of every kind's hardware events.
    pub hw_total: HwSnapshot,
    /// Events currently held in the journal.
    pub journal_len: usize,
    /// Journal events evicted to make room since creation.
    pub journal_overwritten: u64,
}

impl MetricsSnapshot {
    pub(crate) fn capture(t: &RtTelemetry, queue_depth: usize) -> Self {
        let shards = t
            .per_shard
            .iter()
            .map(|s| ShardMetrics {
                steals: s.steals.load(Ordering::Relaxed),
                retries: s.retries.load(Ordering::Relaxed),
                requeues: s.requeues.load(Ordering::Relaxed),
                quarantines: s.quarantines.load(Ordering::Relaxed),
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
            })
            .collect();
        let kinds = KIND_NAMES
            .iter()
            .zip(&t.per_kind)
            .map(|(&kind, agg)| KindMetrics {
                kind,
                jobs: agg.jobs.load(Ordering::Relaxed),
                hw: agg.hw.snapshot(),
            })
            .collect();
        Self {
            submit_to_dispatch: t.submit_to_dispatch.snapshot(),
            dispatch_to_complete: t.dispatch_to_complete.snapshot(),
            submit_to_complete: t.submit_to_complete.snapshot(),
            queue_depth_max: t.queue_depth_max.load(Ordering::Relaxed),
            queue_depth,
            rejected: t.rejected.load(Ordering::Relaxed),
            shards,
            kinds,
            hw_total: t.kind_hw_total(),
            journal_len: t.journal.len(),
            journal_overwritten: t.journal.overwritten(),
        }
    }

    /// Modeled analog latency/energy of everything the job bodies did.
    pub fn analog_cost(&self, model: &AnalogCostModel) -> Cost {
        model.attribute(&self.hw_total)
    }

    /// Serializes the snapshot as a self-contained JSON object (hand-rolled
    /// — the workspace has no serde). Hardware counters are priced through
    /// the default [`AnalogCostModel`]; histograms report count, mean and
    /// the p50/p90/p99/p999/max ladder in nanoseconds. The layout is
    /// versioned by the `"schema_version"` key
    /// ([`METRICS_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let model = AnalogCostModel::default();
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
                h.count,
                h.mean_ns(),
                h.p50_ns(),
                h.p90_ns(),
                h.p99_ns(),
                h.p999_ns(),
                h.max_ns
            )
        };
        let hw_json = |hw: &HwSnapshot| {
            let mut s = String::from("{");
            for (i, (name, v)) in hw.fields().iter().enumerate() {
                let comma = if i + 1 < gramc_telemetry::HW_FIELDS { ", " } else { "" };
                let _ = write!(s, "\"{name}\": {v}{comma}");
            }
            s.push('}');
            s
        };
        let cost_json = |hw: &HwSnapshot| {
            let c = model.attribute(hw);
            format!("{{\"latency_s\": {:e}, \"energy_j\": {:e}}}", c.latency, c.energy)
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", METRICS_SCHEMA_VERSION);
        let _ = writeln!(out, "  \"submit_to_dispatch\": {},", hist(&self.submit_to_dispatch));
        let _ = writeln!(out, "  \"dispatch_to_complete\": {},", hist(&self.dispatch_to_complete));
        let _ = writeln!(out, "  \"submit_to_complete\": {},", hist(&self.submit_to_complete));
        let _ = writeln!(out, "  \"queue_depth\": {},", self.queue_depth);
        let _ = writeln!(out, "  \"queue_depth_max\": {},", self.queue_depth_max);
        let _ = writeln!(out, "  \"rejected\": {},", self.rejected);
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let comma = if i + 1 < self.shards.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"steals\": {}, \"retries\": {}, \"requeues\": {}, \
                 \"quarantines\": {}, \"busy_ns\": {}}}{}",
                s.steals, s.retries, s.requeues, s.quarantines, s.busy_ns, comma
            );
        }
        out.push_str("  ],\n  \"kinds\": {\n");
        for (i, k) in self.kinds.iter().enumerate() {
            let comma = if i + 1 < self.kinds.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"jobs\": {}, \"hw\": {}, \"modeled\": {}}}{}",
                k.kind,
                k.jobs,
                hw_json(&k.hw),
                cost_json(&k.hw),
                comma
            );
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"hw_total\": {},", hw_json(&self.hw_total));
        let _ = writeln!(out, "  \"modeled_total\": {},", cost_json(&self.hw_total));
        let _ = writeln!(
            out,
            "  \"journal\": {{\"len\": {}, \"overwritten\": {}}}",
            self.journal_len, self.journal_overwritten
        );
        out.push_str("}\n");
        out
    }

    /// [`to_json`](Self::to_json) flattened onto one line — the record
    /// format of the live metrics JSONL stream
    /// ([`MetricsReporter`](crate::MetricsReporter)). No key or string in
    /// the document contains whitespace, so collapsing the pretty layout
    /// yields valid compact JSON.
    pub fn to_jsonl_line(&self) -> String {
        let mut line: String = self.to_json().split_whitespace().collect::<Vec<_>>().join(" ");
        line.push('\n');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_names() {
        use crate::registry::OperatorHandle;
        let h = OperatorHandle(0);
        assert_eq!(kind_index(&JobKind::MvmMany { handle: h }), 0);
        assert_eq!(kind_index(&JobKind::SolvePinvBatch { handle: h, bs: Vec::new() }), 5);
        assert_eq!(kind_index(&JobKind::Free { handle: h }), 7);
        assert_eq!(KIND_NAMES[0], "mvm_many");
        assert_eq!(KIND_NAMES[5], "solve_pinv_batch");
        assert_eq!(KIND_NAMES[7], "free");
        for i in 0..KIND_NAMES.len() {
            assert!(kind_span_name(i).ends_with(KIND_NAMES[i]));
            assert!(kind_queued_name(i).ends_with(KIND_NAMES[i]));
        }
    }

    #[test]
    fn snapshot_json_is_balanced_and_priced() {
        let t = RtTelemetry::new(2);
        t.submit_to_dispatch.record_ns(1_000);
        t.dispatch_to_complete.record_ns(2_000);
        t.submit_to_complete.record_ns(3_000);
        let hw = HwSnapshot { dac_drives: 8, adc_conversions: 8, ..Default::default() };
        t.record_job(2, &hw);
        let snap = MetricsSnapshot::capture(&t, 3);
        assert_eq!(snap.kinds[2].jobs, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.hw_total.dac_drives, 8);
        assert!(snap.analog_cost(&AnalogCostModel::default()).energy > 0.0);
        let json = snap.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"submit_to_complete\""));
        assert!(json.contains("\"mvm_batch\""));
        assert!(json.contains("\"solve_pinv_batch\""));
        assert!(json.contains("\"energy_j\""));
    }

    #[test]
    fn jsonl_line_is_one_compact_line() {
        let t = RtTelemetry::new(1);
        t.submit_to_complete.record_ns(5_000);
        let line = MetricsSnapshot::capture(&t, 0).to_jsonl_line();
        assert!(line.ends_with('\n'));
        assert_eq!(line.trim_end().matches('\n').count(), 0);
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"schema_version\": 2"));
    }
}
