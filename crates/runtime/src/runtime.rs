//! The sharded runtime: shards, job queues, the work-stealing drain loop
//! and the submission front-end.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gramc_core::tiling::TileMapping;
use gramc_core::{CoreError, MacroConfig, MacroGroup};
use gramc_linalg::Matrix;

use crate::error::RuntimeError;
use crate::job::{Job, JobHandle, JobKind, JobOutput, Slot};
use crate::registry::{OperatorHandle, Placement, Registry};

/// Where submitted jobs are enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Each job lands on its target shard's deque (the default). Workers
    /// then mostly run their own shard's work and steal only under
    /// imbalance.
    #[default]
    HomeShard,
    /// Every job lands on one deque regardless of its target shard — a
    /// worst-case skew that makes progress depend entirely on stealing
    /// (used by the scheduler stress tests).
    Fixed(usize),
}

/// What one [`Runtime::run_all`] drain did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Jobs retired during this drain.
    pub executed: usize,
    /// Jobs taken from a peer's deque during this drain (only due jobs are
    /// ever stolen, so every stolen job was executed by its thief).
    pub stolen: usize,
    /// Jobs retired per worker during this drain.
    pub per_worker: Vec<usize>,
}

/// One shard: an independent macro group plus its ticket counters.
///
/// `next_ticket` numbers submissions; `exec_ticket` is the ticket allowed
/// to run next. Together they serialize each shard's jobs into program
/// order no matter which worker executes them.
#[derive(Debug)]
struct Shard {
    group: Mutex<MacroGroup>,
    seed: u64,
    next_ticket: AtomicU64,
    exec_ticket: AtomicU64,
}

/// MVM requests against one operator, awaiting their batch's dispatch job
/// (enqueued by the first request).
#[derive(Debug, Default)]
struct PendingMvms {
    xs: Vec<Vec<f64>>,
    slots: Vec<Arc<Slot>>,
}

/// A sharded analog runtime over `N` independent [`MacroGroup`] shards.
///
/// See the crate docs for the architecture; in short: operators are placed
/// through the registry, jobs are submitted against global
/// [`OperatorHandle`]s, and [`run_all`](Self::run_all) drains the queues
/// with one worker per shard plus work stealing.
///
/// # Examples
///
/// ```
/// use gramc_linalg::Matrix;
/// use gramc_runtime::{Placement, Runtime};
/// use gramc_core::tiling::TileMapping;
/// use gramc_core::MacroConfig;
///
/// # fn main() -> Result<(), gramc_runtime::RuntimeError> {
/// let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 7);
/// let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
/// let op = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded)?;
/// // Many users, one model: requests coalesce into one analog dispatch.
/// let h1 = rt.submit_mvm(op, vec![1.0, 2.0])?;
/// let h2 = rt.submit_mvm(op, vec![-1.0, 0.5])?;
/// rt.run_all();
/// let y1 = h1.wait_vector()?;
/// assert!((y1[0] - 0.0).abs() < 0.05);
/// let _ = h2.wait_vector()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runtime {
    shards: Vec<Shard>,
    queues: Vec<Mutex<VecDeque<Job>>>,
    registry: Mutex<Registry>,
    pending_mvm: Mutex<BTreeMap<OperatorHandle, PendingMvms>>,
    /// Jobs enqueued but not yet retired (drain-loop termination).
    remaining: AtomicUsize,
    queue_policy: QueuePolicy,
    executed: Vec<AtomicUsize>,
    stolen: AtomicUsize,
}

impl Runtime {
    /// The sharded constructor: `shards` independent macro groups of
    /// `macros_per_shard` macros each. Shard `s` is seeded with
    /// [`shard_seed_of(seed, s)`](Self::shard_seed_of), so shard 0
    /// reproduces `MacroGroup::new(macros_per_shard, config, seed)`
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, macros_per_shard: usize, config: MacroConfig, seed: u64) -> Self {
        Self::with_queue_policy(shards, macros_per_shard, config, seed, QueuePolicy::HomeShard)
    }

    /// [`new`](Self::new) with an explicit [`QueuePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or a [`QueuePolicy::Fixed`] queue index is
    /// out of range.
    pub fn with_queue_policy(
        shards: usize,
        macros_per_shard: usize,
        config: MacroConfig,
        seed: u64,
        queue_policy: QueuePolicy,
    ) -> Self {
        assert!(shards >= 1, "a runtime needs at least one shard");
        if let QueuePolicy::Fixed(q) = queue_policy {
            assert!(q < shards, "fixed queue {q} out of range for {shards} shards");
        }
        let mk_shard = |s: usize| {
            let shard_seed = Self::shard_seed_of(seed, s);
            Shard {
                group: Mutex::new(MacroGroup::new(macros_per_shard, config.clone(), shard_seed)),
                seed: shard_seed,
                next_ticket: AtomicU64::new(0),
                exec_ticket: AtomicU64::new(0),
            }
        };
        Self {
            shards: (0..shards).map(mk_shard).collect(),
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            registry: Mutex::new(Registry::new(shards)),
            pending_mvm: Mutex::new(BTreeMap::new()),
            remaining: AtomicUsize::new(0),
            queue_policy,
            executed: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            stolen: AtomicUsize::new(0),
        }
    }

    /// The paper's macro complement per shard: `shards` groups of 16
    /// macros of 128×128 each.
    pub fn paper_sharded(shards: usize, seed: u64) -> Self {
        Self::new(shards, 16, MacroConfig::default(), seed)
    }

    /// Seed of shard `s` for base seed `base` — the decorrelation is a
    /// fixed odd multiplier so shard 0 keeps the base seed verbatim.
    pub fn shard_seed_of(base: u64, shard: usize) -> u64 {
        base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seed of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.shards[shard].seed
    }

    /// The macro configuration (identical across shards).
    pub fn config(&self) -> MacroConfig {
        self.shards[0].group.lock().expect("shard lock").config().clone()
    }

    /// Direct access to one shard's macro group, for inspection or
    /// single-shard workflows. Do not hold the guard across
    /// [`run_all`](Self::run_all) — workers need the same lock.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range.
    pub fn shard_group(&self, shard: usize) -> Result<MutexGuard<'_, MacroGroup>, RuntimeError> {
        self.shards
            .get(shard)
            .map(|s| s.group.lock().expect("shard lock"))
            .ok_or(RuntimeError::BadShard { shard, shards: self.shards.len() })
    }

    /// Live-operator count per shard (the least-loaded placement metric).
    pub fn live_operators_per_shard(&self) -> Vec<usize> {
        self.registry.lock().expect("registry lock").live_per_shard().to_vec()
    }

    /// Jobs currently enqueued (each open coalesced MVM batch counts as
    /// its one dispatch job).
    pub fn queued_jobs(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    // ── submission ────────────────────────────────────────────────────

    /// Takes the next ticket of `shard` and enqueues the job under the
    /// queue policy. The queue lock is held across ticket assignment so
    /// queue order equals ticket order for every shard.
    fn enqueue(&self, shard: usize, kind: JobKind, slots: Vec<Arc<Slot>>) {
        let q = match self.queue_policy {
            QueuePolicy::HomeShard => shard,
            QueuePolicy::Fixed(q) => q,
        };
        let mut queue = self.queues[q].lock().expect("queue lock");
        let ticket = self.shards[shard].next_ticket.fetch_add(1, Ordering::SeqCst);
        self.remaining.fetch_add(1, Ordering::SeqCst);
        queue.push_back(Job { shard, ticket, kind, slots });
    }

    /// Queues a matrix load. The returned [`OperatorHandle`] is valid for
    /// submissions immediately — tickets guarantee the load executes
    /// before any job submitted after it on the same shard.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] for an out-of-range pinned placement.
    pub fn submit_load(
        &self,
        a: &Matrix,
        mapping: TileMapping,
        placement: Placement,
    ) -> Result<(OperatorHandle, JobHandle), RuntimeError> {
        let (handle, shard) =
            self.registry.lock().expect("registry lock").place(placement, a.cols())?;
        let jh = JobHandle::new();
        self.enqueue(
            shard,
            JobKind::Load { handle, matrix: a.clone(), mapping },
            vec![jh.slot.clone()],
        );
        Ok((handle, jh))
    }

    /// Submits one MVM request. Requests against the same operator are
    /// **coalesced**: the first pending request opens a batch and enqueues
    /// its dispatch job (so the batch takes its shard ticket — its place in
    /// program order — at that first submission point), and later requests
    /// join the open batch until the job executes it as a single
    /// `mvm_batch` — one analog dispatch for the whole crowd, never
    /// reordered after jobs submitted later.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`CoreError::ShapeMismatch`](gramc_core::CoreError) for a wrong
    /// input length — checked here so one malformed request cannot poison
    /// the whole coalesced batch it would have joined.
    pub fn submit_mvm(&self, op: OperatorHandle, x: Vec<f64>) -> Result<JobHandle, RuntimeError> {
        let (shard, cols) = self.registry.lock().expect("registry lock").shard_and_cols(op)?;
        if x.len() != cols {
            return Err(CoreError::ShapeMismatch { expected: cols, found: x.len() }.into());
        }
        let jh = JobHandle::new();
        // The pending lock is held across the enqueue so opening the batch
        // and taking its ticket are atomic.
        let mut pending = self.pending_mvm.lock().expect("pending lock");
        let entry = pending.entry(op).or_default();
        let opens_batch = entry.xs.is_empty();
        entry.xs.push(x);
        entry.slots.push(jh.slot.clone());
        if opens_batch {
            self.enqueue(shard, JobKind::MvmMany { handle: op }, Vec::new());
        }
        Ok(jh)
    }

    /// Submits an explicit batch MVM (one job, one handle for the whole
    /// batch) — bypasses coalescing.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles.
    pub fn submit_mvm_batch(
        &self,
        op: OperatorHandle,
        xs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        let jh = JobHandle::new();
        self.enqueue(shard, JobKind::MvmBatch { handle: op, xs }, vec![jh.slot.clone()]);
        Ok(jh)
    }

    /// Submits a single-RHS INV solve.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles.
    pub fn submit_solve_inv(
        &self,
        op: OperatorHandle,
        b: Vec<f64>,
    ) -> Result<JobHandle, RuntimeError> {
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        let jh = JobHandle::new();
        self.enqueue(shard, JobKind::SolveInv { handle: op, b }, vec![jh.slot.clone()]);
        Ok(jh)
    }

    /// Submits a multi-RHS INV solve (`MacroGroup::solve_inv_batch`): all
    /// right-hand sides share one conductance read and one factorization.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles.
    pub fn submit_solve_inv_batch(
        &self,
        op: OperatorHandle,
        bs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        let jh = JobHandle::new();
        self.enqueue(shard, JobKind::SolveInvBatch { handle: op, bs }, vec![jh.slot.clone()]);
        Ok(jh)
    }

    /// Queues the release of an operator. The handle is dead to further
    /// submissions immediately; a second free is rejected. A still-queued
    /// load is fine — the free enqueues behind it (fully pipelined
    /// load → work → free); if that load then fails, the free job reports
    /// [`RuntimeError::InvalidHandle`] (there was nothing to release).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DoubleFree`] if already freed or free-queued,
    /// [`RuntimeError::InvalidHandle`] for unknown handles.
    pub fn submit_free(&self, op: OperatorHandle) -> Result<JobHandle, RuntimeError> {
        let shard = self.registry.lock().expect("registry lock").queue_free(op)?;
        let jh = JobHandle::new();
        self.enqueue(shard, JobKind::Free { handle: op }, vec![jh.slot.clone()]);
        Ok(jh)
    }

    // ── synchronous convenience front-end ─────────────────────────────
    //
    // Each of these submits, drains ALL outstanding work (not just its own
    // job — run_all has no way to retire one job selectively without
    // breaking per-shard program order), and waits.

    /// Loads a matrix and blocks until it is placed.
    ///
    /// # Errors
    ///
    /// Placement and mapping errors from the shard.
    pub fn load(
        &self,
        a: &Matrix,
        mapping: TileMapping,
        placement: Placement,
    ) -> Result<OperatorHandle, RuntimeError> {
        let (_, jh) = self.submit_load(a, mapping, placement)?;
        self.run_all();
        match jh.wait()? {
            JobOutput::Loaded(handle) => Ok(handle),
            _ => Err(RuntimeError::WrongOutput),
        }
    }

    /// Synchronous single MVM.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn mvm(&self, op: OperatorHandle, x: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let jh = self.submit_mvm(op, x.to_vec())?;
        self.run_all();
        jh.wait_vector()
    }

    /// Synchronous batch MVM.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn mvm_batch(
        &self,
        op: OperatorHandle,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let jh = self.submit_mvm_batch(op, xs.to_vec())?;
        self.run_all();
        jh.wait_vectors()
    }

    /// Synchronous single-RHS INV solve.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn solve_inv(&self, op: OperatorHandle, b: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let jh = self.submit_solve_inv(op, b.to_vec())?;
        self.run_all();
        jh.wait_vector()
    }

    /// Synchronous multi-RHS INV solve.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn solve_inv_batch(
        &self,
        op: OperatorHandle,
        bs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let jh = self.submit_solve_inv_batch(op, bs.to_vec())?;
        self.run_all();
        jh.wait_vectors()
    }

    /// Synchronous free.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DoubleFree`] / [`RuntimeError::InvalidHandle`].
    pub fn free(&self, op: OperatorHandle) -> Result<(), RuntimeError> {
        let jh = self.submit_free(op)?;
        self.run_all();
        jh.wait().map(|_| ())
    }

    // ── the drain loop ────────────────────────────────────────────────

    /// Drains every queue to empty. With the `parallel` feature one scoped
    /// worker per shard runs concurrently (idle workers steal from the back
    /// of peers' deques); without it the calling thread plays worker 0 and
    /// steals everything itself. Either way every shard retires its jobs in
    /// ticket order, so results are identical.
    ///
    /// Job failures are reported through their [`JobHandle`]s, not here —
    /// but a job that *panics* (as opposed to returning an error) retires
    /// its ticket, fills its handles with [`RuntimeError::JobPanicked`]
    /// (so waiters on other threads wake instead of hanging) and then
    /// propagates the panic out of `run_all`; the runtime must not be
    /// reused after that.
    pub fn run_all(&self) -> RunSummary {
        let executed_before: Vec<usize> =
            self.executed.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        let stolen_before = self.stolen.load(Ordering::SeqCst);
        self.drain();
        let per_worker: Vec<usize> = self
            .executed
            .iter()
            .zip(&executed_before)
            .map(|(c, b)| c.load(Ordering::SeqCst) - b)
            .collect();
        RunSummary {
            executed: per_worker.iter().sum(),
            stolen: self.stolen.load(Ordering::SeqCst) - stolen_before,
            per_worker,
        }
    }

    #[cfg(feature = "parallel")]
    fn drain(&self) {
        let workers = self.queues.len();
        if workers <= 1 {
            self.worker_loop(0);
            return;
        }
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || self.worker_loop(w));
            }
        });
    }

    #[cfg(not(feature = "parallel"))]
    fn drain(&self) {
        // Single-threaded fallback: worker 0 pops its own queue and
        // "steals" every other queue dry, honoring the same tickets.
        self.worker_loop(0);
    }

    fn worker_loop(&self, w: usize) {
        let mut idle = 0u32;
        while self.remaining.load(Ordering::SeqCst) > 0 {
            let advanced = match self.grab_job(w) {
                Some(job) => self.try_execute(w, job),
                None => false,
            };
            if advanced {
                idle = 0;
            } else {
                // Nothing runnable right now (peers hold the due tickets):
                // yield briefly, then back off to a micro-sleep.
                idle += 1;
                if idle < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Whether the job's shard has retired every earlier ticket, i.e. the
    /// job may execute right now.
    fn is_due(&self, job: &Job) -> bool {
        self.shards[job.shard].exec_ticket.load(Ordering::SeqCst) == job.ticket
    }

    /// Own deque front first; otherwise steal from a peer's deque, taking
    /// the job **closest to its back whose ticket is due**. Stealing only
    /// runnable jobs is what keeps a lone worker (the single-threaded
    /// fallback, or the last awake worker) from spinning on a stolen job
    /// whose predecessors it itself still has to run.
    fn grab_job(&self, w: usize) -> Option<Job> {
        if let Some(job) = self.queues[w].lock().expect("queue lock").pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for d in 1..n {
            let peer = (w + d) % n;
            let mut queue = self.queues[peer].lock().expect("queue lock");
            if let Some(idx) = queue.iter().rposition(|job| self.is_due(job)) {
                let job = queue.remove(idx).expect("index from rposition");
                self.stolen.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Runs the job if its shard's program order allows it; otherwise puts
    /// it back on this worker's deque (only a job whose predecessor is
    /// mid-execution on another worker lands here, so the wait is
    /// bounded). Workers never block holding a job, which is what keeps
    /// stealing deadlock-free.
    fn try_execute(&self, w: usize, job: Job) -> bool {
        let shard = &self.shards[job.shard];
        if !self.is_due(&job) {
            self.queues[w].lock().expect("queue lock").push_back(job);
            return false;
        }
        // A panicking job must still retire its ticket and decrement
        // `remaining`, or the surviving workers would spin on the stuck
        // shard forever while `std::thread::scope` waits for them. Its
        // slots are filled with `JobPanicked` so waiters on other threads
        // wake with an error instead of hanging; the panic itself is
        // re-raised below and propagates out of `run_all`.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut group = shard.group.lock().expect("shard lock");
            self.run_kind(&mut group, &job);
        }));
        shard.exec_ticket.store(job.ticket + 1, Ordering::SeqCst);
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        self.executed[w].fetch_add(1, Ordering::SeqCst);
        if let Err(payload) = run {
            for slot in &job.slots {
                slot.fill(Err(RuntimeError::JobPanicked));
            }
            std::panic::resume_unwind(payload);
        }
        true
    }

    /// Executes the job body against its shard's group and fills its
    /// slots. The registry lock is only ever taken *inside* (leaf lock).
    fn run_kind(&self, group: &mut MacroGroup, job: &Job) {
        let live_id = |op: OperatorHandle| self.registry.lock().expect("registry lock").live_id(op);
        match &job.kind {
            JobKind::MvmMany { handle } => {
                // Drain whatever the batch accumulated between its opening
                // submission and now. The drained slots only live in this
                // arm, so a panicking dispatch is caught here to wake the
                // batch's waiters (try_execute covers every other kind via
                // the job's own slots) before re-raising.
                let Some(batch) = self.pending_mvm.lock().expect("pending lock").remove(handle)
                else {
                    return;
                };
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    live_id(*handle)
                        .and_then(|id| group.mvm_batch(id, &batch.xs).map_err(RuntimeError::from))
                }));
                match run {
                    Ok(Ok(ys)) => {
                        for (slot, y) in batch.slots.iter().zip(ys) {
                            slot.fill(Ok(JobOutput::Vector(y)));
                        }
                    }
                    Ok(Err(e)) => {
                        for slot in &batch.slots {
                            slot.fill(Err(e.clone()));
                        }
                    }
                    Err(payload) => {
                        for slot in &batch.slots {
                            slot.fill(Err(RuntimeError::JobPanicked));
                        }
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            JobKind::MvmBatch { handle, xs } => {
                let result = live_id(*handle)
                    .and_then(|id| group.mvm_batch(id, xs).map_err(RuntimeError::from));
                job.slots[0].fill(result.map(JobOutput::Vectors));
            }
            JobKind::SolveInv { handle, b } => {
                let result = live_id(*handle)
                    .and_then(|id| group.solve_inv(id, b).map_err(RuntimeError::from));
                job.slots[0].fill(result.map(JobOutput::Vector));
            }
            JobKind::SolveInvBatch { handle, bs } => {
                let result = live_id(*handle)
                    .and_then(|id| group.solve_inv_batch(id, bs).map_err(RuntimeError::from));
                job.slots[0].fill(result.map(JobOutput::Vectors));
            }
            JobKind::Load { handle, matrix, mapping } => {
                let loaded = match mapping {
                    TileMapping::FourBit => group.load_matrix(matrix),
                    TileMapping::BitSlicedInt8 => group.load_matrix_bitsliced(matrix),
                };
                match loaded {
                    Ok(id) => {
                        self.registry.lock().expect("registry lock").fulfill(*handle, id);
                        job.slots[0].fill(Ok(JobOutput::Loaded(*handle)));
                    }
                    Err(e) => {
                        self.registry.lock().expect("registry lock").abandon(*handle);
                        job.slots[0].fill(Err(e.into()));
                    }
                }
            }
            JobKind::Free { handle } => {
                let result = self
                    .registry
                    .lock()
                    .expect("registry lock")
                    .retire(*handle)
                    .and_then(|id| group.free_operator(id).map_err(RuntimeError::from));
                job.slots[0].fill(result.map(|()| JobOutput::Freed));
            }
        }
    }
}
