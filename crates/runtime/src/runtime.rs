//! The sharded runtime: shards, job queues, the work-stealing drain loop
//! and the submission front-end.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use gramc_core::tiling::TileMapping;
#[cfg(feature = "fault-inject")]
use gramc_core::FaultConfig;
use gramc_core::{CoreError, MacroConfig, MacroGroup, ProbeReport};
use gramc_linalg::{lu, qr, vector, Matrix};
#[cfg(feature = "telemetry")]
use gramc_telemetry::{FlowPhase, HwSnapshot, JournalEvent};

use crate::error::RuntimeError;
use crate::health::{HealthConfig, HealthEvent, ShardHealth};
use crate::job::{Job, JobHandle, JobKind, JobOutput, RequestMeta, Slot};
use crate::registry::{ExecTarget, FreeTarget, OperatorHandle, Placement, Registry};
#[cfg(feature = "telemetry")]
use crate::telemetry::{
    kind_index, kind_queued_name, kind_span_name, split_hw, MetricsSnapshot, RtTelemetry,
    WORKER_LANE_BASE,
};
use crate::tenant::{RequestId, TenantEntry, TenantId, TenantQuota, TenantTable};

/// Where submitted jobs are enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Each job lands on its target shard's deque (the default). Workers
    /// then mostly run their own shard's work and steal only under
    /// imbalance.
    #[default]
    HomeShard,
    /// Every job lands on one deque regardless of its target shard — a
    /// worst-case skew that makes progress depend entirely on stealing
    /// (used by the scheduler stress tests).
    Fixed(usize),
}

/// What one [`Runtime::run_all`] drain did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Jobs retired during this drain.
    pub executed: usize,
    /// Jobs taken from a peer's deque during this drain (only due jobs are
    /// ever stolen, so every stolen job was executed by its thief).
    pub stolen: usize,
    /// Jobs retired per worker during this drain.
    pub per_worker: Vec<usize>,
    /// Health checks that failed during this drain: residual misses, failed
    /// probes, loads whose write-verify stayed over threshold.
    pub failed_checks: usize,
    /// Jobs answered from the digital fallback path during this drain
    /// (out of retries, or their operator had been degraded).
    pub degraded: usize,
    /// Recovery actions taken since the previous drain (quarantines,
    /// migrations, degradations, failed loads) in the order they happened.
    /// Probes between drains report here too.
    pub events: Vec<HealthEvent>,
    /// Hardware events this drain's job bodies caused (snapshot-diffed
    /// under each shard's group lock, so the attribution is exact).
    #[cfg(feature = "telemetry")]
    pub hw: HwSnapshot,
}

#[cfg(feature = "telemetry")]
impl RunSummary {
    /// Modeled analog latency/energy of this drain's hardware events.
    pub fn analog_cost(
        &self,
        model: &gramc_core::metrics::AnalogCostModel,
    ) -> gramc_core::metrics::Cost {
        model.attribute(&self.hw)
    }
}

/// One shard: an independent macro group plus its ticket counters.
///
/// `next_ticket` numbers submissions; `exec_ticket` is the ticket allowed
/// to run next. Together they serialize each shard's jobs into program
/// order no matter which worker executes them.
#[derive(Debug)]
struct Shard {
    group: Mutex<MacroGroup>,
    seed: u64,
    next_ticket: AtomicU64,
    exec_ticket: AtomicU64,
}

/// MVM requests against one operator, awaiting their batch's dispatch job
/// (enqueued by the first request). The three vectors run parallel, in
/// submission order.
#[derive(Debug, Default)]
struct PendingMvms {
    xs: Vec<Vec<f64>>,
    slots: Vec<Arc<Slot>>,
    meta: Vec<RequestMeta>,
}

/// A sharded analog runtime over `N` independent [`MacroGroup`] shards.
///
/// See the crate docs for the architecture; in short: operators are placed
/// through the registry, jobs are submitted against global
/// [`OperatorHandle`]s, and [`run_all`](Self::run_all) drains the queues
/// with one worker per shard plus work stealing.
///
/// # Examples
///
/// ```
/// use gramc_linalg::Matrix;
/// use gramc_runtime::{Placement, Runtime};
/// use gramc_core::tiling::TileMapping;
/// use gramc_core::MacroConfig;
///
/// # fn main() -> Result<(), gramc_runtime::RuntimeError> {
/// let rt = Runtime::new(2, 2, MacroConfig::small_ideal(4), 7);
/// let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
/// let op = rt.load(&a, TileMapping::FourBit, Placement::LeastLoaded)?;
/// // Many users, one model: requests coalesce into one analog dispatch.
/// let h1 = rt.submit_mvm(op, vec![1.0, 2.0])?;
/// let h2 = rt.submit_mvm(op, vec![-1.0, 0.5])?;
/// rt.run_all();
/// let y1 = h1.wait_vector()?;
/// assert!((y1[0] - 0.0).abs() < 0.05);
/// let _ = h2.wait_vector()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runtime {
    shards: Vec<Shard>,
    queues: Vec<Mutex<VecDeque<Job>>>,
    registry: Mutex<Registry>,
    pending_mvm: Mutex<BTreeMap<OperatorHandle, PendingMvms>>,
    /// Jobs enqueued but not yet retired (drain-loop termination).
    remaining: AtomicUsize,
    /// Admission bound: submissions are rejected with
    /// [`RuntimeError::QueueFull`] while `remaining` is at or over this.
    /// `None` (the default) admits everything.
    queue_limit: Option<usize>,
    /// Parking/wake state of persistent serving workers
    /// ([`RuntimeServer`](crate::RuntimeServer)).
    serve: ServeState,
    /// Monotonic request-id mint (ids start at 1; 0 means "none").
    next_request: AtomicU64,
    /// Per-tenant accounting entries, created on first contact.
    tenants: TenantTable,
    /// Per-tenant fair-admission quota; `None` (the default) admits
    /// everything.
    tenant_quota: Option<TenantQuota>,
    queue_policy: QueuePolicy,
    executed: Vec<AtomicUsize>,
    stolen: AtomicUsize,
    health_cfg: HealthConfig,
    health: Vec<ShardHealth>,
    events: Mutex<Vec<HealthEvent>>,
    failed_checks: AtomicUsize,
    degraded: AtomicUsize,
    #[cfg(feature = "telemetry")]
    telemetry: RtTelemetry,
}

impl Runtime {
    /// The sharded constructor: `shards` independent macro groups of
    /// `macros_per_shard` macros each. Shard `s` is seeded with
    /// [`shard_seed_of(seed, s)`](Self::shard_seed_of), so shard 0
    /// reproduces `MacroGroup::new(macros_per_shard, config, seed)`
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, macros_per_shard: usize, config: MacroConfig, seed: u64) -> Self {
        Self::with_queue_policy(shards, macros_per_shard, config, seed, QueuePolicy::HomeShard)
    }

    /// [`new`](Self::new) with an explicit [`QueuePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or a [`QueuePolicy::Fixed`] queue index is
    /// out of range.
    pub fn with_queue_policy(
        shards: usize,
        macros_per_shard: usize,
        config: MacroConfig,
        seed: u64,
        queue_policy: QueuePolicy,
    ) -> Self {
        assert!(shards >= 1, "a runtime needs at least one shard");
        if let QueuePolicy::Fixed(q) = queue_policy {
            assert!(q < shards, "fixed queue {q} out of range for {shards} shards");
        }
        let mk_shard = |s: usize| {
            let shard_seed = Self::shard_seed_of(seed, s);
            Shard {
                group: Mutex::new(MacroGroup::new(macros_per_shard, config.clone(), shard_seed)),
                seed: shard_seed,
                next_ticket: AtomicU64::new(0),
                exec_ticket: AtomicU64::new(0),
            }
        };
        Self {
            shards: (0..shards).map(mk_shard).collect(),
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            registry: Mutex::new(Registry::new(shards)),
            pending_mvm: Mutex::new(BTreeMap::new()),
            remaining: AtomicUsize::new(0),
            queue_limit: None,
            serve: ServeState::default(),
            next_request: AtomicU64::new(0),
            tenants: TenantTable::default(),
            tenant_quota: None,
            queue_policy,
            executed: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            stolen: AtomicUsize::new(0),
            health_cfg: HealthConfig::default(),
            health: (0..shards).map(|_| ShardHealth::default()).collect(),
            events: Mutex::new(Vec::new()),
            failed_checks: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            #[cfg(feature = "telemetry")]
            telemetry: RtTelemetry::new(shards),
        }
    }

    /// Replaces the health-monitoring policy (builder style). The default
    /// [`HealthConfig`] has per-job residual checks **off**, which keeps
    /// results bit-identical to a runtime without health machinery.
    #[must_use]
    pub fn with_health_config(mut self, cfg: HealthConfig) -> Self {
        self.health_cfg = cfg;
        self
    }

    /// The active health-monitoring policy.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health_cfg
    }

    /// Bounds the job queue (builder style): while `limit` jobs are already
    /// submitted and unretired, further submissions are rejected with
    /// [`RuntimeError::QueueFull`] instead of enqueueing — typed
    /// backpressure for serving deployments. The bound is approximate under
    /// concurrent submitters (each checks then enqueues without a global
    /// lock), which is the usual admission-control contract: it bounds the
    /// queue to `limit + O(submitters)`, never rejects below `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` — a queue that admits nothing deadlocks every
    /// caller.
    #[must_use]
    pub fn with_queue_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "a zero queue limit would reject every submission");
        self.queue_limit = Some(limit);
        self
    }

    /// The admission bound, if one is set.
    pub fn queue_limit(&self) -> Option<usize> {
        self.queue_limit
    }

    /// Applies a per-tenant fair-admission quota (builder style): while a
    /// tenant already has [`TenantQuota::max_in_flight`] unretired
    /// requests, its further submissions — riders joining a coalesced
    /// batch included — are rejected with [`RuntimeError::QueueFull`]
    /// carrying the quota as its `limit`. Other tenants are unaffected, so
    /// one tenant's flood backs up on itself instead of starving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `quota.max_in_flight == 0` — a tenant that may submit
    /// nothing deadlocks every caller.
    #[must_use]
    pub fn with_tenant_quota(mut self, quota: TenantQuota) -> Self {
        assert!(quota.max_in_flight > 0, "a zero tenant quota would reject every submission");
        self.tenant_quota = Some(quota);
        self
    }

    /// The per-tenant admission quota, if one is set.
    pub fn tenant_quota(&self) -> Option<TenantQuota> {
        self.tenant_quota
    }

    /// Resizes the event-journal ring (builder style; default 4096
    /// events). Serving runs dense enough to wrap the default ring surface
    /// a non-zero drop rate in the metrics stream — size the ring to the
    /// run instead of losing the early spans.
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.telemetry.journal = gramc_telemetry::EventJournal::new(capacity);
        self
    }

    /// Mints the next request id (unique per runtime lifetime, starting
    /// at 1).
    fn mint_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Tenant-quota admission: takes one in-flight unit for the request,
    /// or rejects it with [`RuntimeError::QueueFull`] when the tenant sits
    /// at its quota. Called as the **last** fallible step of every submit
    /// path, so a rejected submission has taken no state.
    fn admit_tenant(&self, entry: &TenantEntry) -> Result<(), RuntimeError> {
        let limit = self.tenant_quota.map(|q| q.max_in_flight);
        if !entry.try_acquire(limit) {
            let limit = limit.expect("acquire only fails under a quota");
            entry.rejected.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.rejected.fetch_add(1, Ordering::Relaxed);
                self.telemetry.journal.instant("rejected_tenant", "runtime", limit as u64, 0);
            }
            return Err(RuntimeError::QueueFull { limit });
        }
        entry.requests.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Admission control: rejects the submission while the queue sits at or
    /// over the configured bound. Called by every `submit_*` before any
    /// state is mutated, so a rejected call has no side effects.
    fn admit(&self) -> Result<(), RuntimeError> {
        let Some(limit) = self.queue_limit else {
            return Ok(());
        };
        if self.remaining.load(Ordering::SeqCst) >= limit {
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.rejected.fetch_add(1, Ordering::Relaxed);
                self.telemetry.journal.instant("rejected", "runtime", limit as u64, 0);
            }
            return Err(RuntimeError::QueueFull { limit });
        }
        Ok(())
    }

    /// The paper's macro complement per shard: `shards` groups of 16
    /// macros of 128×128 each.
    pub fn paper_sharded(shards: usize, seed: u64) -> Self {
        Self::new(shards, 16, MacroConfig::default(), seed)
    }

    /// Seed of shard `s` for base seed `base` — the decorrelation is a
    /// fixed odd multiplier so shard 0 keeps the base seed verbatim.
    pub fn shard_seed_of(base: u64, shard: usize) -> u64 {
        base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seed of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.shards[shard].seed
    }

    /// The macro configuration (identical across shards).
    pub fn config(&self) -> MacroConfig {
        self.shards[0].group.lock().expect("shard lock").config().clone()
    }

    /// Direct access to one shard's macro group, for inspection or
    /// single-shard workflows. Do not hold the guard across
    /// [`run_all`](Self::run_all) — workers need the same lock.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range.
    pub fn shard_group(&self, shard: usize) -> Result<MutexGuard<'_, MacroGroup>, RuntimeError> {
        self.shards
            .get(shard)
            .map(|s| s.group.lock().expect("shard lock"))
            .ok_or(RuntimeError::BadShard { shard, shards: self.shards.len() })
    }

    /// Live-operator count per shard (the least-loaded placement metric).
    pub fn live_operators_per_shard(&self) -> Vec<usize> {
        self.registry.lock().expect("registry lock").live_per_shard().to_vec()
    }

    /// Jobs currently enqueued (each open coalesced MVM batch counts as
    /// its one dispatch job).
    pub fn queued_jobs(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    // ── submission ────────────────────────────────────────────────────

    /// Takes the next ticket of `shard` and enqueues the job under the
    /// queue policy. The queue lock is held across ticket assignment so
    /// queue order equals ticket order for every shard.
    fn enqueue(&self, shard: usize, kind: JobKind, slots: Vec<Arc<Slot>>, meta: Vec<RequestMeta>) {
        self.enqueue_job(shard, kind, slots, meta, 0);
    }

    /// [`enqueue`](Self::enqueue) carrying a retry count — how the recovery
    /// path re-dispatches failed or migrated jobs.
    fn enqueue_job(
        &self,
        shard: usize,
        kind: JobKind,
        slots: Vec<Arc<Slot>>,
        #[allow(unused_mut)] mut meta: Vec<RequestMeta>,
        retries: u32,
    ) {
        let q = match self.queue_policy {
            QueuePolicy::HomeShard => shard,
            QueuePolicy::Fixed(q) => q,
        };
        let mut queue = self.queues[q].lock().expect("queue lock");
        let ticket = self.shards[shard].next_ticket.fetch_add(1, Ordering::SeqCst);
        let prev_depth = self.remaining.fetch_add(1, Ordering::SeqCst);
        #[cfg(feature = "telemetry")]
        let submit_ns = self.telemetry.journal.now_ns();
        #[cfg(feature = "telemetry")]
        {
            // Riders stamp themselves at their own submission; the job's
            // requests are stamped here, at ticket assignment (a
            // re-dispatch restamps — per-dispatch latency, matching the
            // serving histograms).
            for m in &mut meta {
                m.submit_ns = submit_ns;
            }
            self.telemetry.queue_depth_max.fetch_max(prev_depth + 1, Ordering::Relaxed);
            self.telemetry.journal.record(JournalEvent {
                name: "submit",
                category: "runtime",
                ts_ns: submit_ns,
                dur_ns: 0,
                arg_a: shard as u64,
                arg_b: ticket,
                ..JournalEvent::default()
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = prev_depth;
        queue.push_back(Job {
            shard,
            ticket,
            kind,
            slots,
            meta,
            retries,
            #[cfg(feature = "telemetry")]
            submitted: std::time::Instant::now(),
            #[cfg(feature = "telemetry")]
            submit_ns,
        });
        drop(queue);
        // Wake parked serving workers. The park mutex is taken (empty
        // critical section) so a worker between its `remaining` re-check
        // and its wait cannot miss the notification.
        if self.serve.active.load(Ordering::SeqCst) {
            drop(self.serve.park.lock().expect("serve lock"));
            self.serve.wake.notify_all();
        }
    }

    /// Rejects `NaN`/`±inf` inputs at submission time (mirroring the shape
    /// check): an analog driver cannot encode them, and catching them here
    /// keeps one malformed request from poisoning a coalesced batch.
    fn check_finite(xs: &[f64]) -> Result<(), RuntimeError> {
        if xs.iter().all(|x| x.is_finite()) {
            Ok(())
        } else {
            Err(RuntimeError::NonFiniteInput)
        }
    }

    /// Queues a matrix load. The returned [`OperatorHandle`] is valid for
    /// submissions immediately — tickets guarantee the load executes
    /// before any job submitted after it on the same shard.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] for an out-of-range pinned placement;
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_load(
        &self,
        a: &Matrix,
        mapping: TileMapping,
        placement: Placement,
    ) -> Result<(OperatorHandle, JobHandle), RuntimeError> {
        self.submit_load_for(TenantId::DEFAULT, a, mapping, placement)
    }

    /// [`submit_load`](Self::submit_load) attributed to an explicit tenant.
    ///
    /// # Errors
    ///
    /// As [`submit_load`](Self::submit_load), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota.
    pub fn submit_load_for(
        &self,
        tenant: TenantId,
        a: &Matrix,
        mapping: TileMapping,
        placement: Placement,
    ) -> Result<(OperatorHandle, JobHandle), RuntimeError> {
        self.admit()?;
        let entry = self.tenants.entry(tenant);
        self.admit_tenant(&entry)?;
        let matrix = Arc::new(a.clone());
        let placed = self.registry.lock().expect("registry lock").place(
            placement,
            a.rows(),
            a.cols(),
            matrix.clone(),
            mapping,
        );
        let (handle, shard) = match placed {
            Ok(p) => p,
            Err(e) => {
                // Admission succeeded but placement did not: hand the
                // in-flight unit back, the request never existed.
                entry.release();
                return Err(e);
            }
        };
        let request = self.mint_request();
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::Load { handle, matrix, mapping },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, tenant, 1)],
        );
        Ok((handle, jh))
    }

    /// Submits one MVM request. Requests against the same operator are
    /// **coalesced**: the first pending request opens a batch and enqueues
    /// its dispatch job (so the batch takes its shard ticket — its place in
    /// program order — at that first submission point), and later requests
    /// join the open batch until the job executes it as a single
    /// `mvm_batch` — one analog dispatch for the whole crowd, never
    /// reordered after jobs submitted later.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`CoreError::ShapeMismatch`](gramc_core::CoreError) for a wrong
    /// input length — checked here so one malformed request cannot poison
    /// the whole coalesced batch it would have joined;
    /// [`RuntimeError::QueueFull`] past the admission bound (only a request
    /// that would *open* a batch is subject to the bound — a rider joining
    /// an already-open batch adds no queue entry).
    pub fn submit_mvm(&self, op: OperatorHandle, x: Vec<f64>) -> Result<JobHandle, RuntimeError> {
        self.submit_mvm_for(TenantId::DEFAULT, op, x)
    }

    /// [`submit_mvm`](Self::submit_mvm) attributed to an explicit tenant.
    /// Riders joining an open batch keep their own [`RequestId`] and
    /// tenant — the batch executes once, but its cost is split among the
    /// riders and each rider's causal chain stays visible in the trace.
    ///
    /// # Errors
    ///
    /// As [`submit_mvm`](Self::submit_mvm), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota (riders
    /// are subject to the tenant quota even though they add no queue
    /// entry — each holds a result slot).
    pub fn submit_mvm_for(
        &self,
        tenant: TenantId,
        op: OperatorHandle,
        x: Vec<f64>,
    ) -> Result<JobHandle, RuntimeError> {
        let (shard, cols) = self.registry.lock().expect("registry lock").shard_and_cols(op)?;
        if x.len() != cols {
            return Err(CoreError::ShapeMismatch { expected: cols, found: x.len() }.into());
        }
        Self::check_finite(&x)?;
        let entry = self.tenants.entry(tenant);
        // The pending lock is held across the enqueue so opening the batch
        // and taking its ticket are atomic.
        let mut pending = self.pending_mvm.lock().expect("pending lock");
        let batch = pending.entry(op).or_default();
        let opens_batch = batch.xs.is_empty();
        if opens_batch {
            self.admit()?;
        }
        // Tenant admission is the last fallible step: a rejected request
        // has joined nothing.
        self.admit_tenant(&entry)?;
        let request = self.mint_request();
        let jh = JobHandle::new(request, entry);
        #[allow(unused_mut)]
        let mut m = RequestMeta::new(request, tenant, 1);
        #[cfg(feature = "telemetry")]
        {
            // Riders stamp their own submission time — their queue wait
            // starts here, not at the batch's ticket.
            m.submit_ns = self.telemetry.journal.now_ns();
        }
        batch.xs.push(x);
        batch.slots.push(jh.slot.clone());
        batch.meta.push(m);
        if opens_batch {
            // The dispatch job starts empty: hydration drains the pending
            // batch (slots and meta included) when it executes.
            self.enqueue(shard, JobKind::MvmMany { handle: op }, Vec::new(), Vec::new());
        } else {
            // Joined an already-open batch: no new job, just one more rider.
            #[cfg(feature = "telemetry")]
            self.telemetry.journal.instant(
                "coalesce",
                "runtime",
                shard as u64,
                batch.xs.len() as u64,
            );
        }
        Ok(jh)
    }

    /// Submits an explicit batch MVM (one job, one handle for the whole
    /// batch) — bypasses coalescing.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_mvm_batch(
        &self,
        op: OperatorHandle,
        xs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.submit_mvm_batch_for(TenantId::DEFAULT, op, xs)
    }

    /// [`submit_mvm_batch`](Self::submit_mvm_batch) attributed to an
    /// explicit tenant. The batch is one request of weight `xs.len()` in
    /// the tenant's cost attribution.
    ///
    /// # Errors
    ///
    /// As [`submit_mvm_batch`](Self::submit_mvm_batch), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota.
    pub fn submit_mvm_batch_for(
        &self,
        tenant: TenantId,
        op: OperatorHandle,
        xs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.admit()?;
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        for x in &xs {
            Self::check_finite(x)?;
        }
        let entry = self.tenants.entry(tenant);
        self.admit_tenant(&entry)?;
        let request = self.mint_request();
        let rows = xs.len().max(1) as u64;
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::MvmBatch { handle: op, xs },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, tenant, rows)],
        );
        Ok(jh)
    }

    /// Submits a single-RHS INV solve.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_solve_inv(
        &self,
        op: OperatorHandle,
        b: Vec<f64>,
    ) -> Result<JobHandle, RuntimeError> {
        self.submit_solve_inv_for(TenantId::DEFAULT, op, b)
    }

    /// [`submit_solve_inv`](Self::submit_solve_inv) attributed to an
    /// explicit tenant.
    ///
    /// # Errors
    ///
    /// As [`submit_solve_inv`](Self::submit_solve_inv), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota.
    pub fn submit_solve_inv_for(
        &self,
        tenant: TenantId,
        op: OperatorHandle,
        b: Vec<f64>,
    ) -> Result<JobHandle, RuntimeError> {
        self.admit()?;
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        Self::check_finite(&b)?;
        let entry = self.tenants.entry(tenant);
        self.admit_tenant(&entry)?;
        let request = self.mint_request();
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::SolveInv { handle: op, b },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, tenant, 1)],
        );
        Ok(jh)
    }

    /// Submits a multi-RHS INV solve (`MacroGroup::solve_inv_batch`): all
    /// right-hand sides share one conductance read and one factorization.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_solve_inv_batch(
        &self,
        op: OperatorHandle,
        bs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.submit_solve_inv_batch_for(TenantId::DEFAULT, op, bs)
    }

    /// [`submit_solve_inv_batch`](Self::submit_solve_inv_batch) attributed
    /// to an explicit tenant.
    ///
    /// # Errors
    ///
    /// As [`submit_solve_inv_batch`](Self::submit_solve_inv_batch), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota.
    pub fn submit_solve_inv_batch_for(
        &self,
        tenant: TenantId,
        op: OperatorHandle,
        bs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.admit()?;
        let shard = self.registry.lock().expect("registry lock").shard_of(op)?;
        for b in &bs {
            Self::check_finite(b)?;
        }
        let entry = self.tenants.entry(tenant);
        self.admit_tenant(&entry)?;
        let request = self.mint_request();
        let rows = bs.len().max(1) as u64;
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::SolveInvBatch { handle: op, bs },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, tenant, rows)],
        );
        Ok(jh)
    }

    /// Submits a multi-RHS PINV (least-squares) solve
    /// (`MacroGroup::solve_pinv_batch`): all right-hand sides share one
    /// conductance read and one MNA factorization.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] for dead handles;
    /// [`CoreError::ShapeMismatch`](gramc_core::CoreError) when a
    /// right-hand side's length is not the operator's row count;
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_solve_pinv_batch(
        &self,
        op: OperatorHandle,
        bs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.submit_solve_pinv_batch_for(TenantId::DEFAULT, op, bs)
    }

    /// [`submit_solve_pinv_batch`](Self::submit_solve_pinv_batch)
    /// attributed to an explicit tenant.
    ///
    /// # Errors
    ///
    /// As [`submit_solve_pinv_batch`](Self::submit_solve_pinv_batch), plus
    /// [`RuntimeError::QueueFull`] when `tenant` sits at its quota.
    pub fn submit_solve_pinv_batch_for(
        &self,
        tenant: TenantId,
        op: OperatorHandle,
        bs: Vec<Vec<f64>>,
    ) -> Result<JobHandle, RuntimeError> {
        self.admit()?;
        let (shard, rows) = self.registry.lock().expect("registry lock").shard_and_rows(op)?;
        for b in &bs {
            if b.len() != rows {
                return Err(CoreError::ShapeMismatch { expected: rows, found: b.len() }.into());
            }
            Self::check_finite(b)?;
        }
        let entry = self.tenants.entry(tenant);
        self.admit_tenant(&entry)?;
        let request = self.mint_request();
        let weight = bs.len().max(1) as u64;
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::SolvePinvBatch { handle: op, bs },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, tenant, weight)],
        );
        Ok(jh)
    }

    /// Queues the release of an operator. The handle is dead to further
    /// submissions immediately; a second free is rejected. A still-queued
    /// load is fine — the free enqueues behind it (fully pipelined
    /// load → work → free); if that load then fails, the free job reports
    /// [`RuntimeError::InvalidHandle`] (there was nothing to release).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DoubleFree`] if already freed or free-queued,
    /// [`RuntimeError::InvalidHandle`] for unknown handles,
    /// [`RuntimeError::QueueFull`] past the admission bound.
    pub fn submit_free(&self, op: OperatorHandle) -> Result<JobHandle, RuntimeError> {
        self.admit()?;
        let entry = self.tenants.entry(TenantId::DEFAULT);
        self.admit_tenant(&entry)?;
        let shard = match self.registry.lock().expect("registry lock").queue_free(op) {
            Ok(shard) => shard,
            Err(e) => {
                entry.release();
                return Err(e);
            }
        };
        let request = self.mint_request();
        let jh = JobHandle::new(request, entry);
        self.enqueue(
            shard,
            JobKind::Free { handle: op },
            vec![jh.slot.clone()],
            vec![RequestMeta::new(request, TenantId::DEFAULT, 1)],
        );
        Ok(jh)
    }

    // ── synchronous convenience front-end ─────────────────────────────
    //
    // Each of these submits, drains ALL outstanding work (not just its own
    // job — run_all has no way to retire one job selectively without
    // breaking per-shard program order), and waits.

    /// Loads a matrix and blocks until it is placed.
    ///
    /// # Errors
    ///
    /// Placement and mapping errors from the shard.
    pub fn load(
        &self,
        a: &Matrix,
        mapping: TileMapping,
        placement: Placement,
    ) -> Result<OperatorHandle, RuntimeError> {
        let (_, jh) = self.submit_load(a, mapping, placement)?;
        self.run_all();
        match jh.wait()? {
            JobOutput::Loaded(handle) => Ok(handle),
            _ => Err(RuntimeError::WrongOutput),
        }
    }

    /// Synchronous single MVM.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn mvm(&self, op: OperatorHandle, x: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let jh = self.submit_mvm(op, x.to_vec())?;
        self.run_all();
        jh.wait_vector()
    }

    /// Synchronous batch MVM.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn mvm_batch(
        &self,
        op: OperatorHandle,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let jh = self.submit_mvm_batch(op, xs.to_vec())?;
        self.run_all();
        jh.wait_vectors()
    }

    /// Synchronous single-RHS INV solve.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn solve_inv(&self, op: OperatorHandle, b: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let jh = self.submit_solve_inv(op, b.to_vec())?;
        self.run_all();
        jh.wait_vector()
    }

    /// Synchronous multi-RHS INV solve.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn solve_inv_batch(
        &self,
        op: OperatorHandle,
        bs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let jh = self.submit_solve_inv_batch(op, bs.to_vec())?;
        self.run_all();
        jh.wait_vectors()
    }

    /// Synchronous multi-RHS PINV (least-squares) solve.
    ///
    /// # Errors
    ///
    /// Handle and shard errors.
    pub fn solve_pinv_batch(
        &self,
        op: OperatorHandle,
        bs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let jh = self.submit_solve_pinv_batch(op, bs.to_vec())?;
        self.run_all();
        jh.wait_vectors()
    }

    /// Synchronous free.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DoubleFree`] / [`RuntimeError::InvalidHandle`].
    pub fn free(&self, op: OperatorHandle) -> Result<(), RuntimeError> {
        let jh = self.submit_free(op)?;
        self.run_all();
        jh.wait().map(|_| ())
    }

    // ── the drain loop ────────────────────────────────────────────────

    /// Drains every queue to empty. With the `parallel` feature one scoped
    /// worker per shard runs concurrently (idle workers steal from the back
    /// of peers' deques); without it the calling thread plays worker 0 and
    /// steals everything itself. Either way every shard retires its jobs in
    /// ticket order, so results are identical.
    ///
    /// Job failures are reported through their [`JobHandle`]s, not here —
    /// but a job that *panics* (as opposed to returning an error) retires
    /// its ticket, fills its handles with [`RuntimeError::JobPanicked`]
    /// (so waiters on other threads wake instead of hanging) and then
    /// propagates the panic out of `run_all`; the runtime must not be
    /// reused after that.
    pub fn run_all(&self) -> RunSummary {
        let executed_before: Vec<usize> =
            self.executed.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        let stolen_before = self.stolen.load(Ordering::SeqCst);
        let failed_before = self.failed_checks.load(Ordering::SeqCst);
        let degraded_before = self.degraded.load(Ordering::SeqCst);
        #[cfg(feature = "telemetry")]
        let hw_before = self.telemetry.kind_hw_total();
        self.drain();
        let per_worker: Vec<usize> = self
            .executed
            .iter()
            .zip(&executed_before)
            .map(|(c, b)| c.load(Ordering::SeqCst) - b)
            .collect();
        RunSummary {
            executed: per_worker.iter().sum(),
            stolen: self.stolen.load(Ordering::SeqCst) - stolen_before,
            per_worker,
            failed_checks: self.failed_checks.load(Ordering::SeqCst) - failed_before,
            degraded: self.degraded.load(Ordering::SeqCst) - degraded_before,
            events: std::mem::take(&mut *self.events.lock().expect("events lock")),
            #[cfg(feature = "telemetry")]
            hw: self.telemetry.kind_hw_total().since(&hw_before),
        }
    }

    // ── telemetry ─────────────────────────────────────────────────────

    /// A consistent cut of the serving metrics: lifecycle latency
    /// histograms, the queue-depth high-water mark, per-shard scheduler
    /// counters and per-job-kind hardware attribution. Cheap (atomic
    /// loads); callable at any time, including between drains.
    #[cfg(feature = "telemetry")]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(
            &self.telemetry,
            self.remaining.load(Ordering::SeqCst),
            &self.tenants.entries(),
        )
    }

    /// The telemetry sink, for in-crate observers (the SLO monitor).
    #[cfg(feature = "telemetry")]
    pub(crate) fn rt_telemetry(&self) -> &RtTelemetry {
        &self.telemetry
    }

    /// Total hardware counters summed across every shard's macro group.
    /// Unlike the per-kind attribution in
    /// [`metrics_snapshot`](Self::metrics_snapshot), this includes work
    /// driven through [`shard_group`](Self::shard_group) directly. Briefly
    /// locks each
    /// group in turn — do not call while holding a shard group guard.
    #[cfg(feature = "telemetry")]
    pub fn hw_snapshot(&self) -> HwSnapshot {
        let mut total = HwSnapshot::default();
        for s in &self.shards {
            total += &s.group.lock().expect("shard lock").hw_snapshot();
        }
        total
    }

    /// The event journal (job spans, coalesce/submit instants, health
    /// events) exported in chrome://tracing trace-event JSON.
    #[cfg(feature = "telemetry")]
    pub fn journal_chrome_trace(&self) -> String {
        self.telemetry.journal.to_chrome_trace()
    }

    #[cfg(feature = "parallel")]
    fn drain(&self) {
        let workers = self.queues.len();
        if workers <= 1 {
            self.worker_loop(0);
            return;
        }
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || self.worker_loop(w));
            }
        });
    }

    #[cfg(not(feature = "parallel"))]
    fn drain(&self) {
        // Single-threaded fallback: worker 0 pops its own queue and
        // "steals" every other queue dry, honoring the same tickets.
        self.worker_loop(0);
    }

    fn worker_loop(&self, w: usize) {
        let mut idle = 0u32;
        while self.remaining.load(Ordering::SeqCst) > 0 {
            let advanced = match self.grab_job(w) {
                Some(job) => self.try_execute(w, job),
                None => false,
            };
            if advanced {
                idle = 0;
            } else {
                // Nothing runnable right now (peers hold the due tickets):
                // yield briefly, then back off to a micro-sleep.
                idle += 1;
                if idle < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    // ── persistent serving ────────────────────────────────────────────

    /// Jobs retired so far across all workers (lifetime total).
    pub(crate) fn executed_total(&self) -> usize {
        self.executed.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }

    /// Marks the runtime as served by persistent workers (submissions start
    /// notifying the park condvar) and clears any previous shutdown flag.
    /// Called by [`RuntimeServer::start`](crate::RuntimeServer::start).
    pub(crate) fn begin_serving(&self) {
        self.serve.shutdown.store(false, Ordering::SeqCst);
        self.serve.active.store(true, Ordering::SeqCst);
    }

    /// Raises the shutdown flag and wakes every parked worker. Workers
    /// finish draining the queues before exiting, so in-flight jobs still
    /// complete (graceful shutdown).
    pub(crate) fn signal_shutdown(&self) {
        self.serve.shutdown.store(true, Ordering::SeqCst);
        drop(self.serve.park.lock().expect("serve lock"));
        self.serve.wake.notify_all();
    }

    /// Marks serving over (submissions stop notifying the condvar). Called
    /// after every serving worker has joined.
    pub(crate) fn end_serving(&self) {
        self.serve.active.store(false, Ordering::SeqCst);
    }

    /// Body of one persistent serving worker: [`worker_loop`](Self::worker_loop)
    /// that parks on the serve condvar instead of returning when the queues
    /// run dry, and exits only once shutdown is signalled **and** every
    /// queued job has retired.
    pub(crate) fn serve_loop(&self, w: usize) {
        let mut idle = 0u32;
        loop {
            if self.remaining.load(Ordering::SeqCst) == 0 {
                if self.serve.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = self.serve.park.lock().expect("serve lock");
                // Re-check under the park mutex: a submission between the
                // outer check and the wait notifies while holding this
                // mutex, so it cannot slip by unseen. The timeout is pure
                // belt-and-braces — a missed edge costs one period, not a
                // hang.
                if self.remaining.load(Ordering::SeqCst) == 0
                    && !self.serve.shutdown.load(Ordering::SeqCst)
                {
                    let _ = self.serve.wake.wait_timeout(guard, Duration::from_millis(50));
                }
                idle = 0;
                continue;
            }
            let advanced = match self.grab_job(w) {
                Some(job) => self.try_execute(w, job),
                None => false,
            };
            if advanced {
                idle = 0;
            } else {
                idle += 1;
                if idle < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Whether the job's shard has retired every earlier ticket, i.e. the
    /// job may execute right now.
    fn is_due(&self, job: &Job) -> bool {
        self.shards[job.shard].exec_ticket.load(Ordering::SeqCst) == job.ticket
    }

    /// Own deque front first; otherwise steal from a peer's deque, taking
    /// the job **closest to its back whose ticket is due**. Stealing only
    /// runnable jobs is what keeps a lone worker (the single-threaded
    /// fallback, or the last awake worker) from spinning on a stolen job
    /// whose predecessors it itself still has to run.
    fn grab_job(&self, w: usize) -> Option<Job> {
        if let Some(job) = self.queues[w].lock().expect("queue lock").pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for d in 1..n {
            let peer = (w + d) % n;
            let mut queue = self.queues[peer].lock().expect("queue lock");
            if let Some(idx) = queue.iter().rposition(|job| self.is_due(job)) {
                let job = queue.remove(idx).expect("index from rposition");
                self.stolen.fetch_add(1, Ordering::SeqCst);
                #[cfg(feature = "telemetry")]
                self.telemetry.per_shard[job.shard].steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs the job if its shard's program order allows it; otherwise puts
    /// it back on this worker's deque (only a job whose predecessor is
    /// mid-execution on another worker lands here, so the wait is
    /// bounded). Workers never block holding a job, which is what keeps
    /// stealing deadlock-free.
    fn try_execute(&self, w: usize, mut job: Job) -> bool {
        let shard = &self.shards[job.shard];
        if !self.is_due(&job) {
            self.queues[w].lock().expect("queue lock").push_back(job);
            return false;
        }
        // A panicking job must still retire its ticket and decrement
        // `remaining`, or the surviving workers would spin on the stuck
        // shard forever while `std::thread::scope` waits for them. Its
        // slots are filled with `JobPanicked` so waiters on other threads
        // wake with an error instead of hanging; the panic itself is
        // re-raised below and propagates out of `run_all`. (A coalesced
        // dispatch hydrates its riders' slots into the job before
        // executing, so the panic fill covers them too.)
        //
        // `kind_ix` is taken *before* hydration turns an `MvmMany` into an
        // `MvmSet`, so coalesced batches keep attributing as `mvm_many`.
        #[cfg(feature = "telemetry")]
        let (dispatched, span_start, kind_ix) =
            (std::time::Instant::now(), self.telemetry.journal.now_ns(), kind_index(&job.kind));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut group = shard.group.lock().expect("shard lock");
            // Snapshot-diff under the shard lock: no other job of this
            // shard can interleave, so the delta is exactly this job's.
            #[cfg(feature = "telemetry")]
            {
                let hw_before = group.hw_snapshot();
                let verdict = self.run_kind(&mut group, &mut job);
                (verdict, group.hw_snapshot().since(&hw_before))
            }
            #[cfg(not(feature = "telemetry"))]
            {
                self.run_kind(&mut group, &mut job)
            }
        }));
        shard.exec_ticket.store(job.ticket + 1, Ordering::SeqCst);
        self.executed[w].fetch_add(1, Ordering::SeqCst);
        // Aggregation happens outside the shard lock (only the snapshot
        // diff needs it): global per-kind counters first, then the
        // tenant split — each rider's share proportional to its row
        // weight, remainder-exact, so the tenant totals always sum to the
        // per-kind totals bit-for-bit.
        #[cfg(feature = "telemetry")]
        let run = run.map(|(verdict, delta)| {
            self.telemetry.record_job(kind_ix, &delta);
            if !job.meta.is_empty() {
                let weights: Vec<u64> = job.meta.iter().map(|m| m.rows).collect();
                let shares = split_hw(&delta, &weights);
                for (m, share) in job.meta.iter().zip(&shares) {
                    self.tenants.entry(m.tenant).hw.add_snapshot(share);
                }
            }
            verdict
        });
        #[cfg(feature = "telemetry")]
        {
            let completed = std::time::Instant::now();
            let exec_ns = completed.duration_since(dispatched).as_nanos() as u64;
            let t = &self.telemetry;
            t.submit_to_dispatch
                .record_ns(dispatched.duration_since(job.submitted).as_nanos() as u64);
            t.dispatch_to_complete.record_ns(exec_ns);
            t.submit_to_complete
                .record_ns(completed.duration_since(job.submitted).as_nanos() as u64);
            t.per_shard[job.shard].busy_ns.fetch_add(exec_ns, Ordering::Relaxed);
            let exec_dur = exec_ns.max(1);
            let end_ns = span_start + exec_dur;
            // Per-tenant latency: one record per riding request, per
            // dispatch (a re-dispatched job restarts the clock, matching
            // the global serving histograms).
            for m in &job.meta {
                self.tenants.entry(m.tenant).latency.record_ns(end_ns.saturating_sub(m.submit_ns));
            }
            // The submit→complete breakdown as two abutting duration spans:
            // the queue wait on the job's shard lane, the execution on the
            // executing worker's lane. The queued span doubles as the lead
            // request's flow *start*; riders of a hydrated coalesced batch
            // get their own queue-wait span (their wait began at their own
            // submission) starting their own flow.
            let lead_flow = job.meta.first().map_or(0, |m| m.request.0);
            t.journal.record(JournalEvent {
                name: kind_queued_name(kind_ix),
                category: "runtime",
                ts_ns: job.submit_ns,
                dur_ns: span_start.saturating_sub(job.submit_ns).max(1),
                arg_a: job.shard as u64,
                arg_b: job.ticket,
                flow: if lead_flow == 0 { FlowPhase::None } else { FlowPhase::Start },
                flow_id: lead_flow,
            });
            for m in job.meta.iter().skip(1) {
                t.journal.record(JournalEvent {
                    name: "queued:rider",
                    category: "runtime",
                    ts_ns: m.submit_ns,
                    dur_ns: span_start.saturating_sub(m.submit_ns).max(1),
                    arg_a: job.shard as u64,
                    arg_b: job.ticket,
                    flow: FlowPhase::Start,
                    flow_id: m.request.0,
                });
            }
            // The execution span, recorded explicitly so each request's
            // flow *end* can land at its midpoint — that is how chrome
            // (and `trace_analyze`) bind the arrows to this slice.
            t.journal.record(JournalEvent {
                name: kind_span_name(kind_ix),
                category: "runtime",
                ts_ns: span_start,
                dur_ns: exec_dur,
                arg_a: WORKER_LANE_BASE + w as u64,
                arg_b: job.ticket,
                ..JournalEvent::default()
            });
            for m in &job.meta {
                t.journal.record(JournalEvent {
                    name: "req",
                    category: "flow",
                    ts_ns: span_start + exec_dur / 2,
                    dur_ns: 0,
                    arg_a: WORKER_LANE_BASE + w as u64,
                    arg_b: m.rows,
                    flow: FlowPhase::End,
                    flow_id: m.request.0,
                });
            }
        }
        // Recovery runs here, after the group lock is released — healing
        // locks other shards' groups and must never do so while holding
        // one. `remaining` is decremented for the original job LAST, after
        // any re-dispatch has incremented it, so a lone re-enqueued job
        // can never make `remaining` touch zero and end the drain early.
        match run {
            Ok(Verdict::Done) => {}
            Ok(Verdict::Requeue { to, kind, slots, meta }) => {
                #[cfg(feature = "telemetry")]
                self.telemetry.per_shard[job.shard].requeues.fetch_add(1, Ordering::Relaxed);
                self.enqueue_job(to, kind, slots, meta, job.retries);
            }
            Ok(Verdict::Failed { kind, slots, meta }) => {
                self.handle_failure(job.shard, job.retries, kind, slots, meta);
            }
            Ok(Verdict::ShardSuspect) => {
                self.note_failure(job.shard);
            }
            Err(payload) => {
                self.remaining.fetch_sub(1, Ordering::SeqCst);
                for slot in &job.slots {
                    slot.fill(Err(RuntimeError::JobPanicked));
                }
                std::panic::resume_unwind(payload);
            }
        }
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Executes the job body against its shard's group, fills its slots,
    /// and reports what the recovery path (running later, outside the
    /// group lock) must do. The registry lock is only ever taken *inside*
    /// (leaf lock).
    ///
    /// An `MvmMany` dispatch is **hydrated** first: the operator's pending
    /// batch (inputs, result slots, request metadata) drains into the job
    /// and the kind becomes `MvmSet` — so by the time anything can fail or
    /// panic, the riders' slots are the job's slots and every completion
    /// path in [`try_execute`](Self::try_execute) covers them.
    fn run_kind(&self, group: &mut MacroGroup, job: &mut Job) -> Verdict {
        if let JobKind::MvmMany { handle } = &job.kind {
            let handle = *handle;
            // Drain whatever the batch accumulated between its opening
            // submission and now (nothing, if a redundant dispatch raced).
            let Some(batch) = self.pending_mvm.lock().expect("pending lock").remove(&handle) else {
                return Verdict::Done;
            };
            job.kind = JobKind::MvmSet { handle, xs: batch.xs };
            job.slots = batch.slots;
            job.meta = batch.meta;
        }
        // One registry lookup decides where a compute job actually runs.
        // A job whose operator is still homed on a *quarantined* shard hit
        // the migration window: bounce it (a requeue that burns no retry)
        // until the healer has relocated or demoted the operator, instead
        // of wasting analog dispatches — and the job's retries — on arrays
        // already known to be bad.
        let route = |op: OperatorHandle| -> Route {
            let reg = self.registry.lock().expect("registry lock");
            match reg.exec_target(op) {
                Err(e) => Route::Fail(e),
                Ok(ExecTarget::Digital(m)) => Route::Digital(m),
                Ok(ExecTarget::Analog { shard, id }) => {
                    if shard == job.shard && !reg.is_quarantined(shard) {
                        Route::Run(id)
                    } else {
                        Route::Requeue(shard)
                    }
                }
            }
        };
        match &job.kind {
            JobKind::MvmMany { .. } => {
                unreachable!("hydrated into MvmSet above")
            }
            JobKind::MvmSet { handle, xs } => match route(*handle) {
                Route::Fail(e) => {
                    for slot in &job.slots {
                        slot.fill(Err(e.clone()));
                    }
                    Verdict::Done
                }
                Route::Digital(m) => {
                    for (slot, x) in job.slots.iter().zip(xs) {
                        slot.fill(Ok(JobOutput::Vector(m.matvec(x))));
                    }
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    Verdict::Done
                }
                Route::Requeue(to) => Verdict::Requeue {
                    to,
                    kind: job.kind.clone(),
                    slots: job.slots.clone(),
                    meta: job.meta.clone(),
                },
                Route::Run(id) => match group.mvm_batch(id, xs) {
                    Ok(ys) => {
                        if !self.mvm_residuals_ok(group, id, xs, &ys) {
                            return Verdict::Failed {
                                kind: job.kind.clone(),
                                slots: job.slots.clone(),
                                meta: job.meta.clone(),
                            };
                        }
                        for (slot, y) in job.slots.iter().zip(ys) {
                            slot.fill(Ok(JobOutput::Vector(y)));
                        }
                        Verdict::Done
                    }
                    Err(e) => {
                        for slot in &job.slots {
                            slot.fill(Err(RuntimeError::from(e.clone())));
                        }
                        Verdict::Done
                    }
                },
            },
            JobKind::MvmBatch { handle, xs } => match route(*handle) {
                Route::Fail(e) => {
                    job.slots[0].fill(Err(e));
                    Verdict::Done
                }
                Route::Digital(m) => {
                    let ys = xs.iter().map(|x| m.matvec(x)).collect();
                    job.slots[0].fill(Ok(JobOutput::Vectors(ys)));
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    Verdict::Done
                }
                Route::Requeue(to) => Verdict::Requeue {
                    to,
                    kind: job.kind.clone(),
                    slots: job.slots.clone(),
                    meta: job.meta.clone(),
                },
                Route::Run(id) => match group.mvm_batch(id, xs) {
                    Ok(ys) => {
                        if !self.mvm_residuals_ok(group, id, xs, &ys) {
                            return Verdict::Failed {
                                kind: job.kind.clone(),
                                slots: job.slots.clone(),
                                meta: job.meta.clone(),
                            };
                        }
                        job.slots[0].fill(Ok(JobOutput::Vectors(ys)));
                        Verdict::Done
                    }
                    Err(e) => {
                        job.slots[0].fill(Err(e.into()));
                        Verdict::Done
                    }
                },
            },
            JobKind::SolveInv { handle, b } => match route(*handle) {
                Route::Fail(e) => {
                    job.slots[0].fill(Err(e));
                    Verdict::Done
                }
                Route::Digital(m) => {
                    job.slots[0].fill(Self::digital_solve(&m, b).map(JobOutput::Vector));
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    Verdict::Done
                }
                Route::Requeue(to) => Verdict::Requeue {
                    to,
                    kind: job.kind.clone(),
                    slots: job.slots.clone(),
                    meta: job.meta.clone(),
                },
                Route::Run(id) => match group.solve_inv(id, b) {
                    Ok(x) => {
                        if !self.solve_residuals_ok(
                            group,
                            id,
                            std::slice::from_ref(b),
                            std::slice::from_ref(&x),
                        ) {
                            return Verdict::Failed {
                                kind: job.kind.clone(),
                                slots: job.slots.clone(),
                                meta: job.meta.clone(),
                            };
                        }
                        job.slots[0].fill(Ok(JobOutput::Vector(x)));
                        Verdict::Done
                    }
                    Err(e) => {
                        job.slots[0].fill(Err(e.into()));
                        Verdict::Done
                    }
                },
            },
            JobKind::SolveInvBatch { handle, bs } => match route(*handle) {
                Route::Fail(e) => {
                    job.slots[0].fill(Err(e));
                    Verdict::Done
                }
                Route::Digital(m) => {
                    let xs: Result<Vec<_>, _> =
                        bs.iter().map(|b| Self::digital_solve(&m, b)).collect();
                    job.slots[0].fill(xs.map(JobOutput::Vectors));
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    Verdict::Done
                }
                Route::Requeue(to) => Verdict::Requeue {
                    to,
                    kind: job.kind.clone(),
                    slots: job.slots.clone(),
                    meta: job.meta.clone(),
                },
                Route::Run(id) => match group.solve_inv_batch(id, bs) {
                    Ok(xs) => {
                        if !self.solve_residuals_ok(group, id, bs, &xs) {
                            return Verdict::Failed {
                                kind: job.kind.clone(),
                                slots: job.slots.clone(),
                                meta: job.meta.clone(),
                            };
                        }
                        job.slots[0].fill(Ok(JobOutput::Vectors(xs)));
                        Verdict::Done
                    }
                    Err(e) => {
                        job.slots[0].fill(Err(e.into()));
                        Verdict::Done
                    }
                },
            },
            JobKind::SolvePinvBatch { handle, bs } => match route(*handle) {
                Route::Fail(e) => {
                    job.slots[0].fill(Err(e));
                    Verdict::Done
                }
                Route::Digital(m) => {
                    let xs: Result<Vec<_>, _> =
                        bs.iter().map(|b| Self::digital_least_squares(&m, b)).collect();
                    job.slots[0].fill(xs.map(JobOutput::Vectors));
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    Verdict::Done
                }
                Route::Requeue(to) => Verdict::Requeue {
                    to,
                    kind: job.kind.clone(),
                    slots: job.slots.clone(),
                    meta: job.meta.clone(),
                },
                Route::Run(id) => match group.solve_pinv_batch(id, bs) {
                    Ok(xs) => {
                        if !self.pinv_residuals_ok(group, id, bs, &xs) {
                            return Verdict::Failed {
                                kind: job.kind.clone(),
                                slots: job.slots.clone(),
                                meta: job.meta.clone(),
                            };
                        }
                        job.slots[0].fill(Ok(JobOutput::Vectors(xs)));
                        Verdict::Done
                    }
                    Err(e) => {
                        job.slots[0].fill(Err(e.into()));
                        Verdict::Done
                    }
                },
            },
            JobKind::Load { handle, matrix, mapping } => {
                self.run_load(group, job, *handle, matrix, *mapping)
            }
            JobKind::Free { handle } => {
                let target =
                    self.registry.lock().expect("registry lock").retire_on(*handle, job.shard);
                match target {
                    Ok(FreeTarget::Local(Some(id))) => {
                        let result = group.free_operator(id).map_err(RuntimeError::from);
                        job.slots[0].fill(result.map(|()| JobOutput::Freed));
                        Verdict::Done
                    }
                    Ok(FreeTarget::Local(None)) => {
                        job.slots[0].fill(Ok(JobOutput::Freed));
                        Verdict::Done
                    }
                    Ok(FreeTarget::Moved(to)) => Verdict::Requeue {
                        to,
                        kind: job.kind.clone(),
                        slots: job.slots.clone(),
                        meta: job.meta.clone(),
                    },
                    Err(e) => {
                        job.slots[0].fill(Err(e));
                        Verdict::Done
                    }
                }
            }
        }
    }

    /// The `Load` arm: places the matrix on the job's shard, enforcing the
    /// health policy's write-verify threshold with bounded reprogram
    /// retries; a quarantined shard fulfils the load on the digital
    /// fallback path instead.
    fn run_load(
        &self,
        group: &mut MacroGroup,
        job: &Job,
        handle: OperatorHandle,
        matrix: &Matrix,
        mapping: TileMapping,
    ) -> Verdict {
        if self.registry.lock().expect("registry lock").is_quarantined(job.shard) {
            self.registry.lock().expect("registry lock").fulfill_digital(handle);
            self.degraded.fetch_add(1, Ordering::SeqCst);
            self.push_event(HealthEvent::OperatorDegraded { op: handle, shard: job.shard });
            job.slots[0].fill(Ok(JobOutput::Loaded(handle)));
            return Verdict::Done;
        }
        let mut attempt = 0;
        loop {
            let loaded = match mapping {
                TileMapping::FourBit => group.load_matrix(matrix),
                TileMapping::BitSlicedInt8 => group.load_matrix_bitsliced(matrix),
            };
            match loaded {
                Ok(id) => {
                    let program = group.operator_info(id).expect("just loaded").program;
                    if program.failure_frac() <= self.health_cfg.max_load_failure_frac {
                        self.registry.lock().expect("registry lock").fulfill(handle, id);
                        job.slots[0].fill(Ok(JobOutput::Loaded(handle)));
                        return Verdict::Done;
                    }
                    // Over threshold: release the botched planes and either
                    // reprogram (fresh pulse noise) or give up with a typed
                    // error, flagging the shard to the health monitor.
                    group.free_operator(id).expect("freeing the operator just loaded");
                    attempt += 1;
                    if attempt > self.health_cfg.max_retries {
                        self.registry.lock().expect("registry lock").abandon(handle);
                        self.push_event(HealthEvent::LoadFailedVerify {
                            shard: job.shard,
                            failed_cells: program.failures,
                            total_cells: program.cells,
                        });
                        job.slots[0].fill(Err(RuntimeError::ProgramVerifyFailed {
                            failed_cells: program.failures,
                            total_cells: program.cells,
                        }));
                        return Verdict::ShardSuspect;
                    }
                }
                Err(e) => {
                    self.registry.lock().expect("registry lock").abandon(handle);
                    job.slots[0].fill(Err(e.into()));
                    return Verdict::Done;
                }
            }
        }
    }

    // ── health monitoring and recovery ────────────────────────────────

    /// Whether every result of an MVM dispatch sits within the residual
    /// tolerance of the operator's quantized target (always true with
    /// checks disabled).
    fn mvm_residuals_ok(
        &self,
        group: &MacroGroup,
        id: gramc_core::OperatorId,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
    ) -> bool {
        let Some(tol) = self.health_cfg.residual_tolerance else {
            return true;
        };
        let Ok(info) = group.operator_info(id) else {
            return true;
        };
        xs.iter().zip(ys).all(|(x, y)| {
            let y_ref = info.quantized.matvec(x);
            vector::rel_error(y, &y_ref) <= tol
        })
    }

    /// Whether every solve satisfies `‖A·x − b‖/‖b‖ ≤ tol` against the
    /// quantized operator (always true with checks disabled).
    fn solve_residuals_ok(
        &self,
        group: &MacroGroup,
        id: gramc_core::OperatorId,
        bs: &[Vec<f64>],
        xs: &[Vec<f64>],
    ) -> bool {
        let Some(tol) = self.health_cfg.residual_tolerance else {
            return true;
        };
        let Ok(info) = group.operator_info(id) else {
            return true;
        };
        bs.iter().zip(xs).all(|(b, x)| {
            let ax = info.quantized.matvec(x);
            vector::rel_error(&ax, b) <= tol
        })
    }

    /// Whether every PINV solution sits within the residual tolerance of
    /// the digital least-squares answer on the quantized operator (always
    /// true with checks disabled). `‖A·x − b‖` is not small for an
    /// overdetermined system, so unlike [`solve_residuals_ok`]
    /// (Self::solve_residuals_ok) the check compares solutions, not
    /// residual norms.
    fn pinv_residuals_ok(
        &self,
        group: &MacroGroup,
        id: gramc_core::OperatorId,
        bs: &[Vec<f64>],
        xs: &[Vec<f64>],
    ) -> bool {
        let Some(tol) = self.health_cfg.residual_tolerance else {
            return true;
        };
        let Ok(info) = group.operator_info(id) else {
            return true;
        };
        bs.iter().zip(xs).all(|(b, x)| match qr::least_squares(&info.quantized, b) {
            Ok(x_ref) => vector::rel_error(x, &x_ref) <= tol,
            // A rank-deficient reference cannot arbitrate — pass the check.
            Err(_) => true,
        })
    }

    /// Digital-reference solve on the registry's kept matrix.
    fn digital_solve(matrix: &Matrix, b: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        lu::solve(matrix, b).map_err(|e| RuntimeError::from(CoreError::from(e)))
    }

    /// Digital-reference least squares (the PINV fallback path).
    fn digital_least_squares(matrix: &Matrix, b: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        qr::least_squares(matrix, b).map_err(|e| RuntimeError::from(CoreError::from(e)))
    }

    fn push_event(&self, event: HealthEvent) {
        #[cfg(feature = "telemetry")]
        {
            let (name, a, b) = match &event {
                HealthEvent::ShardQuarantined { shard, failures } => {
                    ("shard_quarantined", *shard as u64, u64::from(*failures))
                }
                HealthEvent::OperatorMigrated { from, to, .. } => {
                    ("operator_migrated", *from as u64, *to as u64)
                }
                HealthEvent::OperatorDegraded { shard, .. } => {
                    ("operator_degraded", *shard as u64, 0)
                }
                HealthEvent::LoadFailedVerify { shard, failed_cells, .. } => {
                    ("load_failed_verify", *shard as u64, *failed_cells as u64)
                }
            };
            self.telemetry.journal.instant(name, "health", a, b);
        }
        self.events.lock().expect("events lock").push(event);
    }

    /// Records one failed check against `shard` and quarantines it (with
    /// migration) once the failure count crosses the policy threshold.
    /// Must not be called while holding any shard's group lock.
    fn note_failure(&self, shard: usize) {
        let failures = self.health[shard].failures.fetch_add(1, Ordering::SeqCst) + 1;
        self.failed_checks.fetch_add(1, Ordering::SeqCst);
        if failures >= self.health_cfg.quarantine_after {
            self.heal_shard(shard, failures);
        }
    }

    /// Recovery for a job whose result failed its residual check: count
    /// the failure (possibly quarantining the shard), then re-dispatch the
    /// job to its operator's current home — or, out of retries, answer it
    /// from the digital reference path. Called outside all group locks.
    fn handle_failure(
        &self,
        shard: usize,
        retries: u32,
        kind: JobKind,
        slots: Vec<Arc<Slot>>,
        meta: Vec<RequestMeta>,
    ) {
        self.note_failure(shard);
        let Some(op) = kind.operator() else {
            unreachable!("only compute jobs fail residual checks");
        };
        if retries < self.health_cfg.max_retries {
            match self.registry.lock().expect("registry lock").exec_target(op) {
                Ok(ExecTarget::Analog { shard: home, .. }) => {
                    #[cfg(feature = "telemetry")]
                    self.telemetry.per_shard[shard].retries.fetch_add(1, Ordering::Relaxed);
                    self.enqueue_job(home, kind, slots, meta, retries + 1);
                    return;
                }
                Ok(ExecTarget::Digital(_)) => {} // fall through to digital
                Err(e) => {
                    for slot in &slots {
                        slot.fill(Err(e.clone()));
                    }
                    return;
                }
            }
        }
        // Out of retries (or the operator was degraded meanwhile): answer
        // digitally from the registry's matrix so the caller still gets a
        // result, and record the degradation.
        let matrix = match self.registry.lock().expect("registry lock").matrix_and_mapping(op) {
            Ok((m, _)) => m,
            Err(e) => {
                for slot in &slots {
                    slot.fill(Err(e.clone()));
                }
                return;
            }
        };
        self.degraded.fetch_add(1, Ordering::SeqCst);
        self.push_event(HealthEvent::OperatorDegraded { op, shard });
        match kind {
            JobKind::MvmSet { xs, .. } => {
                for (slot, x) in slots.iter().zip(&xs) {
                    slot.fill(Ok(JobOutput::Vector(matrix.matvec(x))));
                }
            }
            JobKind::MvmBatch { xs, .. } => {
                let ys = xs.iter().map(|x| matrix.matvec(x)).collect();
                slots[0].fill(Ok(JobOutput::Vectors(ys)));
            }
            JobKind::SolveInv { b, .. } => {
                slots[0].fill(Self::digital_solve(&matrix, &b).map(JobOutput::Vector));
            }
            JobKind::SolveInvBatch { bs, .. } => {
                let xs: Result<Vec<_>, _> =
                    bs.iter().map(|b| Self::digital_solve(&matrix, b)).collect();
                slots[0].fill(xs.map(JobOutput::Vectors));
            }
            JobKind::SolvePinvBatch { bs, .. } => {
                let xs: Result<Vec<_>, _> =
                    bs.iter().map(|b| Self::digital_least_squares(&matrix, b)).collect();
                slots[0].fill(xs.map(JobOutput::Vectors));
            }
            JobKind::MvmMany { .. } | JobKind::Load { .. } | JobKind::Free { .. } => {
                unreachable!("these kinds never carry a Failed verdict")
            }
        }
    }

    /// Quarantines `sick` and migrates its analog operators to healthy
    /// shards (re-programming each matrix through the normal load path);
    /// with no healthy shard left, operators degrade to the digital
    /// fallback. Guarded so exactly one thread heals a given shard, and
    /// never called while holding a group lock — it locks one group at a
    /// time (target, then sick), with the registry only as a leaf.
    fn heal_shard(&self, sick: usize, failures: u32) {
        if self.health[sick].healing.swap(true, Ordering::SeqCst) {
            return;
        }
        let ops = {
            let mut reg = self.registry.lock().expect("registry lock");
            if !reg.quarantine(sick) {
                return;
            }
            reg.analog_ops_on(sick)
        };
        #[cfg(feature = "telemetry")]
        self.telemetry.per_shard[sick].quarantines.fetch_add(1, Ordering::Relaxed);
        self.push_event(HealthEvent::ShardQuarantined { shard: sick, failures });
        for (op, old_id) in ops {
            let Ok((matrix, mapping)) =
                self.registry.lock().expect("registry lock").matrix_and_mapping(op)
            else {
                continue;
            };
            let target = self.registry.lock().expect("registry lock").migration_target();
            let migrated = target.and_then(|to| {
                let mut group = self.shards[to].group.lock().expect("shard lock");
                let loaded = match mapping {
                    TileMapping::FourBit => group.load_matrix(&matrix),
                    TileMapping::BitSlicedInt8 => group.load_matrix_bitsliced(&matrix),
                };
                loaded.ok().map(|new_id| (to, new_id))
            });
            match migrated {
                Some((to, new_id)) => {
                    self.registry.lock().expect("registry lock").relocate(op, to, new_id);
                    self.push_event(HealthEvent::OperatorMigrated { op, from: sick, to });
                }
                None => {
                    self.registry.lock().expect("registry lock").demote_to_digital(op);
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                    self.push_event(HealthEvent::OperatorDegraded { op, shard: sick });
                }
            }
            // Either way the sick shard's planes are released — harmless
            // if the shard is truly broken, and it keeps the group's
            // capacity bookkeeping exact.
            let mut group = self.shards[sick].group.lock().expect("shard lock");
            let _ = group.free_operator(old_id);
        }
    }

    // ── health introspection and probing ──────────────────────────────

    /// Shards currently quarantined.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.registry.lock().expect("registry lock").quarantined_shards()
    }

    /// Failed health checks recorded against `shard` so far.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_failures(&self, shard: usize) -> u32 {
        self.health[shard].failures.load(Ordering::SeqCst)
    }

    /// Health-probes every analog operator on `shard`: reads its planes
    /// back through [`MacroGroup::health_probe`] and feeds the per-shard
    /// failure counters — a probe whose residual exceeds
    /// [`HealthConfig::probe_residual_tolerance`] counts as a failed
    /// check and can quarantine the shard (triggering migration) just
    /// like a failed job would.
    ///
    /// Call between drains, not while holding a shard group guard.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range; probe errors from the
    /// group.
    pub fn probe_shard(
        &self,
        shard: usize,
    ) -> Result<Vec<(OperatorHandle, ProbeReport)>, RuntimeError> {
        if shard >= self.shards.len() {
            return Err(RuntimeError::BadShard { shard, shards: self.shards.len() });
        }
        let ops = self.registry.lock().expect("registry lock").analog_ops_on(shard);
        let mut reports = Vec::with_capacity(ops.len());
        #[cfg(feature = "telemetry")]
        let probe_start = self.telemetry.journal.now_ns();
        {
            let group = self.shards[shard].group.lock().expect("shard lock");
            for (op, id) in ops {
                reports.push((op, group.health_probe(id, 0.5)?));
            }
        }
        #[cfg(feature = "telemetry")]
        self.telemetry.journal.span(
            "probe",
            "health",
            probe_start,
            shard as u64,
            reports.len() as u64,
        );
        for (_, report) in &reports {
            if report.residual > self.health_cfg.probe_residual_tolerance {
                self.note_failure(shard);
            } else {
                self.health[shard].successes.fetch_add(1, Ordering::SeqCst);
            }
        }
        Ok(reports)
    }

    /// [`probe_shard`](Self::probe_shard) across every shard; returns the
    /// probe reports flattened in shard order.
    ///
    /// # Errors
    ///
    /// First probe error encountered.
    pub fn probe_all(&self) -> Result<Vec<(OperatorHandle, ProbeReport)>, RuntimeError> {
        let mut all = Vec::new();
        for shard in 0..self.shards.len() {
            all.extend(self.probe_shard(shard)?);
        }
        Ok(all)
    }
}

/// Fault-injection controls (the `fault-inject` feature): deterministic
/// device-fault campaigns against individual shards, driving the recovery
/// machinery in tests, benches and the serving example.
#[cfg(feature = "fault-inject")]
impl Runtime {
    /// Samples and installs a seeded fault plan on every macro of `shard`
    /// (see [`MacroGroup::inject_faults`]). An all-zero `config` leaves the
    /// shard's behavior bit-identical.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range.
    pub fn inject_shard_faults(
        &self,
        shard: usize,
        config: &FaultConfig,
        seed: u64,
    ) -> Result<(), RuntimeError> {
        self.shard_group(shard)?.inject_faults(config, seed);
        Ok(())
    }

    /// Advances `shard`'s fault clock by `dt` seconds (conductance drift).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range.
    pub fn advance_shard_fault_time(&self, shard: usize, dt: f64) -> Result<(), RuntimeError> {
        self.shard_group(shard)?.advance_fault_time(dt);
        Ok(())
    }

    /// Clears all fault plans on `shard`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadShard`] if out of range.
    pub fn clear_shard_faults(&self, shard: usize) -> Result<(), RuntimeError> {
        self.shard_group(shard)?.clear_faults();
        Ok(())
    }
}

/// Parking/wake state shared between submitters and persistent serving
/// workers. The mutex guards nothing by itself — it exists so the condvar
/// handshake (worker re-checks `remaining` under it, submitter notifies
/// under it) has no lost-wakeup window.
#[derive(Debug, Default)]
struct ServeState {
    park: Mutex<()>,
    wake: Condvar,
    /// Raised by [`RuntimeServer::shutdown`](crate::RuntimeServer::shutdown):
    /// workers drain the queues, then exit instead of parking.
    shutdown: AtomicBool,
    /// Whether persistent workers are attached (submitters only notify the
    /// condvar while they are — `run_all` callers skip the overhead).
    active: AtomicBool,
}

/// Where one compute job actually runs, resolved against the registry at
/// execution time (operators move under recovery).
#[derive(Debug)]
enum Route {
    /// The handle is dead or was abandoned — fail the waiters.
    Fail(RuntimeError),
    /// The operator lives on the digital fallback path.
    Digital(Arc<Matrix>),
    /// The operator is analog but not runnable here (homed elsewhere, or
    /// its shard is mid-migration) — requeue toward its current home.
    Requeue(usize),
    /// Runnable on this worker's group under this id.
    Run(gramc_core::OperatorId),
}

/// What the recovery path must do after a job body ran (decided inside the
/// group lock, acted on outside it).
#[derive(Debug)]
enum Verdict {
    /// Slots filled; nothing to do.
    Done,
    /// The operator lives elsewhere now — re-enqueue the job there with
    /// the same retry count (attribution metadata rides along).
    Requeue { to: usize, kind: JobKind, slots: Vec<Arc<Slot>>, meta: Vec<RequestMeta> },
    /// The result failed its residual check — slots are unfilled; retry or
    /// degrade per policy (attribution metadata rides along).
    Failed { kind: JobKind, slots: Vec<Arc<Slot>>, meta: Vec<RequestMeta> },
    /// Slots filled (with a typed error), but the shard should be flagged
    /// to the health monitor (a load that could not verify).
    ShardSuspect,
}
