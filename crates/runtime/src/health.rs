//! Health monitoring and recovery policy for the sharded runtime.
//!
//! Real crosspoint arrays fail — cells get stuck, conductances drift —
//! and a serving runtime has to keep answering. This module holds the
//! policy knobs ([`HealthConfig`]), the per-shard counters the runtime
//! feeds from job-level residual checks and [health
//! probes](crate::Runtime::probe_shard), and the [`HealthEvent`] record of
//! every recovery action, reported through
//! [`RunSummary::events`](crate::RunSummary::events).
//!
//! The recovery ladder (implemented in `runtime.rs`):
//!
//! 1. **Retry.** A job whose result misses the residual tolerance is
//!    re-dispatched to its operator's current shard, up to
//!    [`HealthConfig::max_retries`] times.
//! 2. **Quarantine + migrate.** A shard accumulating
//!    [`HealthConfig::quarantine_after`] failed checks is quarantined: its
//!    live operators are re-programmed onto the healthiest remaining shard
//!    (the registry's least-loaded placement metric) and queued jobs
//!    follow them.
//! 3. **Degrade.** With no healthy shard left — or a job out of retries —
//!    results come from the digital reference path (`matmul_reference` /
//!    LU) on the registry's kept copy of the operator matrix.

use std::sync::atomic::{AtomicBool, AtomicU32};

use crate::registry::OperatorHandle;

/// Tunables of the health monitor and recovery policy.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Relative residual above which a job's result counts as a failed
    /// check (MVMs against the operator's quantized target, solves via
    /// `‖A·x − b‖/‖b‖`). `None` (the default) disables per-job checks —
    /// and with them the retry/quarantine machinery on the job path —
    /// leaving results bit-identical to a runtime without health checks.
    pub residual_tolerance: Option<f64>,
    /// Failed checks on one shard before it is quarantined and its
    /// operators migrate.
    pub quarantine_after: u32,
    /// Re-dispatches of one failing job before it falls back to the
    /// digital reference path.
    pub max_retries: u32,
    /// Highest tolerated fraction of write-verify failures in a load's
    /// programming pass; above it the load is reprogrammed (up to
    /// [`max_retries`](Self::max_retries) times) and then fails with
    /// [`RuntimeError::ProgramVerifyFailed`](crate::RuntimeError).
    pub max_load_failure_frac: f64,
    /// Readback residual above which a [`probe_shard`](crate::Runtime::probe_shard)
    /// probe counts as a failed check.
    pub probe_residual_tolerance: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            residual_tolerance: None,
            quarantine_after: 3,
            max_retries: 2,
            max_load_failure_frac: 0.02,
            probe_residual_tolerance: 0.05,
        }
    }
}

/// One recovery action taken by the runtime, reported through
/// [`RunSummary::events`](crate::RunSummary::events).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HealthEvent {
    /// A shard crossed the failure threshold: no new placements land on
    /// it and its operators migrate.
    ShardQuarantined {
        /// The quarantined shard.
        shard: usize,
        /// Failed checks recorded when the quarantine triggered.
        failures: u32,
    },
    /// An operator was re-programmed onto a healthy shard.
    OperatorMigrated {
        /// The migrated operator.
        op: OperatorHandle,
        /// The quarantined shard it left.
        from: usize,
        /// The healthy shard now holding it.
        to: usize,
    },
    /// An operator fell back to the digital reference path — no healthy
    /// shard could hold it, or one of its jobs ran out of retries.
    OperatorDegraded {
        /// The degraded operator.
        op: OperatorHandle,
        /// The shard involved (its home, or the shard the failing job ran
        /// on).
        shard: usize,
    },
    /// A load's write-verify pass stayed above the failure threshold
    /// through every reprogram attempt.
    LoadFailedVerify {
        /// The shard that failed to program the operator.
        shard: usize,
        /// Unconverged cells on the final attempt.
        failed_cells: usize,
        /// Cells programmed per attempt.
        total_cells: usize,
    },
}

/// Per-shard health counters (all lock-free; the failure count is what
/// the quarantine threshold watches).
#[derive(Debug, Default)]
pub(crate) struct ShardHealth {
    /// Failed checks: residual misses, failed probes, failed loads.
    pub failures: AtomicU32,
    /// Passed checks (probes and checked jobs).
    pub successes: AtomicU32,
    /// One-shot guard so exactly one thread runs the quarantine/migration
    /// sequence for this shard.
    pub healing: AtomicBool,
}
