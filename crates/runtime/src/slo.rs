//! Multi-window burn-rate SLO monitoring over the live serving metrics.
//!
//! [`SloMonitor`] is a background thread that samples a served
//! [`Runtime`]'s telemetry on a fixed tick and evaluates two service-level
//! objectives the SRE way — as **error budgets** consumed at a measured
//! **burn rate**, over a short and a long window simultaneously:
//!
//! * **Latency** — the fraction of completed requests slower than
//!   [`SloConfig::latency_target_ns`], against an allowed violation
//!   fraction ([`SloConfig::latency_budget`]).
//! * **Rejection** — the fraction of submissions rejected by admission
//!   control (queue bound or tenant quota), against
//!   [`SloConfig::rejection_budget`].
//!
//! A burn rate of 1.0 means the budget is being consumed exactly as fast
//! as the SLO allows; an alert fires only when **both** the short and the
//! long window burn above [`SloConfig::burn_threshold`] — the short window
//! makes the alert fast, the long window keeps a transient blip from
//! paging. Alerts are typed ([`SloAlert`]), journaled (`slo` category) and
//! surfaced in the `slo` section of
//! [`MetricsSnapshot`](crate::MetricsSnapshot); a raised alert re-arms
//! once the short-window burn falls back under the threshold (hysteresis,
//! so a sustained violation pages once, not every tick).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::runtime::Runtime;

/// Service-level objectives and evaluation windows of an [`SloMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A completed request slower than this violates the latency SLO.
    pub latency_target_ns: u64,
    /// Allowed fraction of requests over the latency target (the error
    /// budget; e.g. `0.01` = 99% of requests within target).
    pub latency_budget: f64,
    /// Allowed fraction of submissions rejected by admission control.
    pub rejection_budget: f64,
    /// Alert when both windows burn the budget faster than this multiple
    /// of the allowed rate.
    pub burn_threshold: f64,
    /// Short (fast-trigger) window, in evaluation ticks.
    pub short_window: usize,
    /// Long (confirmation) window, in evaluation ticks.
    pub long_window: usize,
    /// Evaluation tick interval.
    pub interval: Duration,
}

impl Default for SloConfig {
    /// 99% of requests within 50 ms, under 1% rejections, alerting at 2×
    /// burn over 3-tick/12-tick windows evaluated every 50 ms.
    fn default() -> Self {
        Self {
            latency_target_ns: 50_000_000,
            latency_budget: 0.01,
            rejection_budget: 0.01,
            burn_threshold: 2.0,
            short_window: 3,
            long_window: 12,
            interval: Duration::from_millis(50),
        }
    }
}

/// Which objective an [`SloAlert`] fired for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloAlertKind {
    /// Too many requests over the latency target.
    Latency,
    /// Too many submissions rejected by admission control.
    Rejection,
}

/// One fired SLO alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAlert {
    /// The violated objective.
    pub kind: SloAlertKind,
    /// Burn rate over the short window when the alert fired.
    pub short_burn: f64,
    /// Burn rate over the long window when the alert fired.
    pub long_burn: f64,
    /// Evaluation tick (0-based since the monitor started) the alert
    /// fired on.
    pub tick: u64,
}

/// Cumulative counter sample of one evaluation tick.
#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    completed: u64,
    violations: u64,
    rejected: u64,
}

/// Burn rates of one objective over a window: `violated / total / budget`,
/// zero when the window saw no traffic.
fn burn(violated: u64, total: u64, budget: f64) -> f64 {
    if total == 0 || budget <= 0.0 {
        return 0.0;
    }
    (violated as f64 / total as f64) / budget
}

/// Per-objective hysteresis state: armed → (alert) → raised → re-arm.
#[derive(Debug, Default)]
struct Hysteresis {
    raised: bool,
}

impl Hysteresis {
    /// Whether this tick should fire an alert, updating the raised state.
    fn evaluate(&mut self, short_burn: f64, long_burn: f64, threshold: f64) -> bool {
        let over = short_burn > threshold && long_burn > threshold;
        if self.raised {
            if short_burn <= threshold {
                self.raised = false;
            }
            return false;
        }
        if over {
            self.raised = true;
        }
        over
    }
}

/// Background thread evaluating [`SloConfig`] objectives against a served
/// runtime (see the module docs for the burn-rate model).
#[derive(Debug)]
pub struct SloMonitor {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<Vec<SloAlert>>,
}

impl SloMonitor {
    /// Starts the monitor thread. The runtime keeps serving normally; the
    /// monitor only reads telemetry and writes alerts (journal + the
    /// `slo` metrics section).
    ///
    /// # Panics
    ///
    /// Panics if the monitor thread cannot be spawned, or on a zero-length
    /// window configuration.
    #[must_use]
    pub fn start(rt: Arc<Runtime>, cfg: SloConfig) -> Self {
        assert!(
            cfg.short_window > 0 && cfg.long_window >= cfg.short_window,
            "windows must satisfy 0 < short ≤ long"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("gramc-slo".into())
            .spawn(move || Self::run(&rt, cfg, &stop_flag))
            .expect("spawn SLO monitor thread");
        Self { stop, thread }
    }

    fn run(rt: &Runtime, cfg: SloConfig, stop: &AtomicBool) -> Vec<SloAlert> {
        let t = rt.rt_telemetry();
        let mut alerts = Vec::new();
        // Cumulative samples, newest last; index 0 is the baseline of the
        // long window. One extra slot so `long_window` ticks of deltas fit.
        let mut history: VecDeque<Sample> = VecDeque::with_capacity(cfg.long_window + 1);
        let mut latency_state = Hysteresis::default();
        let mut rejection_state = Hysteresis::default();
        let mut tick: u64 = 0;
        loop {
            let stopping = stop.load(Ordering::SeqCst);
            let h = t.submit_to_complete.snapshot();
            let now = Sample {
                completed: h.count,
                violations: h.count_over(cfg.latency_target_ns),
                rejected: t.rejected.load(Ordering::Relaxed),
            };
            if history.len() > cfg.long_window {
                history.pop_front();
            }
            let over = |earlier: &Sample| {
                let completed = now.completed.saturating_sub(earlier.completed);
                let violations = now.violations.saturating_sub(earlier.violations);
                let rejected = now.rejected.saturating_sub(earlier.rejected);
                (
                    burn(violations, completed, cfg.latency_budget),
                    burn(rejected, rejected + completed, cfg.rejection_budget),
                )
            };
            // Window baselines: `short_window` (resp. `long_window`) ticks
            // back, clamped to the oldest sample while history warms up.
            let base = |window: usize| {
                let n = history.len();
                history.get(n.saturating_sub(window)).copied().unwrap_or_default()
            };
            if !history.is_empty() {
                let (lat_short, rej_short) = over(&base(cfg.short_window));
                let (lat_long, rej_long) = over(&base(cfg.long_window));
                t.slo.latency_burn_milli.store((lat_short * 1e3) as u64, Ordering::Relaxed);
                t.slo.rejection_burn_milli.store((rej_short * 1e3) as u64, Ordering::Relaxed);
                if latency_state.evaluate(lat_short, lat_long, cfg.burn_threshold) {
                    t.slo.latency_alerts.fetch_add(1, Ordering::Relaxed);
                    t.journal.instant("slo_alert_latency", "slo", (lat_short * 1e3) as u64, tick);
                    alerts.push(SloAlert {
                        kind: SloAlertKind::Latency,
                        short_burn: lat_short,
                        long_burn: lat_long,
                        tick,
                    });
                }
                t.slo.latency_alerting.store(u64::from(latency_state.raised), Ordering::Relaxed);
                if rejection_state.evaluate(rej_short, rej_long, cfg.burn_threshold) {
                    t.slo.rejection_alerts.fetch_add(1, Ordering::Relaxed);
                    t.journal.instant("slo_alert_rejection", "slo", (rej_short * 1e3) as u64, tick);
                    alerts.push(SloAlert {
                        kind: SloAlertKind::Rejection,
                        short_burn: rej_short,
                        long_burn: rej_long,
                        tick,
                    });
                }
                t.slo
                    .rejection_alerting
                    .store(u64::from(rejection_state.raised), Ordering::Relaxed);
            }
            history.push_back(now);
            tick += 1;
            if stopping {
                return alerts;
            }
            std::thread::sleep(cfg.interval);
        }
    }

    /// Stops the monitor after one final evaluation and returns every
    /// alert it fired, in order.
    #[must_use]
    pub fn stop(self) -> Vec<SloAlert> {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_violation_fraction_over_budget() {
        assert_eq!(burn(0, 100, 0.01), 0.0);
        let b = burn(2, 100, 0.01);
        assert!((b - 2.0).abs() < 1e-12, "2% violations on a 1% budget burns at 2×: {b}");
        assert_eq!(burn(5, 0, 0.01), 0.0, "no traffic, no burn");
        assert_eq!(burn(5, 100, 0.0), 0.0, "zero budget disables the objective");
    }

    #[test]
    fn hysteresis_fires_once_until_rearmed() {
        let mut h = Hysteresis::default();
        assert!(!h.evaluate(1.0, 1.0, 2.0), "under threshold");
        assert!(h.evaluate(3.0, 3.0, 2.0), "fires on crossing");
        assert!(!h.evaluate(4.0, 4.0, 2.0), "stays raised, no re-fire");
        assert!(!h.evaluate(1.0, 3.0, 2.0), "re-arms when short burn recovers");
        assert!(h.evaluate(3.0, 2.5, 2.0), "fires again after re-arm");
    }

    #[test]
    fn short_window_alone_does_not_fire() {
        let mut h = Hysteresis::default();
        assert!(!h.evaluate(5.0, 0.5, 2.0), "long window must confirm");
        assert!(!h.raised);
    }
}
