//! # gramc-runtime
//!
//! Sharded multi-group analog runtime: the scaling layer above one
//! [`MacroGroup`](gramc_core::MacroGroup). GRAMC's architecture is
//! explicitly reconfigurable *and scalable* — many AMC macros grouped into
//! macro groups behind one instruction pipeline — and this crate completes
//! that story in software: a [`Runtime`] owns `N` independent macro-group
//! **shards** (each with its own seed and its own analog state), a
//! cross-shard **operator registry**, and a **work-stealing job scheduler**
//! that keeps every shard's analog planes busy.
//!
//! ```text
//!                submit(…) → JobHandle            JobHandle::wait()
//!                     │                                  ▲
//!  ┌──────────────────▼──────────────────────────────────┴─────────────┐
//!  │ Runtime                                                           │
//!  │  ┌───────────────────────────┐  ┌───────────────────────────────┐ │
//!  │  │ operator registry         │  │ MVM coalescing front-end      │ │
//!  │  │ OperatorHandle →          │  │ (per-operator pending batch,  │ │
//!  │  │   (shard, OperatorId)     │  │  executed as one mvm_batch)   │ │
//!  │  │ placement: least-loaded / │  └───────────────┬───────────────┘ │
//!  │  │   round-robin / pinned    │                  │                 │
//!  │  └───────────────────────────┘                  ▼                 │
//!  │   per-shard job deques (tickets keep per-shard program order)     │
//!  │  ┌─────────────┐   ┌─────────────┐         ┌─────────────┐        │
//!  │  │ deque 0     │   │ deque 1     │   ...   │ deque N−1   │        │
//!  │  │ pop front ▼ │   │             │         │             │        │
//!  │  │  steal back ◀───┼─────────────┼─────────┼── idle peer │        │
//!  │  └──────┬──────┘   └──────┬──────┘         └──────┬──────┘        │
//!  │         ▼                 ▼                       ▼               │
//!  │  ┌─────────────┐   ┌─────────────┐         ┌─────────────┐        │
//!  │  │ shard 0     │   │ shard 1     │   ...   │ shard N−1   │        │
//!  │  │ MacroGroup  │   │ MacroGroup  │         │ MacroGroup  │        │
//!  │  └─────────────┘   └─────────────┘         └─────────────┘        │
//!  └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Job lifecycle
//!
//! 1. **Submit.** [`Runtime::submit_mvm`] appends the request to its
//!    operator's pending batch: the first request opens the batch and
//!    enqueues its dispatch job, later requests join it until it runs, so
//!    many requests against one operator collapse into a single
//!    `mvm_batch` analog dispatch at the first request's place in program
//!    order. The other `submit_*` calls ([`Runtime::submit_mvm_batch`],
//!    [`Runtime::submit_solve_inv`], [`Runtime::submit_solve_inv_batch`],
//!    [`Runtime::submit_load`], [`Runtime::submit_free`]) enqueue one job
//!    each. Every submission returns a [`JobHandle`].
//! 2. **Ticket.** At enqueue time a job takes the next *ticket* of its
//!    target shard. Tickets are the per-shard program order: a job may only
//!    execute when every earlier ticket of its shard has retired, no matter
//!    which worker holds it. This is what makes the sharded runtime
//!    bit-identical to a single [`MacroGroup`](gramc_core::MacroGroup)
//!    replaying the same operations (fixed seeds + fixed placement).
//! 3. **Dispatch.** [`Runtime::run_all`] drains every queue: one worker per
//!    shard pops its own deque from the front and, when idle, steals from
//!    the **back** of a peer's deque (with the `parallel` feature; without
//!    it the calling thread plays all workers itself — same tickets, same
//!    results). A stolen job whose ticket is not yet due is pushed back and
//!    the worker moves on, so workers never block holding work.
//! 4. **Wait.** [`JobHandle::wait`] returns the job's
//!    [`JobOutput`] (or the job's error) once it has retired.
//!
//! ## Placement policies
//!
//! * [`Placement::LeastLoaded`] — shard currently holding the fewest live
//!   operators (the default),
//! * [`Placement::RoundRobin`] — cycle shards in submission order (how
//!   [`ShardedTiledOperator`] spreads tiles),
//! * [`Placement::Pinned`] — explicit shard, for reproducing a single-group
//!   run or co-locating operators.
//!
//! ## Failure semantics
//!
//! The runtime separates four failure channels; which one fires is part of
//! the API contract:
//!
//! * **Panics** are reserved for caller bugs and poisoned internals:
//!   locking a poisoned shard, indexing a shard out of range through the
//!   panicking accessors. A job body that panics on its shard fills every
//!   waiter with [`RuntimeError::JobPanicked`] and the panic is re-raised
//!   from [`Runtime::run_all`] on the driving thread — waiters never hang.
//! * **Typed errors** cover everything recoverable by the caller:
//!   shape/finiteness rejection at submit time
//!   ([`RuntimeError::NonFiniteInput`]), stale handles
//!   ([`RuntimeError::InvalidHandle`]), bounded waits
//!   ([`RuntimeError::WaitTimeout`] from [`JobHandle::wait_timeout`]), and
//!   loads whose write-verify pass stays above the health policy's
//!   threshold through every reprogram attempt
//!   ([`RuntimeError::ProgramVerifyFailed`]).
//! * **Quarantine** is the runtime healing itself: once a shard
//!   accumulates [`HealthConfig::quarantine_after`] failed checks (job
//!   residuals over tolerance, failed [probes](Runtime::probe_shard),
//!   unverifiable loads), it stops receiving placements, its operators are
//!   re-programmed onto healthy shards, and queued jobs follow them. The
//!   caller sees correct results, plus [`HealthEvent`]s in
//!   [`RunSummary::events`].
//! * **Degraded mode** is the last rung: with no healthy shard to migrate
//!   to — or a single job out of retries — results come from the digital
//!   reference path (`matmul_reference` / LU on the registry's kept
//!   matrix). Still correct answers, still reported: the summary counts
//!   degraded dispatches and records an [`HealthEvent::OperatorDegraded`]
//!   per affected operator.
//!
//! Fault injection (the `fault-inject` feature, re-exported from
//! `gramc-core`) drives all four channels deterministically in tests and
//! benches: [`Runtime::inject_shard_faults`] installs a seeded
//! [`FaultPlan`](gramc_core::FaultPlan) on one shard's macros; an all-zero
//! [`FaultConfig`] is bit-identical to the feature being off.
//!
//! ## Observability
//!
//! With the `telemetry` feature (on by default) the runtime meters itself
//! without perturbing results — counters never touch the RNG or the math,
//! so a telemetered run is bit-identical to a `--no-default-features
//! --features parallel` build. Four surfaces:
//!
//! * **Hardware counters** — every analog event (DAC drives, ADC
//!   conversions, settles, write pulses, cell read/write cycles,
//!   snapshot-cache hits/misses) is counted by relaxed atomics inside
//!   `CrossbarArray` and `MacroGroup` and attributed per job kind by
//!   snapshot-diffing under the shard lock. [`Runtime::hw_snapshot`] sums
//!   all shards; [`RunSummary::hw`] carries one drain's delta.
//! * **Energy/latency attribution** — [`RunSummary::analog_cost`] and
//!   [`MetricsSnapshot::analog_cost`] fold the measured counters through
//!   `gramc_core::metrics::AnalogCostModel`, reporting modeled joules and
//!   analog seconds alongside wall-clock time.
//! * **Serving metrics** — [`Runtime::metrics_snapshot`] returns
//!   submit→dispatch→complete latency histograms (log-bucketed, lock-free;
//!   p50/p90/p99/p999/max), current queue depth and its high-water mark,
//!   the admission-rejection count and per-shard
//!   steal/retry/requeue/quarantine/busy-time counters;
//!   [`MetricsSnapshot::to_json`] serializes the lot under a pinned
//!   `schema_version` ([`METRICS_SCHEMA_VERSION`]).
//! * **Event journal** — submit/coalesce/rejection instants, per-job
//!   duration spans, probe spans and health events land in a bounded
//!   preallocated ring; [`Runtime::journal_chrome_trace`] exports it for
//!   chrome://tracing or Perfetto.
//!
//! ### Span model and request flows
//!
//! Every retired job contributes **two abutting duration spans** that
//! together cover submit→complete:
//!
//! * `queued:<kind>` — from the submission timestamp (taken under the
//!   queue lock, at ticket assignment) to dispatch, drawn on the job's
//!   **shard lane** (`tid` = shard index). Queue pressure per shard is the
//!   width of these spans.
//! * `job:<kind>` — from dispatch to completion, drawn on the executing
//!   **worker lane** (`tid` = 1000 + worker index, so worker occupancy
//!   renders separately from shard queueing; a stolen job shows up on the
//!   thief's lane).
//!
//! `submit` instants mark enqueue points on the shard lanes and `rejected`
//! instants mark admission-control rejections; health events keep their
//! own `health` category.
//!
//! On top of the spans, every submission is **request-scoped**: each
//! `submit_*` mints a [`RequestId`] (returned via
//! [`JobHandle::request_id`]) and the trace links that request's causal
//! chain with chrome *flow events* (`cat:"flow"`, keyed by the id). The
//! lead request of a dispatch owns the `queued:<kind>` span; every
//! coalesced **rider** gets its own `queued:rider` span from its own
//! submission instant to dispatch — so "coalesce wait" is separable from
//! "queue wait" — and each request's flow arrow lands inside the shared
//! execution span, surviving coalescing and work-stealing. Flow-carrying
//! queue spans also expose the id as `args.req`, which is what the
//! offline `trace_analyze` tool (see below) keys on.
//!
//! ### Tenants
//!
//! Submissions belong to a [`TenantId`]: the plain `submit_*` APIs run as
//! [`TenantId::DEFAULT`], the `submit_*_for(tenant, ...)` variants name
//! one. Per tenant the runtime keeps a submit→complete latency histogram,
//! an in-flight gauge and its **exact share of the hardware counters**: a
//! coalesced batch's counter delta is split among its riders
//! proportionally to row counts with largest-remainder integer
//! assignment, so tenant shares always sum bit-exactly to `hw_total`
//! (conservation is pinned by test). Shares price through
//! [`AnalogCostModel`](gramc_core::metrics::AnalogCostModel) into
//! per-tenant joules. [`Runtime::with_tenant_quota`] adds fair admission:
//! a tenant at its [`TenantQuota`] in-flight bound gets typed
//! [`RuntimeError::QueueFull`] rejections (riders count — each holds a
//! result slot) before it can starve other tenants.
//!
//! ### SLO monitoring
//!
//! [`SloMonitor`] is a background thread evaluating an [`SloConfig`]
//! against the live telemetry the SRE way: latency and rejection error
//! budgets consumed at a measured burn rate over a short and a long
//! window simultaneously (the short window trips fast, the long one keeps
//! transients from paging; hysteresis re-arms only after the short-window
//! burn recovers). Alerts are typed ([`SloAlert`]), journaled in the
//! `slo` category and surfaced in the `slo` section of
//! [`MetricsSnapshot`].
//!
//! ### Metrics JSONL stream
//!
//! [`MetricsReporter`] snapshots a served runtime on a fixed interval and
//! appends one compact JSON object per line
//! ([`MetricsSnapshot::to_jsonl_line`]). Each record carries
//! `schema_version`, the three stage histograms (`count`, `mean_ns`, the
//! `p50/p90/p99/p999/max` ladder), `queue_depth` / `queue_depth_max` /
//! `rejected`, per-shard scheduler counters with `busy_ns` utilization
//! numerators, and per-kind job counts with hardware attribution and
//! modeled cost. Schema **v3** added the `tenants` section (per-tenant
//! in-flight/requests/rejected, latency histogram, exact hardware share
//! and modeled joules), the `slo` section (alert counts, current
//! short-window burn rates, alerting flags) and widened `journal` to
//! `{len, capacity, overwritten, dropped_since_last, drop_rate}` — the
//! ring is sized at construction with [`Runtime::with_journal_capacity`],
//! and a nonzero `drop_rate` means the ring wrapped within the reporting
//! interval. Consumers tail the file; the schema version is pinned by
//! test.
//!
//! ### Load observatory
//!
//! `cargo run --release -p gramc-bench --bin load_observatory` drives a
//! served runtime from many client threads and records the latency SLO
//! evidence into `BENCH_kernels.json`:
//!
//! * **closed-loop** — each client submits, waits, submits again:
//!   saturation throughput and in-service latency.
//! * **open-loop** — a pacer submits at fixed arrival rates regardless of
//!   completions: queueing-delay percentiles and the saturation knee (the
//!   rate where p99 departs and rejections begin, under a bounded queue).
//!
//! Both record p50/p99/p999 latency, sustained throughput and the
//! rejection rate at each swept arrival rate (`serving_closed_*` /
//! `serving_open_*` entries; single-core hosts annotate `overhead_only`
//! like the other runtime benches). The bench smoke mode exports
//! `TRACE_serving.json` (chrome trace of a served sample run) and
//! `METRICS_serving.jsonl` (live reporter output), both validated in CI.
//!
//! The exported pair feeds the offline analyzer:
//!
//! ```sh
//! cargo run -p gramc-bench --bin trace_analyze -- \
//!     TRACE_serving.json METRICS_serving.jsonl [--top N] [--check]
//! ```
//!
//! It follows each request's flow events to print a critical-path
//! breakdown (queue wait vs coalesce wait vs execute), the per-tenant
//! cost table from the final metrics record and the top-N slowest
//! requests; `--check` (CI mode) fails on parse errors, unlinked rider
//! flows or tenant attribution that does not sum exactly to `hw_total`.
//!
//! ## Persistent serving
//!
//! [`RuntimeServer::start`] turns a runtime into an always-on service: one
//! persistent worker per shard, parked on a condvar between submissions
//! and woken by any `submit_*`. `submit → JobHandle::wait` completes
//! without any [`Runtime::run_all`] drain. Pair with
//! [`Runtime::with_queue_limit`] for bounded-queue admission control
//! ([`RuntimeError::QueueFull`] backpressure) and
//! [`RuntimeServer::shutdown`] for graceful drain-then-join shutdown.
//! Ticket order is unchanged, so fixed seeds + pinned placement stay
//! bit-identical to a lone `MacroGroup` whether jobs are drained or
//! served.
//!
//! ## Relation to `GramcSystem`
//!
//! [`GramcSystem`](gramc_core::system::GramcSystem) remains the paper's
//! Fig. 3 single-controller machine: its `n_macros` argument sizes one
//! group and does not shard. [`Runtime::new`] *is* the sharded
//! constructor — it builds one `MacroGroup` per shard (seeded per shard)
//! and scales the same four analog primitives across them.

#![warn(missing_docs)]

mod error;
mod health;
mod job;
mod registry;
mod runtime;
mod server;
#[cfg(feature = "telemetry")]
mod slo;
#[cfg(feature = "telemetry")]
mod telemetry;
mod tenant;
mod tiling;

pub use error::RuntimeError;
pub use health::{HealthConfig, HealthEvent};
pub use job::{JobHandle, JobOutput};
pub use registry::{OperatorHandle, Placement};
pub use runtime::{QueuePolicy, RunSummary, Runtime};
pub use server::{RuntimeServer, ServeReport};
pub use tenant::{RequestId, TenantId, TenantQuota};
pub use tiling::ShardedTiledOperator;

pub use gramc_core::{ProbeReport, ProgramOutcome};

#[cfg(feature = "telemetry")]
pub use server::MetricsReporter;
#[cfg(feature = "telemetry")]
pub use slo::{SloAlert, SloAlertKind, SloConfig, SloMonitor};
#[cfg(feature = "telemetry")]
pub use telemetry::{
    KindMetrics, MetricsSnapshot, ShardMetrics, SloMetrics, TenantMetrics, METRICS_SCHEMA_VERSION,
};

#[cfg(feature = "telemetry")]
pub use gramc_telemetry::{
    EventJournal, FlowPhase, HistogramSnapshot, HwCounters, HwSnapshot, JournalEvent,
    LatencyHistogram,
};

#[cfg(feature = "fault-inject")]
pub use gramc_core::{FaultConfig, FaultKind, FaultPlan};
