//! Cross-shard tiling: one logical operator spread over many shards.
//!
//! The single-group [`TiledOperator`](gramc_core::tiling::TiledOperator)
//! spreads tiles over the macros of *one* group; this version spreads them
//! round-robin over the runtime's **shards**, so every tile's partial
//! product runs on a different analog plane concurrently and the digital
//! reduction happens once the scheduler drains. Both use
//! [`tile_grid`](gramc_core::tiling::tile_grid), so they split a matrix
//! identically.

use gramc_core::tiling::{tile_grid, TileMapping};
use gramc_core::CoreError;
use gramc_linalg::Matrix;

use crate::error::RuntimeError;
use crate::registry::{OperatorHandle, Placement};
use crate::runtime::Runtime;

/// One placed tile: its handle and its window into the logical matrix.
#[derive(Debug, Clone, Copy)]
struct Tile {
    handle: OperatorHandle,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

/// A matrix operator tiled across the runtime's shards.
#[derive(Debug)]
pub struct ShardedTiledOperator {
    rows: usize,
    cols: usize,
    tiles: Vec<Tile>,
    freed: bool,
}

impl ShardedTiledOperator {
    /// Splits `a` into array-sized tiles and places them round-robin
    /// across the shards. All tile loads are submitted up front and retire
    /// in one scheduler drain (per-shard program order still loads each
    /// shard's tiles in submission order).
    ///
    /// # Errors
    ///
    /// Capacity/mapping errors from the shards; everything loaded so far
    /// is rolled back on failure.
    pub fn load(rt: &Runtime, a: &Matrix, mapping: TileMapping) -> Result<Self, RuntimeError> {
        let (rows, cols) = a.shape();
        if rows == 0 || cols == 0 {
            return Err(CoreError::InvalidArgument("cannot tile an empty matrix").into());
        }
        let config = rt.config();
        let (row_starts, col_starts) = tile_grid(rows, cols, config.array_rows, config.array_cols);
        let mut tiles: Vec<Tile> = Vec::with_capacity(row_starts.len() * col_starts.len());
        let mut jobs = Vec::with_capacity(tiles.capacity());
        for &r0 in &row_starts {
            for &c0 in &col_starts {
                let tr = config.array_rows.min(rows - r0);
                let tc = config.array_cols.min(cols - c0);
                let block = a.block(r0, c0, tr, tc);
                let (handle, jh) = rt.submit_load(&block, mapping, Placement::RoundRobin)?;
                tiles.push(Tile { handle, r0, c0, rows: tr, cols: tc });
                jobs.push(jh);
            }
        }
        rt.run_all();
        let results: Vec<_> = jobs.iter().map(|jh| jh.wait()).collect();
        if let Some(e) = results.iter().find_map(|r| r.as_ref().err()) {
            // Roll back the tiles that did load (failed loads already
            // retired their registry entries).
            let frees: Vec<_> = tiles
                .iter()
                .zip(&results)
                .filter(|(_, r)| r.is_ok())
                .filter_map(|(t, _)| rt.submit_free(t.handle).ok())
                .collect();
            rt.run_all();
            for jh in frees {
                let _ = jh.wait();
            }
            return Err(e.clone());
        }
        Ok(Self { rows, cols, tiles, freed: false })
    }

    /// Logical shape of the tiled matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Sharded batched MVM: one `mvm_batch` job per tile is submitted, the
    /// scheduler drains them across the shards (stealing as needed), and
    /// the partial products reduce digitally into the full result.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] after [`free`](Self::free); shape
    /// errors for wrong input lengths; shard errors propagate.
    pub fn mvm_batch(&self, rt: &Runtime, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, RuntimeError> {
        for x in xs {
            if x.len() != self.cols {
                return Err(CoreError::ShapeMismatch { expected: self.cols, found: x.len() }.into());
            }
        }
        let mut v = Matrix::zeros(xs.len(), self.cols);
        for (b, x) in xs.iter().enumerate() {
            v.row_mut(b).copy_from_slice(x);
        }
        let out = self.mvm_batch_rows(rt, &v)?;
        Ok((0..out.rows()).map(|b| out.row(b).to_vec()).collect())
    }

    /// [`mvm_batch`](Self::mvm_batch) on matrix batches (row `b` in, row `b`
    /// out). Per tile, one column-slice job crosses the shard boundary per
    /// *batch* — the streaming `gramc-nn` pipeline submits whole-dataset
    /// drive matrices through this, so job payload assembly is per tile per
    /// layer, never per image.
    ///
    /// # Errors
    ///
    /// See [`mvm_batch`](Self::mvm_batch).
    pub fn mvm_batch_rows(&self, rt: &Runtime, xs: &Matrix) -> Result<Matrix, RuntimeError> {
        if self.freed {
            return Err(RuntimeError::InvalidHandle);
        }
        if xs.cols() != self.cols {
            return Err(CoreError::ShapeMismatch { expected: self.cols, found: xs.cols() }.into());
        }
        let bsz = xs.rows();
        if bsz == 0 {
            return Ok(Matrix::zeros(0, self.rows));
        }
        let mut jobs = Vec::with_capacity(self.tiles.len());
        for t in &self.tiles {
            // Job payloads stay `Vec<Vec<f64>>` (the scheduler's wire
            // format); one slice set per tile per batch.
            let slices: Vec<Vec<f64>> =
                (0..bsz).map(|b| xs.row(b)[t.c0..t.c0 + t.cols].to_vec()).collect();
            jobs.push(rt.submit_mvm_batch(t.handle, slices)?);
        }
        rt.run_all();
        let mut ys = Matrix::zeros(bsz, self.rows);
        for (t, jh) in self.tiles.iter().zip(&jobs) {
            let partials = jh.wait_vectors()?;
            for (b, partial) in partials.iter().enumerate() {
                let y = &mut ys.row_mut(b)[t.r0..t.r0 + t.rows];
                for (yk, &p) in y.iter_mut().zip(partial.iter().take(t.rows)) {
                    *yk += p;
                }
            }
        }
        Ok(ys)
    }

    /// Sharded single MVM (a batch of one).
    ///
    /// # Errors
    ///
    /// See [`mvm_batch`](Self::mvm_batch).
    pub fn mvm(&self, rt: &Runtime, x: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let mut ys = self.mvm_batch(rt, std::slice::from_ref(&x.to_vec()))?;
        Ok(ys.remove(0))
    }

    /// Releases every tile.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidHandle`] if already freed.
    pub fn free(&mut self, rt: &Runtime) -> Result<(), RuntimeError> {
        if self.freed {
            return Err(RuntimeError::InvalidHandle);
        }
        self.freed = true;
        let mut jobs = Vec::with_capacity(self.tiles.len());
        for t in &self.tiles {
            jobs.push(rt.submit_free(t.handle)?);
        }
        rt.run_all();
        for jh in jobs {
            jh.wait()?;
        }
        Ok(())
    }
}
