//! Cross-shard operator registry: global handles, placement and lifecycle.

use gramc_core::OperatorId;

use crate::error::RuntimeError;

/// Global handle to an operator placed somewhere in the sharded runtime.
///
/// Unlike [`OperatorId`](gramc_core::OperatorId), which is local to one
/// macro group, a handle is valid runtime-wide: the registry maps it to
/// `(shard, local id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperatorHandle(pub(crate) usize);

/// Placement policy for newly loaded operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The shard currently holding the fewest live operators (ties go to
    /// the lowest shard index). The default.
    #[default]
    LeastLoaded,
    /// Cycle shards in submission order.
    RoundRobin,
    /// A fixed shard — reproduces a single-group run exactly and lets
    /// callers co-locate operators.
    Pinned(usize),
}

/// Lifecycle of a registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryState {
    /// Load submitted but not yet executed.
    Pending,
    /// Live on its shard.
    Live(OperatorId),
    /// Free queued while the load itself is still queued (fully pipelined
    /// load → … → free; the load job runs first, per shard tickets).
    PendingFreeQueued,
    /// A free job is queued behind earlier work (the operator is still
    /// live until that job retires).
    FreeQueued(OperatorId),
    /// Freed, or the load failed.
    Dead,
}

#[derive(Debug)]
struct Entry {
    shard: usize,
    /// Input dimension (matrix columns) recorded at load submission, so
    /// MVM requests can be shape-checked before they join a coalesced
    /// batch.
    cols: usize,
    state: EntryState,
}

/// Handle table plus the placement counters. Lives behind one mutex in the
/// runtime; every method is a short critical section.
#[derive(Debug)]
pub(crate) struct Registry {
    entries: Vec<Entry>,
    live_per_shard: Vec<usize>,
    rr_next: usize,
}

impl Registry {
    pub(crate) fn new(shards: usize) -> Self {
        Self { entries: Vec::new(), live_per_shard: vec![0; shards], rr_next: 0 }
    }

    /// Chooses a shard under `placement` and allocates a `Pending` entry
    /// for an operator with `cols` input columns.
    pub(crate) fn place(
        &mut self,
        placement: Placement,
        cols: usize,
    ) -> Result<(OperatorHandle, usize), RuntimeError> {
        let shards = self.live_per_shard.len();
        let shard = match placement {
            Placement::LeastLoaded => self
                .live_per_shard
                .iter()
                .enumerate()
                .min_by_key(|(_, &n)| n)
                .map(|(s, _)| s)
                .expect("runtime has at least one shard"),
            Placement::RoundRobin => {
                let s = self.rr_next % shards;
                self.rr_next = self.rr_next.wrapping_add(1);
                s
            }
            Placement::Pinned(s) => {
                if s >= shards {
                    return Err(RuntimeError::BadShard { shard: s, shards });
                }
                s
            }
        };
        self.live_per_shard[shard] += 1;
        let handle = OperatorHandle(self.entries.len());
        self.entries.push(Entry { shard, cols, state: EntryState::Pending });
        Ok((handle, shard))
    }

    fn entry_mut(&mut self, handle: OperatorHandle) -> Result<&mut Entry, RuntimeError> {
        self.entries.get_mut(handle.0).ok_or(RuntimeError::InvalidHandle)
    }

    fn entry(&self, handle: OperatorHandle) -> Result<&Entry, RuntimeError> {
        self.entries.get(handle.0).ok_or(RuntimeError::InvalidHandle)
    }

    /// Marks a `Pending` entry live after its load executed (or free-queued
    /// when the free was already pipelined behind the load).
    pub(crate) fn fulfill(&mut self, handle: OperatorHandle, id: OperatorId) {
        let entry = self.entry_mut(handle).expect("fulfilling an allocated entry");
        entry.state = match entry.state {
            EntryState::Pending => EntryState::Live(id),
            EntryState::PendingFreeQueued => EntryState::FreeQueued(id),
            state => unreachable!("fulfilling a load in state {state:?}"),
        };
    }

    /// Retires an entry whose load failed.
    pub(crate) fn abandon(&mut self, handle: OperatorHandle) {
        let (shard, state) = {
            let entry = self.entry_mut(handle).expect("abandoning an allocated entry");
            (entry.shard, std::mem::replace(&mut entry.state, EntryState::Dead))
        };
        if state != EntryState::Dead {
            self.live_per_shard[shard] = self.live_per_shard[shard].saturating_sub(1);
        }
    }

    /// Shard an operator lives (or will live) on — usable while the load is
    /// still queued, which is what lets follow-up jobs enqueue behind it.
    /// Free-queued handles are rejected: the handle is dead to further
    /// submissions the moment its free is accepted.
    pub(crate) fn shard_of(&self, handle: OperatorHandle) -> Result<usize, RuntimeError> {
        self.submission_entry(handle).map(|e| e.shard)
    }

    /// Shard plus input dimension, for shape-checking MVM submissions.
    pub(crate) fn shard_and_cols(
        &self,
        handle: OperatorHandle,
    ) -> Result<(usize, usize), RuntimeError> {
        self.submission_entry(handle).map(|e| (e.shard, e.cols))
    }

    fn submission_entry(&self, handle: OperatorHandle) -> Result<&Entry, RuntimeError> {
        let entry = self.entry(handle)?;
        match entry.state {
            EntryState::PendingFreeQueued | EntryState::FreeQueued(_) | EntryState::Dead => {
                Err(RuntimeError::InvalidHandle)
            }
            EntryState::Pending | EntryState::Live(_) => Ok(entry),
        }
    }

    /// Local operator id at execution time. `Pending` states are
    /// unreachable here: tickets order the load before every job submitted
    /// after it.
    pub(crate) fn live_id(&self, handle: OperatorHandle) -> Result<OperatorId, RuntimeError> {
        let entry = self.entry(handle)?;
        match entry.state {
            EntryState::Live(id) | EntryState::FreeQueued(id) => Ok(id),
            EntryState::Pending | EntryState::PendingFreeQueued | EntryState::Dead => {
                Err(RuntimeError::InvalidHandle)
            }
        }
    }

    /// Marks the handle free-queued at submission so a second free is
    /// rejected immediately. A still-pending load is fine — the free job
    /// enqueues behind it (fully pipelined lifecycle).
    pub(crate) fn queue_free(&mut self, handle: OperatorHandle) -> Result<usize, RuntimeError> {
        let entry = self.entry_mut(handle)?;
        match entry.state {
            EntryState::Live(id) => {
                entry.state = EntryState::FreeQueued(id);
                Ok(entry.shard)
            }
            EntryState::Pending => {
                entry.state = EntryState::PendingFreeQueued;
                Ok(entry.shard)
            }
            EntryState::PendingFreeQueued | EntryState::FreeQueued(_) | EntryState::Dead => {
                Err(RuntimeError::DoubleFree)
            }
        }
    }

    /// Retires a free-queued entry when its free job executes; returns the
    /// local id to release.
    pub(crate) fn retire(&mut self, handle: OperatorHandle) -> Result<OperatorId, RuntimeError> {
        let (shard, id) = {
            let entry = self.entry_mut(handle)?;
            match entry.state {
                EntryState::FreeQueued(id) => {
                    entry.state = EntryState::Dead;
                    (entry.shard, id)
                }
                _ => return Err(RuntimeError::InvalidHandle),
            }
        };
        self.live_per_shard[shard] = self.live_per_shard[shard].saturating_sub(1);
        Ok(id)
    }

    /// Live-operator count per shard (placement heuristic + introspection).
    pub(crate) fn live_per_shard(&self) -> &[usize] {
        &self.live_per_shard
    }
}
