//! Cross-shard operator registry: global handles, placement, lifecycle —
//! and the quarantine/migration bookkeeping of the health monitor.

use std::sync::Arc;

use gramc_core::tiling::TileMapping;
use gramc_core::OperatorId;
use gramc_linalg::Matrix;

use crate::error::RuntimeError;

/// Global handle to an operator placed somewhere in the sharded runtime.
///
/// Unlike [`OperatorId`](gramc_core::OperatorId), which is local to one
/// macro group, a handle is valid runtime-wide: the registry maps it to
/// `(shard, local id)` — a mapping the recovery machinery may rewrite when
/// it migrates the operator off a quarantined shard, transparently to the
/// handle's holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperatorHandle(pub(crate) usize);

/// Placement policy for newly loaded operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The healthy shard currently holding the fewest live operators (ties
    /// go to the lowest shard index). The default.
    #[default]
    LeastLoaded,
    /// Cycle healthy shards in submission order.
    RoundRobin,
    /// A fixed shard — reproduces a single-group run exactly and lets
    /// callers co-locate operators. Pinning to a quarantined shard is
    /// allowed at submission; the load job then completes on the digital
    /// fallback path.
    Pinned(usize),
}

/// Lifecycle of a registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryState {
    /// Load submitted but not yet executed.
    Pending,
    /// Live on its shard.
    Live(OperatorId),
    /// Live on the digital fallback path — no analog planes anywhere
    /// (loaded onto a quarantined shard, or degraded during recovery).
    LiveDigital,
    /// Free queued while the load itself is still queued (fully pipelined
    /// load → … → free; the load job runs first, per shard tickets).
    PendingFreeQueued,
    /// A free job is queued behind earlier work (the operator is still
    /// live until that job retires).
    FreeQueued(OperatorId),
    /// A free job is queued for a digital-fallback operator.
    FreeQueuedDigital,
    /// Freed, or the load failed.
    Dead,
}

/// Where a compute job finds its operator at execution time.
#[derive(Debug, Clone)]
pub(crate) enum ExecTarget {
    /// Analog planes on `shard` under local id `id`. A job executing on a
    /// different shard (the operator migrated after the job enqueued) must
    /// re-enqueue itself there.
    Analog { shard: usize, id: OperatorId },
    /// Digital fallback: compute from the registry's kept matrix.
    Digital(Arc<Matrix>),
}

/// Where a free job performs its release.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FreeTarget {
    /// Release locally: `Some(id)` frees the group operator, `None` was a
    /// digital-fallback operator with nothing to release.
    Local(Option<OperatorId>),
    /// The operator migrated — re-enqueue the free on its current shard.
    Moved(usize),
}

#[derive(Debug)]
struct Entry {
    shard: usize,
    /// Output dimension (matrix rows) recorded at load submission, so
    /// solve right-hand sides can be shape-checked before enqueueing.
    rows: usize,
    /// Input dimension (matrix columns) recorded at load submission, so
    /// MVM requests can be shape-checked before they join a coalesced
    /// batch.
    cols: usize,
    /// The operator's matrix, kept for migration re-programming and the
    /// digital fallback path.
    matrix: Arc<Matrix>,
    mapping: TileMapping,
    state: EntryState,
}

/// Handle table plus the placement counters and quarantine flags. Lives
/// behind one mutex in the runtime; every method is a short critical
/// section.
#[derive(Debug)]
pub(crate) struct Registry {
    entries: Vec<Entry>,
    live_per_shard: Vec<usize>,
    quarantined: Vec<bool>,
    rr_next: usize,
}

impl Registry {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            entries: Vec::new(),
            live_per_shard: vec![0; shards],
            quarantined: vec![false; shards],
            rr_next: 0,
        }
    }

    /// Chooses a shard under `placement` and allocates a `Pending` entry.
    /// `LeastLoaded` and `RoundRobin` skip quarantined shards while any
    /// healthy shard remains; with none left, placement proceeds anyway and
    /// the load job lands on the digital fallback path.
    pub(crate) fn place(
        &mut self,
        placement: Placement,
        rows: usize,
        cols: usize,
        matrix: Arc<Matrix>,
        mapping: TileMapping,
    ) -> Result<(OperatorHandle, usize), RuntimeError> {
        let shards = self.live_per_shard.len();
        let healthy: Vec<usize> = (0..shards).filter(|&s| !self.quarantined[s]).collect();
        let pool: Vec<usize> = if healthy.is_empty() { (0..shards).collect() } else { healthy };
        let shard = match placement {
            Placement::LeastLoaded => pool
                .iter()
                .copied()
                .min_by_key(|&s| self.live_per_shard[s])
                .expect("runtime has at least one shard"),
            Placement::RoundRobin => {
                let s = pool[self.rr_next % pool.len()];
                self.rr_next = self.rr_next.wrapping_add(1);
                s
            }
            Placement::Pinned(s) => {
                if s >= shards {
                    return Err(RuntimeError::BadShard { shard: s, shards });
                }
                s
            }
        };
        self.live_per_shard[shard] += 1;
        let handle = OperatorHandle(self.entries.len());
        self.entries.push(Entry { shard, rows, cols, matrix, mapping, state: EntryState::Pending });
        Ok((handle, shard))
    }

    fn entry_mut(&mut self, handle: OperatorHandle) -> Result<&mut Entry, RuntimeError> {
        self.entries.get_mut(handle.0).ok_or(RuntimeError::InvalidHandle)
    }

    fn entry(&self, handle: OperatorHandle) -> Result<&Entry, RuntimeError> {
        self.entries.get(handle.0).ok_or(RuntimeError::InvalidHandle)
    }

    /// Marks a `Pending` entry live after its load executed (or free-queued
    /// when the free was already pipelined behind the load).
    pub(crate) fn fulfill(&mut self, handle: OperatorHandle, id: OperatorId) {
        let entry = self.entry_mut(handle).expect("fulfilling an allocated entry");
        entry.state = match entry.state {
            EntryState::Pending => EntryState::Live(id),
            EntryState::PendingFreeQueued => EntryState::FreeQueued(id),
            state => unreachable!("fulfilling a load in state {state:?}"),
        };
    }

    /// Marks a `Pending` entry live on the digital fallback path (its load
    /// targeted a quarantined shard).
    pub(crate) fn fulfill_digital(&mut self, handle: OperatorHandle) {
        let entry = self.entry_mut(handle).expect("fulfilling an allocated entry");
        entry.state = match entry.state {
            EntryState::Pending => EntryState::LiveDigital,
            EntryState::PendingFreeQueued => EntryState::FreeQueuedDigital,
            state => unreachable!("fulfilling a load in state {state:?}"),
        };
    }

    /// Retires an entry whose load failed.
    pub(crate) fn abandon(&mut self, handle: OperatorHandle) {
        let (shard, state) = {
            let entry = self.entry_mut(handle).expect("abandoning an allocated entry");
            (entry.shard, std::mem::replace(&mut entry.state, EntryState::Dead))
        };
        if state != EntryState::Dead {
            self.live_per_shard[shard] = self.live_per_shard[shard].saturating_sub(1);
        }
    }

    /// Shard an operator lives (or will live) on — usable while the load is
    /// still queued, which is what lets follow-up jobs enqueue behind it.
    /// Free-queued handles are rejected: the handle is dead to further
    /// submissions the moment its free is accepted.
    pub(crate) fn shard_of(&self, handle: OperatorHandle) -> Result<usize, RuntimeError> {
        self.submission_entry(handle).map(|e| e.shard)
    }

    /// Shard plus input dimension, for shape-checking MVM submissions.
    pub(crate) fn shard_and_cols(
        &self,
        handle: OperatorHandle,
    ) -> Result<(usize, usize), RuntimeError> {
        self.submission_entry(handle).map(|e| (e.shard, e.cols))
    }

    /// Shard plus output dimension, for shape-checking solve right-hand
    /// sides at submission.
    pub(crate) fn shard_and_rows(
        &self,
        handle: OperatorHandle,
    ) -> Result<(usize, usize), RuntimeError> {
        self.submission_entry(handle).map(|e| (e.shard, e.rows))
    }

    fn submission_entry(&self, handle: OperatorHandle) -> Result<&Entry, RuntimeError> {
        let entry = self.entry(handle)?;
        match entry.state {
            EntryState::PendingFreeQueued
            | EntryState::FreeQueued(_)
            | EntryState::FreeQueuedDigital
            | EntryState::Dead => Err(RuntimeError::InvalidHandle),
            EntryState::Pending | EntryState::Live(_) | EntryState::LiveDigital => Ok(entry),
        }
    }

    /// Where a compute job finds this operator right now. `Pending` states
    /// are unreachable for the job's home shard — tickets order the load
    /// first — but a job re-dispatched after migration may observe them on
    /// another shard's timeline, so they map to `InvalidHandle` rather
    /// than panicking.
    pub(crate) fn exec_target(&self, handle: OperatorHandle) -> Result<ExecTarget, RuntimeError> {
        let entry = self.entry(handle)?;
        match entry.state {
            EntryState::Live(id) | EntryState::FreeQueued(id) => {
                Ok(ExecTarget::Analog { shard: entry.shard, id })
            }
            EntryState::LiveDigital | EntryState::FreeQueuedDigital => {
                Ok(ExecTarget::Digital(entry.matrix.clone()))
            }
            EntryState::Pending | EntryState::PendingFreeQueued | EntryState::Dead => {
                Err(RuntimeError::InvalidHandle)
            }
        }
    }

    /// Marks the handle free-queued at submission so a second free is
    /// rejected immediately. A still-pending load is fine — the free job
    /// enqueues behind it (fully pipelined lifecycle).
    pub(crate) fn queue_free(&mut self, handle: OperatorHandle) -> Result<usize, RuntimeError> {
        let entry = self.entry_mut(handle)?;
        match entry.state {
            EntryState::Live(id) => {
                entry.state = EntryState::FreeQueued(id);
                Ok(entry.shard)
            }
            EntryState::LiveDigital => {
                entry.state = EntryState::FreeQueuedDigital;
                Ok(entry.shard)
            }
            EntryState::Pending => {
                entry.state = EntryState::PendingFreeQueued;
                Ok(entry.shard)
            }
            EntryState::PendingFreeQueued
            | EntryState::FreeQueued(_)
            | EntryState::FreeQueuedDigital
            | EntryState::Dead => Err(RuntimeError::DoubleFree),
        }
    }

    /// Retires a free-queued entry when its free job executes on
    /// `executing_shard`; tells the job what to release, or where to
    /// re-enqueue itself if the operator migrated after the free enqueued.
    pub(crate) fn retire_on(
        &mut self,
        handle: OperatorHandle,
        executing_shard: usize,
    ) -> Result<FreeTarget, RuntimeError> {
        let (shard, target) = {
            let entry = self.entry_mut(handle)?;
            match entry.state {
                EntryState::FreeQueued(id) if entry.shard == executing_shard => {
                    entry.state = EntryState::Dead;
                    (entry.shard, FreeTarget::Local(Some(id)))
                }
                EntryState::FreeQueued(_) => return Ok(FreeTarget::Moved(entry.shard)),
                EntryState::FreeQueuedDigital => {
                    entry.state = EntryState::Dead;
                    (entry.shard, FreeTarget::Local(None))
                }
                _ => return Err(RuntimeError::InvalidHandle),
            }
        };
        self.live_per_shard[shard] = self.live_per_shard[shard].saturating_sub(1);
        Ok(target)
    }

    /// Live-operator count per shard (placement heuristic + introspection).
    pub(crate) fn live_per_shard(&self) -> &[usize] {
        &self.live_per_shard
    }

    // ── quarantine and migration ──────────────────────────────────────

    /// Quarantines `shard`; returns `false` if it already was.
    pub(crate) fn quarantine(&mut self, shard: usize) -> bool {
        !std::mem::replace(&mut self.quarantined[shard], true)
    }

    /// Whether `shard` is quarantined.
    pub(crate) fn is_quarantined(&self, shard: usize) -> bool {
        self.quarantined[shard]
    }

    /// Quarantined shard indices.
    pub(crate) fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.quarantined.len()).filter(|&s| self.quarantined[s]).collect()
    }

    /// Analog operators currently on `shard` (live or free-queued — a
    /// free-queued operator still occupies planes the migration must move
    /// or release).
    pub(crate) fn analog_ops_on(&self, shard: usize) -> Vec<(OperatorHandle, OperatorId)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.shard == shard)
            .filter_map(|(i, e)| match e.state {
                EntryState::Live(id) | EntryState::FreeQueued(id) => Some((OperatorHandle(i), id)),
                _ => None,
            })
            .collect()
    }

    /// The operator's matrix and mapping, for re-programming or digital
    /// fallback.
    pub(crate) fn matrix_and_mapping(
        &self,
        handle: OperatorHandle,
    ) -> Result<(Arc<Matrix>, TileMapping), RuntimeError> {
        self.entry(handle).map(|e| (e.matrix.clone(), e.mapping))
    }

    /// The healthy shard with the fewest live operators — where migrating
    /// operators go. `None` when every shard is quarantined.
    pub(crate) fn migration_target(&self) -> Option<usize> {
        (0..self.live_per_shard.len())
            .filter(|&s| !self.quarantined[s])
            .min_by_key(|&s| self.live_per_shard[s])
    }

    /// Rewrites a live/free-queued analog entry to its new home after
    /// migration, keeping the per-shard live counts consistent.
    pub(crate) fn relocate(
        &mut self,
        handle: OperatorHandle,
        new_shard: usize,
        new_id: OperatorId,
    ) {
        let old_shard = {
            let entry = self.entry_mut(handle).expect("relocating an allocated entry");
            let old = entry.shard;
            entry.state = match entry.state {
                EntryState::Live(_) => EntryState::Live(new_id),
                EntryState::FreeQueued(_) => EntryState::FreeQueued(new_id),
                state => unreachable!("relocating an operator in state {state:?}"),
            };
            entry.shard = new_shard;
            old
        };
        self.live_per_shard[old_shard] = self.live_per_shard[old_shard].saturating_sub(1);
        self.live_per_shard[new_shard] += 1;
    }

    /// Demotes a live/free-queued analog entry to the digital fallback
    /// path; returns the local id its old shard must release.
    pub(crate) fn demote_to_digital(&mut self, handle: OperatorHandle) -> Option<OperatorId> {
        let entry = self.entry_mut(handle).expect("demoting an allocated entry");
        match entry.state {
            EntryState::Live(id) => {
                entry.state = EntryState::LiveDigital;
                Some(id)
            }
            EntryState::FreeQueued(id) => {
                entry.state = EntryState::FreeQueuedDigital;
                Some(id)
            }
            _ => None,
        }
    }
}
