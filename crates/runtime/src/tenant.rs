//! Request identity and tenant accounting: who submitted what, and what
//! each tenant is allowed to keep in flight.
//!
//! Every submission mints a [`RequestId`] (threaded through the job and its
//! journal spans, so one request's causal chain survives coalescing and
//! work-stealing) and belongs to a [`TenantId`] — the default tenant for
//! the plain `submit_*` APIs, an explicit one through `submit_*_for`. Per
//! tenant the runtime tracks in-flight requests in every build (the
//! [`TenantQuota`] admission gate changes behavior, so it cannot live
//! behind the `telemetry` feature) and, with telemetry on, a latency
//! histogram plus the tenant's exact share of the hardware counters.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(feature = "telemetry")]
use gramc_telemetry::{HwCounters, LatencyHistogram};

/// Identity of one submitted request, unique per [`Runtime`](crate::Runtime)
/// lifetime (ids start at 1; 0 is reserved to mean "no request").
///
/// Coalesced riders each keep their own id — the id is what links a
/// rider's queue-wait span to the shared batch execution span in the
/// chrome trace (flow events keyed by the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Identity of a tenant (a workload sharing the runtime). Plain `submit_*`
/// calls run as [`TenantId::DEFAULT`]; `submit_*_for` names the tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant of the plain (tenant-less) submission APIs.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Fair-admission quota applied per tenant
/// ([`Runtime::with_tenant_quota`](crate::Runtime::with_tenant_quota)):
/// while a tenant already has `max_in_flight` unretired requests, its
/// further submissions are rejected with
/// [`RuntimeError::QueueFull`](crate::RuntimeError::QueueFull) — so one
/// tenant's flood backs up on *itself* before it can starve the others.
/// Riders joining a coalesced batch count too (each is a request holding a
/// result slot), unlike the global queue bound, which only meters queue
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Unretired requests one tenant may hold before rejection.
    pub max_in_flight: usize,
}

/// Live accounting state of one tenant. The in-flight gauge exists in
/// every build (it feeds the quota); the measurement side is
/// telemetry-only.
#[derive(Debug, Default)]
pub(crate) struct TenantEntry {
    /// Requests submitted and not yet answered (their slot unfilled).
    pub in_flight: AtomicU64,
    /// Requests ever admitted.
    pub requests: AtomicU64,
    /// Submissions rejected by the tenant quota.
    pub rejected: AtomicU64,
    /// Submit→complete latency of this tenant's requests.
    #[cfg(feature = "telemetry")]
    pub latency: LatencyHistogram,
    /// This tenant's exact share of the hardware counters (coalesced
    /// batches split proportionally to row counts, remainder-exact).
    #[cfg(feature = "telemetry")]
    pub hw: HwCounters,
}

impl TenantEntry {
    /// Tries to take one in-flight unit under `limit` (compare-loop, so
    /// concurrent submitters never overshoot). `None` admits always.
    pub fn try_acquire(&self, limit: Option<usize>) -> bool {
        match limit {
            None => {
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(limit) => self
                .in_flight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v < limit as u64).then_some(v + 1)
                })
                .is_ok(),
        }
    }

    /// Returns one in-flight unit (called exactly once per request, when
    /// its result slot is first filled — success, error and panic paths
    /// all end there).
    pub fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The runtime's tenant directory: entries are created on first contact
/// and never removed (tenant counts are small; `BTreeMap` keeps snapshot
/// order deterministic).
#[derive(Debug, Default)]
pub(crate) struct TenantTable {
    entries: Mutex<BTreeMap<TenantId, Arc<TenantEntry>>>,
}

impl TenantTable {
    /// The entry of `tenant`, created on first use.
    pub fn entry(&self, tenant: TenantId) -> Arc<TenantEntry> {
        self.entries.lock().expect("tenant lock").entry(tenant).or_default().clone()
    }

    /// Every tenant's entry, in `TenantId` order.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub fn entries(&self) -> Vec<(TenantId, Arc<TenantEntry>)> {
        self.entries.lock().expect("tenant lock").iter().map(|(&t, e)| (t, e.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_acquire_is_exact_at_the_bound() {
        let e = TenantEntry::default();
        assert!(e.try_acquire(Some(2)));
        assert!(e.try_acquire(Some(2)));
        assert!(!e.try_acquire(Some(2)), "third acquire exceeds the quota");
        e.release();
        assert!(e.try_acquire(Some(2)), "capacity frees on release");
        assert_eq!(e.in_flight.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unlimited_acquire_always_admits() {
        let e = TenantEntry::default();
        for _ in 0..100 {
            assert!(e.try_acquire(None));
        }
        assert_eq!(e.in_flight.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn table_hands_out_one_entry_per_tenant() {
        let t = TenantTable::default();
        let a = t.entry(TenantId(3));
        let b = t.entry(TenantId(3));
        assert!(Arc::ptr_eq(&a, &b));
        t.entry(TenantId(1));
        let order: Vec<u32> = t.entries().iter().map(|(id, _)| id.0).collect();
        assert_eq!(order, [1, 3], "deterministic id order");
    }
}
