//! Vendored, dependency-free stand-in for the subset of the `rand` crate API
//! that the gramc workspace uses: the [`Rng`] / [`SeedableRng`] traits and a
//! seedable [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so this workspace ships
//! its own implementation behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`). The generator is
//! xoshiro256**, seeded through SplitMix64 — not bit-compatible with the
//! real `StdRng` (ChaCha12), but deterministic, high-quality and fully
//! reproducible from a `u64` seed, which is all the simulator relies on.
//!
//! Supported surface:
//!
//! * `rng.gen::<f64>()` / `rng.gen::<u64>()` / `rng.gen::<bool>()`,
//! * `rng.gen_range(lo..hi)` for `f64` / `usize` / `u64` / `i64` / `u32` /
//!   `i32`, and `rng.gen_range(lo..=hi)` for the integer types,
//! * `StdRng::seed_from_u64(seed)` via the [`SeedableRng`] trait.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `rng.gen_range` (mirror of `rand::distributions
/// ::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range requires start < end");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased integer sampling in `[0, span)` by rejection (Lemire-style
/// threshold on the widening multiply).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the mapping exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($t:ty, $wide:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range requires start <= end");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    };
}

int_sample_range!(usize, u64);
int_sample_range!(u64, u64);
int_sample_range!(i64, u64);
int_sample_range!(u32, u32);
int_sample_range!(i32, i64);

/// The user-facing random-value API (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Offline stand-in for `rand::rngs::StdRng`: same name and seeding
    /// entry point, different (but statistically strong) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for si in s.iter_mut() {
                *si = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..3.5f64);
            assert!((-2.5..3.5).contains(&f));
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn works_through_unsized_bounds() {
        // The workspace uses `R: Rng + ?Sized` everywhere; make sure the
        // trait methods resolve through a &mut reference.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>() + rng.gen_range(0.0..1.0f64)
        }
        let mut rng = StdRng::seed_from_u64(10);
        let v = draw(&mut rng);
        assert!((0.0..2.0).contains(&v));
    }
}
