//! Transient simulation with single-pole op-amp dynamics.
//!
//! Each op-amp output is a state variable driven toward its soft-saturated
//! target:
//!
//! ```text
//! τ·dV_o/dt = V_sat·tanh( A·(v⁺ + V_os − v⁻) / V_sat ) − V_o
//! ```
//!
//! while the resistive network is solved algebraically at every evaluation
//! (the op-amp outputs act as voltage sources, so the system matrix is
//! constant and can be factored once).
//!
//! **Stiffness.** A closed feedback loop with open-loop gain `A` and
//! feedback factor `β` has a closed-loop pole at `≈ (1 + A·β)/τ` — for
//! `A = 10⁴` that is four orders of magnitude faster than `1/τ`, far beyond
//! any explicit integrator's stability region at reasonable step sizes. The
//! engine therefore integrates with **backward Euler + full Newton**
//! (A-stable), using a precomputed affine map from op-amp states to input
//! differentials: because the network is linear, `v⁺ − v⁻ = P·V + q` with a
//! constant matrix `P`, so Newton Jacobians are assembled in O(n²).
//!
//! **Growth-phase caveat.** Backward Euler is L-stable: it damps every mode
//! with `dt·λ ≫ 1`, including genuinely *growing* ones. Circuits that rely
//! on an unstable mode (the EGV loop, latches) must therefore resolve the
//! growth: keep `dt·λ_growth ≲ 0.3`, which in practice means using the
//! moderate open-loop gains of physically compensated amplifiers rather
//! than the 10⁵ "ideal" limit.
//!
//! This engine is what makes the EGV configuration work: the eigenvector
//! feedback loop is *neutrally* stable along the dominant eigenvector and
//! contracting along all others, so the DC solution is the useless zero
//! vector — the physical circuit instead grows the dominant mode until
//! amplifier saturation pins its amplitude, which the `tanh` reproduces.

use gramc_linalg::{LuDecomposition, Matrix};

use crate::dc::DcOperator;
use crate::error::CircuitError;
use crate::netlist::{Circuit, Node};

/// Default open-loop gain used in transient for "ideal" op-amps.
const IDEAL_TRANSIENT_GAIN: f64 = 1e5;

/// Integration parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientConfig {
    /// Backward-Euler step in seconds; `None` picks `min(τ)/5`.
    pub dt: Option<f64>,
    /// Simulation budget in seconds.
    pub t_max: f64,
    /// Relative settle tolerance on the slew `|target − V_o|`.
    pub settle_tol: f64,
    /// Record the full output trajectory (memory-heavy for large circuits).
    pub record_trajectory: bool,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self { dt: None, t_max: 500e-6, settle_tol: 1e-6, record_trajectory: false }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Final op-amp output voltages (one per op-amp, netlist order).
    pub outputs: Vec<f64>,
    /// Final voltages at every node.
    pub node_voltages: Vec<f64>,
    /// Whether the settle criterion was met before `t_max`.
    pub settled: bool,
    /// Simulated time at exit, in seconds.
    pub time: f64,
    /// Number of accepted steps.
    pub steps: usize,
    /// Number of dense Jacobian factorizations performed. The modified
    /// Newton iteration reuses one factorization across iterations and
    /// steps while `(dt, tanh-slope)` are stable, so this is typically far
    /// below the total Newton iteration count.
    pub factorizations: usize,
    /// Recorded `(t, outputs)` samples if requested.
    pub trajectory: Vec<(f64, Vec<f64>)>,
}

impl TransientResult {
    /// Voltage at `node` in the final state.
    pub fn voltage(&self, node: Node) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Voltages at several nodes in the final state.
    pub fn voltages(&self, nodes: &[Node]) -> Vec<f64> {
        nodes.iter().map(|&n| self.voltage(n)).collect()
    }
}

/// Pre-factored algebraic network for transient evaluation: a thin wrapper
/// over [`DcOperator`] in pinned-outputs mode (op-amp outputs act as voltage
/// sources carrying the integrator states; the matrix is factored once for
/// the whole run).
struct AlgebraicNetwork {
    op: DcOperator,
    base_rhs: Vec<f64>,
}

impl AlgebraicNetwork {
    fn build(circuit: &Circuit) -> Result<Self, CircuitError> {
        let op = DcOperator::new_pinned_outputs(circuit)?;
        if op.dim() == 0 {
            return Err(CircuitError::InvalidArgument("empty circuit"));
        }
        let base_rhs = op.rhs(circuit)?;
        Ok(Self { op, base_rhs })
    }

    /// Solves node voltages given the op-amp output states.
    fn solve(&self, states: &[f64]) -> Result<Vec<f64>, CircuitError> {
        self.op.solve_states(&self.base_rhs, states)
    }

    /// Batched homogeneous responses: column `j` of the result holds the
    /// node voltages (ground included, row 0) for unit state `e_j`. One
    /// multi-RHS substitution replaces `nop` sequential solves.
    fn solve_homogeneous_units(&self, nop: usize) -> Result<Matrix, CircuitError> {
        let dim = self.op.dim();
        let state_row0 = dim - nop; // op-amp rows are the trailing block
        let rhs = Matrix::from_fn(dim, nop, |i, j| if i == state_row0 + j { 1.0 } else { 0.0 });
        let x = self.op.solve_rhs_matrix(&rhs)?;
        let nv = self.op.unknown_nodes();
        let mut volts = Matrix::zeros(nv + 1, nop);
        for j in 0..nop {
            for i in 0..nv {
                volts[(i + 1, j)] = x[(i, j)];
            }
        }
        Ok(volts)
    }
}

/// The affine map from op-amp states to op-amp input differentials:
/// `Δv = P·V + q`, where `Δv_k = v⁺_k + V_os,k − v⁻_k`.
struct InputMap {
    p: Matrix,
    q: Vec<f64>,
}

impl InputMap {
    fn build(circuit: &Circuit, net: &AlgebraicNetwork) -> Result<Self, CircuitError> {
        let nop = circuit.opamps.len();
        let extract = |volts: &[f64]| -> Vec<f64> {
            circuit
                .opamps
                .iter()
                .map(|e| volts[e.inp.index()] + e.model.offset - volts[e.inn.index()])
                .collect()
        };
        let zero_states = vec![0.0; nop];
        let q = extract(&net.solve(&zero_states)?);
        // Homogeneous responses (sources off, offset excluded) give the pure
        // state-to-input coupling, all unit states in one multi-RHS solve.
        let volts = net.solve_homogeneous_units(nop)?;
        let mut p = Matrix::zeros(nop, nop);
        for j in 0..nop {
            for (k, e) in circuit.opamps.iter().enumerate() {
                p[(k, j)] = volts[(e.inp.index(), j)] - volts[(e.inn.index(), j)];
            }
        }
        Ok(Self { p, q })
    }

    fn differentials(&self, states: &[f64]) -> Vec<f64> {
        let mut d = self.p.matvec(states);
        for (di, qi) in d.iter_mut().zip(&self.q) {
            *di += qi;
        }
        d
    }
}

/// Runs a transient simulation from the given initial op-amp output state
/// (pass zeros — or a small random perturbation for circuits like EGV whose
/// zero state is an unstable/neutral fixed point).
///
/// # Errors
///
/// * [`CircuitError::ShapeMismatch`] if `initial_outputs.len()` differs from
///   the op-amp count.
/// * [`CircuitError::SingularSystem`] if the resistive network is ill-posed.
/// * [`CircuitError::NoSettle`] if a Newton iteration fails to converge even
///   after step-size reduction.
/// * [`CircuitError::InvalidArgument`] for an empty circuit or non-positive
///   step.
pub fn transient_solve(
    circuit: &Circuit,
    initial_outputs: &[f64],
    config: &TransientConfig,
) -> Result<TransientResult, CircuitError> {
    let nop = circuit.opamps.len();
    if initial_outputs.len() != nop {
        return Err(CircuitError::ShapeMismatch { expected: nop, found: initial_outputs.len() });
    }
    let net = AlgebraicNetwork::build(circuit)?;
    if nop == 0 {
        let node_voltages = net.solve(&[])?;
        return Ok(TransientResult {
            outputs: Vec::new(),
            node_voltages,
            settled: true,
            time: 0.0,
            steps: 0,
            factorizations: 0,
            trajectory: Vec::new(),
        });
    }
    let map = InputMap::build(circuit, &net)?;

    let gains: Vec<f64> =
        circuit.opamps.iter().map(|o| o.model.gain.unwrap_or(IDEAL_TRANSIENT_GAIN)).collect();
    let taus: Vec<f64> = circuit.opamps.iter().map(|o| o.model.tau).collect();
    let sats: Vec<f64> = circuit.opamps.iter().map(|o| o.model.v_sat).collect();
    let tau_min = taus.iter().copied().fold(f64::INFINITY, f64::min).min(config.t_max);
    let dt0 = config.dt.unwrap_or(tau_min / 5.0);
    if !(dt0 > 0.0) {
        return Err(CircuitError::InvalidArgument("non-positive transient step"));
    }

    // f(V) and the tanh-slope diagonal at V.
    let eval = |states: &[f64]| -> (Vec<f64>, Vec<f64>) {
        let d = map.differentials(states);
        let mut f = Vec::with_capacity(nop);
        let mut slope = Vec::with_capacity(nop);
        for k in 0..nop {
            let u = gains[k] * d[k] / sats[k];
            let target = sats[k] * u.tanh();
            let sech2 = 1.0 - u.tanh() * u.tanh();
            f.push((target - states[k]) / taus[k]);
            slope.push(gains[k] * sech2);
        }
        (f, slope)
    };

    let mut state = initial_outputs.to_vec();
    let mut t = 0.0;
    let mut steps = 0usize;
    let mut trajectory = Vec::new();
    let mut settled = false;
    let mut dt = dt0;
    let max_steps = ((config.t_max / dt0).ceil() as usize).saturating_mul(8).max(16);

    // Modified Newton: the backward-Euler Jacobian depends only on the step
    // size and the tanh-slope diagonal, and during settling the slopes
    // barely move between iterations *and* steps. Cache one factorization
    // and reuse it while `(dt, slope)` stay within a relative drift bound —
    // a 10% stale Jacobian still contracts the iteration comfortably, the
    // convergence test is on the residual (so accepted states satisfy the
    // same 1e-12 tolerance either way), and a stalled solve falls back to
    // fresh factorizations before conceding the step size.
    const SLOPE_REUSE_RTOL: f64 = 0.1;
    struct FactorCache {
        dt: f64,
        slope: Vec<f64>,
        lu: LuDecomposition,
    }
    let mut cache: Option<FactorCache> = None;
    let mut factorizations = 0usize;
    let mut jac = Matrix::zeros(nop, nop);
    // One fresh-factorization retry per step attempt before conceding the
    // step size (see the non-convergence handling below).
    let mut fresh_retry = false;

    while t < config.t_max && steps < max_steps {
        if config.record_trajectory {
            trajectory.push((t, state.clone()));
        }
        // Backward Euler: solve W = state + dt·f(W) by (modified) Newton.
        let mut w = state.clone();
        let mut converged = false;
        let mut reused_stale = false;
        'newton: for _newton in 0..40 {
            let (f, slope) = eval(&w);
            // Residual R = W − state − dt·f(W).
            let mut r: Vec<f64> = (0..nop).map(|k| w[k] - state[k] - dt * f[k]).collect();
            let rnorm = r.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            let wscale = w.iter().fold(1e-9_f64, |m, v| m.max(v.abs()));
            if rnorm <= 1e-12 * wscale.max(1.0) {
                converged = true;
                break;
            }
            let reusable = cache.as_ref().is_some_and(|c| {
                c.dt == dt
                    && c.slope
                        .iter()
                        .zip(&slope)
                        .all(|(a, b)| (a - b).abs() <= SLOPE_REUSE_RTOL * a.abs().max(1.0))
            });
            if reusable {
                reused_stale = true;
            } else {
                // Jacobian: I − dt·diag(1/τ)(diag(slope)·P − I), assembled
                // into the preallocated buffer.
                for i in 0..nop {
                    for j in 0..nop {
                        let dfij = slope[i] * map.p[(i, j)] / taus[i]
                            - if i == j { 1.0 / taus[i] } else { 0.0 };
                        jac[(i, j)] = if i == j { 1.0 } else { 0.0 } - dt * dfij;
                    }
                }
                match LuDecomposition::new(&jac) {
                    Ok(lu) => {
                        factorizations += 1;
                        cache = Some(FactorCache { dt, slope, lu });
                    }
                    Err(_) => {
                        cache = None;
                        break 'newton;
                    }
                }
            }
            let lu = &cache.as_ref().expect("factorization cached above").lu;
            for ri in r.iter_mut() {
                *ri = -*ri;
            }
            match lu.solve(&r) {
                Ok(delta) => {
                    for (wi, di) in w.iter_mut().zip(&delta) {
                        *wi += di;
                    }
                }
                Err(_) => break,
            }
        }
        if !converged {
            if reused_stale && !fresh_retry {
                // A stale Jacobian, not the step size, may be what stalled
                // Newton: redo this step once with fresh factorizations
                // before shrinking dt.
                cache = None;
                fresh_retry = true;
                continue;
            }
            // Halve the step; give up below a floor.
            dt *= 0.5;
            fresh_retry = false;
            if dt < dt0 * 1e-4 {
                return Err(CircuitError::NoSettle { simulated_time: t, residual: f64::NAN });
            }
            continue;
        }
        fresh_retry = false;
        state = w;
        t += dt;
        steps += 1;
        dt = (dt * 1.5).min(dt0);

        // Settle check: residual slew relative to the output scale.
        let (f, _) = eval(&state);
        let scale = state.iter().fold(1e-9_f64, |m, v| m.max(v.abs()));
        let slew = f.iter().zip(&taus).map(|(fk, tk)| (fk * tk).abs()).fold(0.0_f64, f64::max);
        if slew <= config.settle_tol * scale {
            settled = true;
            break;
        }
    }

    let node_voltages = net.solve(&state)?;
    Ok(TransientResult {
        outputs: state,
        node_voltages,
        settled,
        time: t,
        steps,
        factorizations,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_solve;
    use crate::netlist::OpampModel;

    fn inverting_amp(gain_r: f64) -> (Circuit, Node) {
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.2);
        c.conductance(vin, inn, 1e-3);
        c.conductance(out, inn, 1e-3 / gain_r);
        c.opamp(Circuit::GROUND, inn, out, OpampModel::with_gain(1e4));
        (c, out)
    }

    #[test]
    fn transient_settles_to_dc_solution() {
        let (c, out) = inverting_amp(2.0);
        let dc = dc_solve(&c).unwrap();
        let tr = transient_solve(&c, &[0.0], &TransientConfig::default()).unwrap();
        assert!(tr.settled, "did not settle: {tr:?}");
        assert!(
            (tr.voltage(out) - dc.voltage(out)).abs() < 1e-4,
            "transient {} vs dc {}",
            tr.voltage(out),
            dc.voltage(out)
        );
    }

    #[test]
    fn high_gain_loop_is_integrated_stably() {
        // Gain 10⁵ loop: closed-loop pole ~10⁵/τ — hopeless for explicit
        // integrators at dt = τ/5, routine for backward Euler.
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.1);
        c.conductance(vin, inn, 1e-3);
        c.conductance(out, inn, 1e-3);
        c.opamp(Circuit::GROUND, inn, out, OpampModel::ideal());
        let tr = transient_solve(&c, &[0.0], &TransientConfig::default()).unwrap();
        assert!(tr.settled);
        assert!((tr.outputs[0] + 0.1).abs() < 1e-4, "output {}", tr.outputs[0]);
    }

    #[test]
    fn settle_time_scales_with_tau() {
        let mut times = Vec::new();
        for tau in [50e-9, 200e-9] {
            let mut c = Circuit::new();
            let vin = c.node();
            let inn = c.node();
            let out = c.node();
            c.voltage_source(vin, Circuit::GROUND, 0.2);
            c.conductance(vin, inn, 1e-3);
            c.conductance(out, inn, 1e-3);
            c.opamp(
                Circuit::GROUND,
                inn,
                out,
                OpampModel { gain: Some(1e4), offset: 0.0, tau, v_sat: 1.2 },
            );
            let tr = transient_solve(&c, &[0.0], &TransientConfig::default()).unwrap();
            assert!(tr.settled);
            times.push(tr.time);
        }
        assert!(times[1] > 2.0 * times[0], "{times:?}");
    }

    #[test]
    fn saturation_clips_output() {
        // Inverting amp with huge closed-loop gain driving past the rails.
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.5);
        c.conductance(vin, inn, 1e-3);
        c.conductance(out, inn, 1e-5);
        c.opamp(Circuit::GROUND, inn, out, OpampModel::with_gain(1e4));
        let tr = transient_solve(&c, &[0.0], &TransientConfig::default()).unwrap();
        assert!(tr.outputs[0].abs() <= 1.2 + 1e-9, "output {}", tr.outputs[0]);
        assert!(tr.outputs[0] < -1.0, "should be pinned near the negative rail");
    }

    #[test]
    fn unstable_positive_feedback_grows_to_rail() {
        // Loop gain 2 (gain 4, β = 1/2): the unstable time constant is τ,
        // well resolved by dt = τ/5. (Backward Euler would misrepresent a
        // gain-fast instability — see module docs — so growth-phase circuits
        // use physically compensated, moderate gains.)
        let mut c = Circuit::new();
        let inp = c.node();
        let out = c.node();
        c.conductance(out, inp, 1e-3);
        c.conductance(inp, Circuit::GROUND, 1e-3);
        c.opamp(inp, Circuit::GROUND, out, OpampModel::with_gain(4.0));
        let tr = transient_solve(&c, &[1e-6], &TransientConfig::default()).unwrap();
        assert!(tr.outputs[0] > 1.0, "latched output {}", tr.outputs[0]);
    }

    #[test]
    fn jacobian_factorizations_are_reused_across_steps() {
        // A finely-stepped settling run spends almost every step with a
        // near-constant tanh slope and a fixed dt, so the modified Newton
        // must get by with far fewer factorizations than accepted steps —
        // the old full-Newton path paid one per iteration (≥ steps).
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.2);
        c.conductance(vin, inn, 1e-3);
        c.conductance(out, inn, 5e-4);
        c.opamp(
            Circuit::GROUND,
            inn,
            out,
            OpampModel { gain: Some(10.0), offset: 0.0, tau: 100e-9, v_sat: 1.2 },
        );
        let cfg = TransientConfig { dt: Some(5e-9), ..Default::default() };
        let tr = transient_solve(&c, &[0.0], &cfg).unwrap();
        assert!(tr.settled);
        assert!(tr.steps > 20, "expected a long settling run, got {} steps", tr.steps);
        assert!(
            tr.factorizations * 2 < tr.steps,
            "{} factorizations over {} steps",
            tr.factorizations,
            tr.steps
        );
    }

    #[test]
    fn trajectory_is_recorded_when_requested() {
        let (c, _) = inverting_amp(1.0);
        let cfg = TransientConfig { record_trajectory: true, ..Default::default() };
        let tr = transient_solve(&c, &[0.0], &cfg).unwrap();
        assert!(tr.trajectory.len() > 2, "{} samples", tr.trajectory.len());
        assert_eq!(tr.trajectory[0].1.len(), 1);
    }

    #[test]
    fn wrong_initial_state_length_is_rejected() {
        let (c, _) = inverting_amp(1.0);
        assert!(matches!(
            transient_solve(&c, &[0.0, 0.0], &TransientConfig::default()),
            Err(CircuitError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn no_settle_is_reported_honestly() {
        let (c, _) = inverting_amp(1.0);
        let cfg = TransientConfig { t_max: 1e-9, dt: Some(1e-9), ..Default::default() };
        let tr = transient_solve(&c, &[0.0], &cfg).unwrap();
        assert!(!tr.settled);
    }

    #[test]
    fn opamp_free_circuit_solves_algebraically() {
        let mut c = Circuit::new();
        let n = c.node();
        c.current_source(Circuit::GROUND, n, 1e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        let tr = transient_solve(&c, &[], &TransientConfig::default()).unwrap();
        assert!(tr.settled);
        assert!((tr.voltage(n) - 1.0).abs() < 1e-12);
    }
}
