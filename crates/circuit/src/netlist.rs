//! Netlist construction: nodes, passive elements, sources and op-amps.
//!
//! The AMC macro's reconfigurability (paper Fig. 2) is modelled by building a
//! different netlist from the same component inventory for each computing
//! mode — exactly what the register-array-controlled transmission gates do in
//! hardware.

use crate::error::CircuitError;

/// Handle to a circuit node. [`Circuit::GROUND`] is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Raw index of this node (0 is ground).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Behavioural op-amp model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampModel {
    /// Open-loop DC gain; `None` models the ideal infinite-gain limit.
    pub gain: Option<f64>,
    /// Input-referred offset voltage in volts (added to the v⁺ input).
    pub offset: f64,
    /// Single-pole time constant in seconds (used by the transient engine).
    pub tau: f64,
    /// Output saturation voltage in volts (soft-clipped in transient).
    pub v_sat: f64,
}

impl Default for OpampModel {
    fn default() -> Self {
        Self { gain: None, offset: 0.0, tau: 100e-9, v_sat: 1.2 }
    }
}

impl OpampModel {
    /// An ideal op-amp: infinite gain, no offset.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A finite-gain op-amp with the given open-loop gain.
    pub fn with_gain(gain: f64) -> Self {
        Self { gain: Some(gain), ..Self::default() }
    }

    /// Returns this model with the given input offset voltage.
    pub fn offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }
}

/// A two-terminal conductance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ConductanceElem {
    pub a: Node,
    pub b: Node,
    pub g: f64,
}

/// An independent current source driving `i` amperes into node `into`
/// (and out of node `from`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CurrentSourceElem {
    pub from: Node,
    pub into: Node,
    pub i: f64,
}

/// An independent voltage source: `v(plus) − v(minus) = v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct VoltageSourceElem {
    pub plus: Node,
    pub minus: Node,
    pub v: f64,
}

/// An op-amp: output `out` driven so the model equation holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OpampElem {
    pub inp: Node,
    pub inn: Node,
    pub out: Node,
    pub model: OpampModel,
}

/// Handle to a voltage source, for updating its value between solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoltageSourceId(pub(crate) usize);

/// Handle to a current source, for updating its value between solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrentSourceId(pub(crate) usize);

/// Handle to an op-amp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpampId(pub(crate) usize);

/// A linear analog circuit under construction.
///
/// # Examples
///
/// Voltage divider:
///
/// ```
/// use gramc_circuit::{Circuit, dc_solve};
///
/// # fn main() -> Result<(), gramc_circuit::CircuitError> {
/// let mut c = Circuit::new();
/// let top = c.node();
/// let mid = c.node();
/// c.voltage_source(top, Circuit::GROUND, 1.0);
/// c.conductance(top, mid, 1e-3);
/// c.conductance(mid, Circuit::GROUND, 1e-3);
/// let sol = dc_solve(&c)?;
/// assert!((sol.voltage(mid) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_count: usize, // includes ground
    pub(crate) conductances: Vec<ConductanceElem>,
    pub(crate) current_sources: Vec<CurrentSourceElem>,
    pub(crate) voltage_sources: Vec<VoltageSourceElem>,
    pub(crate) opamps: Vec<OpampElem>,
}

impl Circuit {
    /// The reference (ground) node.
    pub const GROUND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self { node_count: 1, ..Self::default() }
    }

    /// Allocates a new node.
    pub fn node(&mut self) -> Node {
        let n = Node(self.node_count);
        self.node_count += 1;
        n
    }

    /// Allocates `n` new nodes.
    pub fn nodes(&mut self, n: usize) -> Vec<Node> {
        (0..n).map(|_| self.node()).collect()
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of op-amps.
    pub fn opamp_count(&self) -> usize {
        self.opamps.len()
    }

    fn check(&self, node: Node) -> Result<(), CircuitError> {
        if node.0 >= self.node_count {
            Err(CircuitError::InvalidNode { node: node.0, node_count: self.node_count })
        } else {
            Ok(())
        }
    }

    /// Adds a conductance of `g` siemens between `a` and `b`.
    ///
    /// Zero conductances are accepted and ignored at stamp time, so callers
    /// can wire full crossbar grids without special-casing empty cells.
    ///
    /// # Panics
    ///
    /// Panics if a node does not belong to this circuit or `g < 0`.
    pub fn conductance(&mut self, a: Node, b: Node, g: f64) {
        self.check(a).expect("conductance node a");
        self.check(b).expect("conductance node b");
        assert!(g >= 0.0 && g.is_finite(), "conductance must be finite and non-negative");
        self.conductances.push(ConductanceElem { a, b, g });
    }

    /// Adds a resistor of `r` ohms between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `r <= 0` or a node is invalid.
    pub fn resistor(&mut self, a: Node, b: Node, r: f64) {
        assert!(r > 0.0, "resistance must be positive");
        self.conductance(a, b, 1.0 / r);
    }

    /// Adds a current source driving `i` amperes into `into` and out of
    /// `from`. Returns a handle for later updates.
    ///
    /// # Panics
    ///
    /// Panics if a node is invalid.
    pub fn current_source(&mut self, from: Node, into: Node, i: f64) -> CurrentSourceId {
        self.check(from).expect("current source node");
        self.check(into).expect("current source node");
        self.current_sources.push(CurrentSourceElem { from, into, i });
        CurrentSourceId(self.current_sources.len() - 1)
    }

    /// Adds an ideal voltage source with `v(plus) − v(minus) = v`.
    /// Returns a handle for later updates.
    ///
    /// # Panics
    ///
    /// Panics if a node is invalid.
    pub fn voltage_source(&mut self, plus: Node, minus: Node, v: f64) -> VoltageSourceId {
        self.check(plus).expect("voltage source node");
        self.check(minus).expect("voltage source node");
        self.voltage_sources.push(VoltageSourceElem { plus, minus, v });
        VoltageSourceId(self.voltage_sources.len() - 1)
    }

    /// Adds an op-amp with non-inverting input `inp`, inverting input `inn`
    /// and output `out`.
    ///
    /// # Panics
    ///
    /// Panics if a node is invalid.
    pub fn opamp(&mut self, inp: Node, inn: Node, out: Node, model: OpampModel) -> OpampId {
        self.check(inp).expect("opamp inp");
        self.check(inn).expect("opamp inn");
        self.check(out).expect("opamp out");
        self.opamps.push(OpampElem { inp, inn, out, model });
        OpampId(self.opamps.len() - 1)
    }

    /// Convenience: a transimpedance amplifier on `input_node` — op-amp with
    /// grounded non-inverting input and feedback conductance `g_f` from the
    /// output back to `input_node` (its virtual ground). Returns the output
    /// node.
    pub fn tia(&mut self, input_node: Node, g_f: f64, model: OpampModel) -> Node {
        let out = self.node();
        self.opamp(Self::GROUND, input_node, out, model);
        self.conductance(out, input_node, g_f);
        out
    }

    /// Convenience: a unity-gain analog inverter reading `input` through
    /// conductance `g_u` with an equal feedback conductance. Returns the
    /// output node carrying `−v(input)`.
    ///
    /// These are the "analog inverters" the paper's OPA bank reconfigures
    /// into for matrices with negative coefficients.
    pub fn inverter(&mut self, input: Node, g_u: f64, model: OpampModel) -> Node {
        let inn = self.node();
        let out = self.node();
        self.conductance(input, inn, g_u);
        self.conductance(out, inn, g_u);
        self.opamp(Self::GROUND, inn, out, model);
        out
    }

    /// Updates the value of a voltage source.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (from another circuit).
    pub fn set_voltage(&mut self, id: VoltageSourceId, v: f64) {
        self.voltage_sources[id.0].v = v;
    }

    /// Updates the value of a current source.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (from another circuit).
    pub fn set_current(&mut self, id: CurrentSourceId, i: f64) {
        self.current_sources[id.0].i = i;
    }

    /// Updates an op-amp's model (e.g. to inject a sampled offset).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn set_opamp_model(&mut self, id: OpampId, model: OpampModel) {
        self.opamps[id.0].model = model;
    }

    /// Handles to all op-amps, in insertion order.
    pub fn opamp_ids(&self) -> Vec<OpampId> {
        (0..self.opamps.len()).map(OpampId).collect()
    }

    /// The model of an op-amp.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn opamp_model(&self, id: OpampId) -> OpampModel {
        self.opamps[id.0].model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_allocated_sequentially() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.nodes(3).len(), 3);
        assert_eq!(c.node_count(), 6);
    }

    #[test]
    #[should_panic(expected = "conductance node")]
    fn foreign_node_panics() {
        let mut c1 = Circuit::new();
        let mut c2 = Circuit::new();
        let far = c2.nodes(5)[4];
        c1.conductance(Circuit::GROUND, far, 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_conductance_panics() {
        let mut c = Circuit::new();
        let a = c.node();
        c.conductance(a, Circuit::GROUND, -1.0);
    }

    #[test]
    fn source_values_can_be_updated() {
        let mut c = Circuit::new();
        let a = c.node();
        let vs = c.voltage_source(a, Circuit::GROUND, 1.0);
        let is = c.current_source(Circuit::GROUND, a, 1e-6);
        c.set_voltage(vs, 2.0);
        c.set_current(is, 2e-6);
        assert_eq!(c.voltage_sources[0].v, 2.0);
        assert_eq!(c.current_sources[0].i, 2e-6);
    }

    #[test]
    fn opamp_model_builders() {
        let m = OpampModel::with_gain(1e4).offset(1e-3);
        assert_eq!(m.gain, Some(1e4));
        assert_eq!(m.offset, 1e-3);
        assert_eq!(OpampModel::ideal().gain, None);
    }
}
