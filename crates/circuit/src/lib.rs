//! # gramc-circuit
//!
//! Analog circuit simulator for the GRAMC macro: modified nodal analysis
//! (MNA) over conductances, sources and behavioural op-amps, with a DC
//! operating-point solver and a single-pole transient engine with output
//! saturation.
//!
//! The crate's centerpiece is [`topology`]: builders for the four
//! reconfigurable AMC circuit configurations of the paper — MVM, INV, PINV
//! and EGV — wired from the same component inventory exactly as the
//! register-array-controlled transmission gates reconfigure the hardware
//! macro (paper Fig. 2).
//!
//! # Examples
//!
//! One-step solution of `A·x = b` with the INV configuration:
//!
//! ```
//! use gramc_circuit::{topology, dc_solve, OpampModel};
//! use gramc_linalg::Matrix;
//!
//! # fn main() -> Result<(), gramc_circuit::CircuitError> {
//! // A = [[2, -0.5], [-0.5, 1.5]] mapped at 50 µS per matrix unit.
//! let unit = 50e-6;
//! let a = Matrix::from_rows(&[&[2.0, -0.5], &[-0.5, 1.5]]);
//! let g_pos = a.map(|v| if v > 0.0 { v * unit + 1e-6 } else { 1e-6 });
//! let g_neg = a.map(|v| if v < 0.0 { -v * unit + 1e-6 } else { 1e-6 });
//! let b = [0.4, -0.2];
//! let v_unit = 0.1; // volts per solution unit
//! let i_in: Vec<f64> = b.iter().map(|bi| -unit * bi * v_unit).collect();
//! let t = topology::build_inv(&g_pos, &g_neg, &i_in, OpampModel::ideal())?;
//! let sol = dc_solve(&t.circuit)?;
//! let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
//! assert!((2.0 * x[0] - 0.5 * x[1] - 0.4).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dc;
mod error;
pub mod export;
mod netlist;
pub mod topology;
mod transient;

pub use dc::{dc_solve, DcOperator, DcSolution};
pub use error::CircuitError;
pub use export::to_spice;
pub use netlist::{Circuit, CurrentSourceId, Node, OpampId, OpampModel, VoltageSourceId};
pub use transient::{transient_solve, TransientConfig, TransientResult};
