//! Error type for the analog circuit simulator.

use std::error::Error;
use std::fmt;

use gramc_linalg::LinalgError;

/// Errors produced by netlist construction and circuit solves.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A node handle does not belong to this circuit.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the circuit.
        node_count: usize,
    },
    /// The nodal system is singular — typically a floating node or an
    /// over-constrained opamp loop.
    SingularSystem,
    /// The transient integration did not settle within its time budget.
    NoSettle {
        /// Simulated time reached, in seconds.
        simulated_time: f64,
        /// Residual slew measure at the end.
        residual: f64,
    },
    /// A vector argument had the wrong length.
    ShapeMismatch {
        /// Required length.
        expected: usize,
        /// Supplied length.
        found: usize,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument(&'static str),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidNode { node, node_count } => {
                write!(f, "node {node} does not exist (circuit has {node_count} nodes)")
            }
            CircuitError::SingularSystem => {
                write!(f, "singular nodal system (floating node or ill-posed feedback)")
            }
            CircuitError::NoSettle { simulated_time, residual } => write!(
                f,
                "transient did not settle within {simulated_time:.3e} s (residual {residual:.3e})"
            ),
            CircuitError::ShapeMismatch { expected, found } => {
                write!(f, "expected a vector of length {expected}, found {found}")
            }
            CircuitError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for CircuitError {}

impl From<LinalgError> for CircuitError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular { .. } => CircuitError::SingularSystem,
            _ => CircuitError::InvalidArgument("linear algebra failure in circuit solve"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::InvalidNode { node: 9, node_count: 4 };
        assert!(e.to_string().contains('9'));
        let e = CircuitError::NoSettle { simulated_time: 1e-6, residual: 0.5 };
        assert!(e.to_string().contains("settle"));
    }

    #[test]
    fn converts_from_linalg_singular() {
        let e: CircuitError = LinalgError::Singular { pivot: 0 }.into();
        assert_eq!(e, CircuitError::SingularSystem);
    }
}
