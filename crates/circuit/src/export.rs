//! SPICE-style netlist export.
//!
//! Dumps a [`Circuit`] as a SPICE-like deck so the AMC configurations can be
//! inspected, diffed, or ported to an external simulator. Op-amps are
//! emitted as `E` (VCVS) elements with their open-loop gain (ideal op-amps
//! use a large finite gain, annotated); the mapping is lossy only in that
//! dynamic op-amp parameters (τ, V_sat) become comments.

use std::fmt::Write as _;

use crate::netlist::Circuit;

/// Gain used to represent "ideal" op-amps in the exported deck.
const EXPORT_IDEAL_GAIN: f64 = 1e7;

/// Renders the circuit as a SPICE-like netlist deck.
///
/// Node 0 is ground, matching SPICE convention.
pub fn to_spice(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    let _ = writeln!(
        out,
        "* exported by gramc-circuit: {} nodes, {} conductances, {} sources, {} op-amps",
        circuit.node_count,
        circuit.conductances.len(),
        circuit.current_sources.len() + circuit.voltage_sources.len(),
        circuit.opamps.len()
    );
    for (k, e) in circuit.conductances.iter().enumerate() {
        if e.g == 0.0 {
            continue;
        }
        let _ = writeln!(out, "R{k} {} {} {:.6e}", e.a.index(), e.b.index(), 1.0 / e.g);
    }
    for (k, e) in circuit.voltage_sources.iter().enumerate() {
        let _ = writeln!(out, "V{k} {} {} DC {:.6e}", e.plus.index(), e.minus.index(), e.v);
    }
    for (k, e) in circuit.current_sources.iter().enumerate() {
        // SPICE I convention: current flows from the first node through the
        // source to the second, so `from into` injects into `into`.
        let _ = writeln!(out, "I{k} {} {} DC {:.6e}", e.from.index(), e.into.index(), e.i);
    }
    for (k, e) in circuit.opamps.iter().enumerate() {
        let gain = e.model.gain.unwrap_or(EXPORT_IDEAL_GAIN);
        let ideal = if e.model.gain.is_none() { " (ideal)" } else { "" };
        let _ = writeln!(
            out,
            "* op-amp {k}{ideal}: tau={:.3e}s vsat={:.2}V offset={:.3e}V",
            e.model.tau, e.model.v_sat, e.model.offset
        );
        let _ = writeln!(
            out,
            "E{k} {} 0 {} {} {:.6e}",
            e.out.index(),
            e.inp.index(),
            e.inn.index(),
            gain
        );
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpampModel;

    #[test]
    fn exports_all_element_kinds() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.voltage_source(a, Circuit::GROUND, 1.5);
        c.conductance(a, b, 1e-3);
        c.current_source(Circuit::GROUND, b, 2e-6);
        let out = c.tia(b, 1e-4, OpampModel::with_gain(1e4));
        let deck = to_spice(&c, "unit test deck");
        assert!(deck.starts_with("* unit test deck"));
        assert!(deck.contains("R0 1 2 1.000000e3"), "{deck}");
        assert!(deck.contains("V0 1 0 DC 1.5"), "{deck}");
        assert!(deck.contains("I0 0 2 DC 2.0"), "{deck}");
        assert!(deck.contains(&format!("E0 {} 0 0 2 1.000000e4", out.index())), "{deck}");
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn zero_conductances_are_skipped() {
        let mut c = Circuit::new();
        let a = c.node();
        c.conductance(a, Circuit::GROUND, 0.0);
        c.conductance(a, Circuit::GROUND, 1e-3);
        let deck = to_spice(&c, "zeros");
        // Only the non-zero branch appears (named by insertion index).
        assert!(!deck.contains("R0 "), "{deck}");
        assert!(deck.contains("R1 "), "{deck}");
    }

    #[test]
    fn ideal_opamps_are_annotated() {
        let mut c = Circuit::new();
        let n = c.node();
        c.tia(n, 1e-4, OpampModel::ideal());
        let deck = to_spice(&c, "ideal");
        assert!(deck.contains("(ideal)"));
        assert!(deck.contains("1.000000e7"));
    }

    #[test]
    fn amc_topology_exports_cleanly() {
        use gramc_linalg::Matrix;
        let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 2.0]]);
        let gp = a.map(|v| if v > 0.0 { v * 40e-6 + 1e-6 } else { 1e-6 });
        let gn = a.map(|v| if v < 0.0 { -v * 40e-6 + 1e-6 } else { 1e-6 });
        let t = crate::topology::build_inv(&gp, &gn, &[1e-6, -2e-6], OpampModel::ideal()).unwrap();
        let deck = to_spice(&t.circuit, "INV 2x2");
        // 2 rows × (2 pos + 2 neg) crossbar conductances + 2 inverters × 2 = 12 R lines.
        let r_lines = deck.lines().filter(|l| l.starts_with('R')).count();
        assert_eq!(r_lines, 12, "{deck}");
        let e_lines = deck.lines().filter(|l| l.starts_with('E')).count();
        assert_eq!(e_lines, 4); // 2 row amps + 2 inverters
    }
}
