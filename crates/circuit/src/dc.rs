//! DC operating-point solver via modified nodal analysis (MNA).
//!
//! Unknowns are the non-ground node voltages plus one branch current per
//! voltage source and per op-amp output. Op-amps stamp their behavioural
//! constraint directly:
//!
//! * ideal:        `v⁺ + V_os − v⁻ = 0`
//! * finite gain:  `v_out − A·(v⁺ + V_os − v⁻) = 0`

use gramc_linalg::{LuDecomposition, Matrix};

use crate::error::CircuitError;
use crate::netlist::{Circuit, Node};

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    node_voltages: Vec<f64>, // index 0 = ground = 0.0
    branch_currents: Vec<f64>,
    vsrc_count: usize,
}

impl DcSolution {
    /// Voltage at `node` in volts.
    pub fn voltage(&self, node: Node) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Voltages at several nodes.
    pub fn voltages(&self, nodes: &[Node]) -> Vec<f64> {
        nodes.iter().map(|&n| self.voltage(n)).collect()
    }

    /// Current through the `k`-th voltage source (positive into its `plus`
    /// terminal from the circuit).
    pub fn voltage_source_current(&self, k: usize) -> f64 {
        self.branch_currents[k]
    }

    /// Output current supplied by the `k`-th op-amp.
    pub fn opamp_output_current(&self, k: usize) -> f64 {
        self.branch_currents[self.vsrc_count + k]
    }
}

/// Solves the DC operating point of `circuit`.
///
/// # Errors
///
/// * [`CircuitError::SingularSystem`] for floating nodes or ill-posed
///   feedback (e.g. an op-amp whose inputs are not connected to anything).
pub fn dc_solve(circuit: &Circuit) -> Result<DcSolution, CircuitError> {
    let nv = circuit.node_count - 1; // unknown node voltages (ground excluded)
    let nvs = circuit.voltage_sources.len();
    let nop = circuit.opamps.len();
    let dim = nv + nvs + nop;
    if dim == 0 {
        return Ok(DcSolution {
            node_voltages: vec![0.0],
            branch_currents: Vec::new(),
            vsrc_count: 0,
        });
    }
    let mut a = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];

    // Map node -> MNA row/col (ground has none).
    let idx = |n: Node| -> Option<usize> { if n.index() == 0 { None } else { Some(n.index() - 1) } };

    for e in &circuit.conductances {
        if e.g == 0.0 {
            continue;
        }
        match (idx(e.a), idx(e.b)) {
            (Some(i), Some(j)) => {
                a[(i, i)] += e.g;
                a[(j, j)] += e.g;
                a[(i, j)] -= e.g;
                a[(j, i)] -= e.g;
            }
            (Some(i), None) | (None, Some(i)) => a[(i, i)] += e.g,
            (None, None) => {}
        }
    }

    for e in &circuit.current_sources {
        if let Some(i) = idx(e.into) {
            rhs[i] += e.i;
        }
        if let Some(i) = idx(e.from) {
            rhs[i] -= e.i;
        }
    }

    // Voltage sources: branch current unknown k flows from `plus` through
    // the external circuit (i.e. it is supplied into the `plus` node).
    for (k, e) in circuit.voltage_sources.iter().enumerate() {
        let col = nv + k;
        if let Some(i) = idx(e.plus) {
            a[(i, col)] += 1.0;
            a[(col, i)] += 1.0;
        }
        if let Some(i) = idx(e.minus) {
            a[(i, col)] -= 1.0;
            a[(col, i)] -= 1.0;
        }
        rhs[col] = e.v;
    }

    // Op-amps: output branch current + behavioural constraint row.
    for (k, e) in circuit.opamps.iter().enumerate() {
        let col = nv + nvs + k;
        if let Some(i) = idx(e.out) {
            a[(i, col)] += 1.0;
        }
        match e.model.gain {
            None => {
                // Ideal: v+ + offset - v- = 0.
                if let Some(i) = idx(e.inp) {
                    a[(col, i)] += 1.0;
                }
                if let Some(i) = idx(e.inn) {
                    a[(col, i)] -= 1.0;
                }
                rhs[col] = -e.model.offset;
            }
            Some(gain) => {
                // v_out - A (v+ + offset - v-) = 0.
                if let Some(i) = idx(e.out) {
                    a[(col, i)] += 1.0;
                }
                if let Some(i) = idx(e.inp) {
                    a[(col, i)] -= gain;
                }
                if let Some(i) = idx(e.inn) {
                    a[(col, i)] += gain;
                }
                rhs[col] = gain * e.model.offset;
            }
        }
    }

    let lu = LuDecomposition::new(&a).map_err(CircuitError::from)?;
    let x = lu.solve(&rhs).map_err(CircuitError::from)?;

    let mut node_voltages = Vec::with_capacity(nv + 1);
    node_voltages.push(0.0);
    node_voltages.extend_from_slice(&x[..nv]);
    let branch_currents = x[nv..].to_vec();
    Ok(DcSolution { node_voltages, branch_currents, vsrc_count: nvs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpampModel;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.node();
        let mid = c.node();
        c.voltage_source(top, Circuit::GROUND, 2.0);
        c.conductance(top, mid, 1e-3);
        c.conductance(mid, Circuit::GROUND, 3e-3);
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-12);
        // Source current: 2.0 V across 1/(1e-3) + 1/(3e-3) = 1333.3 Ω.
        let i = sol.voltage_source_current(0);
        assert!((i + 1.5e-3).abs() < 1e-12, "source current {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node();
        c.current_source(Circuit::GROUND, n, 1e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverting_amplifier_ideal() {
        // Standard inverting amp: gain = -R_f/R_in = -2.
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.3);
        c.conductance(vin, inn, 1e-3); // R_in = 1k
        c.conductance(out, inn, 0.5e-3); // R_f = 2k
        c.opamp(Circuit::GROUND, inn, out, OpampModel::ideal());
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) + 0.6).abs() < 1e-12);
        assert!(sol.voltage(inn).abs() < 1e-12, "virtual ground violated");
    }

    #[test]
    fn inverting_amplifier_finite_gain_approaches_ideal() {
        let gains = [1e2, 1e4, 1e6];
        let mut errs = Vec::new();
        for g in gains {
            let mut c = Circuit::new();
            let vin = c.node();
            let inn = c.node();
            let out = c.node();
            c.voltage_source(vin, Circuit::GROUND, 0.3);
            c.conductance(vin, inn, 1e-3);
            c.conductance(out, inn, 1e-3);
            c.opamp(Circuit::GROUND, inn, out, OpampModel::with_gain(g));
            let sol = dc_solve(&c).unwrap();
            errs.push((sol.voltage(out) + 0.3).abs());
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
        assert!(errs[2] < 1e-6);
    }

    #[test]
    fn opamp_offset_appears_at_output() {
        // Unity-gain buffer with offset: output = vin + offset.
        let mut c = Circuit::new();
        let vin = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.5);
        // Buffer: inp = vin, inn = out (direct feedback).
        c.opamp(vin, out, out, OpampModel::ideal().offset(2e-3));
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) - 0.502).abs() < 1e-12);
    }

    #[test]
    fn tia_converts_current_to_voltage() {
        let mut c = Circuit::new();
        let vg = c.node();
        c.current_source(Circuit::GROUND, vg, 5e-6);
        let out = c.tia(vg, 1e-4, OpampModel::ideal()); // R_f = 10k
        let sol = dc_solve(&c).unwrap();
        // I into virtual ground flows through feedback: V_out = -I/G_f.
        assert!((sol.voltage(out) + 0.05).abs() < 1e-12);
        assert!(sol.voltage(vg).abs() < 1e-12);
    }

    #[test]
    fn inverter_flips_sign() {
        let mut c = Circuit::new();
        let vin = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.42);
        let out = c.inverter(vin, 1e-3, OpampModel::ideal());
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) + 0.42).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let _floating = c.node();
        let n = c.node();
        c.conductance(n, Circuit::GROUND, 1e-3);
        assert!(matches!(dc_solve(&c), Err(CircuitError::SingularSystem)));
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = dc_solve(&c).unwrap();
        assert_eq!(sol.voltage(Circuit::GROUND), 0.0);
    }

    #[test]
    fn kcl_holds_at_internal_node() {
        // Three conductances meeting at a node with a current source.
        let mut c = Circuit::new();
        let n = c.node();
        let m = c.node();
        c.current_source(Circuit::GROUND, n, 2e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        c.conductance(n, m, 2e-3);
        c.conductance(m, Circuit::GROUND, 2e-3);
        let sol = dc_solve(&c).unwrap();
        let vn = sol.voltage(n);
        let vm = sol.voltage(m);
        let i_sum = 2e-3 - vn * 1e-3 - (vn - vm) * 2e-3;
        assert!(i_sum.abs() < 1e-15, "KCL residual {i_sum}");
        let i_sum_m = (vn - vm) * 2e-3 - vm * 2e-3;
        assert!(i_sum_m.abs() < 1e-15);
    }
}
