//! DC operating-point solver via modified nodal analysis (MNA).
//!
//! Unknowns are the non-ground node voltages plus one branch current per
//! voltage source and per op-amp output. Op-amps stamp their behavioural
//! constraint directly:
//!
//! * ideal:        `v⁺ + V_os − v⁻ = 0`
//! * finite gain:  `v_out − A·(v⁺ + V_os − v⁻) = 0`

use gramc_linalg::{LuDecomposition, Matrix};

use crate::error::CircuitError;
use crate::netlist::{Circuit, Node};

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    node_voltages: Vec<f64>, // index 0 = ground = 0.0
    branch_currents: Vec<f64>,
    vsrc_count: usize,
}

impl DcSolution {
    /// Voltage at `node` in volts.
    pub fn voltage(&self, node: Node) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Voltages at several nodes.
    pub fn voltages(&self, nodes: &[Node]) -> Vec<f64> {
        nodes.iter().map(|&n| self.voltage(n)).collect()
    }

    /// Current through the `k`-th voltage source (positive into its `plus`
    /// terminal from the circuit).
    pub fn voltage_source_current(&self, k: usize) -> f64 {
        self.branch_currents[k]
    }

    /// Output current supplied by the `k`-th op-amp.
    pub fn opamp_output_current(&self, k: usize) -> f64 {
        self.branch_currents[self.vsrc_count + k]
    }
}

/// How op-amps are stamped into the MNA matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpampStamping {
    /// Behavioural constraint rows (ideal / finite-gain DC model).
    Behavioural,
    /// Outputs pinned to externally supplied state values (the transient
    /// engine's algebraic network, where op-amp outputs are integrator
    /// states and act as voltage sources).
    PinnedOutputs,
}

/// A pre-assembled, pre-factored MNA operator.
///
/// Assembling the nodal matrix and LU-factoring it is O(n²)+O(n³); the
/// right-hand side is O(n). Workloads that solve the *same* resistive
/// network under many excitations — the macro auto-ranging loops, the
/// transient integrator, repeated reads in write-verify — should factor
/// once with [`DcOperator::new`] and then call
/// [`solve_circuit`](Self::solve_circuit) (or the raw RHS entry points) per
/// excitation. [`dc_solve`] remains the one-shot convenience wrapper.
///
/// The factorization captures the circuit *topology and element values that
/// enter the matrix*: conductances, source/op-amp connectivity and op-amp
/// gains. Source **values** (voltage/current) and op-amp offsets only enter
/// the RHS, so they may change freely between solves (via
/// [`Circuit::set_voltage`] / [`Circuit::set_current`]).
#[derive(Debug, Clone)]
pub struct DcOperator {
    /// `None` for the empty circuit (trivial solution).
    lu: Option<LuDecomposition>,
    nv: usize,
    nvs: usize,
    nop: usize,
    stamping: OpampStamping,
}

/// Map node -> MNA row/col (ground has none).
fn idx(n: Node) -> Option<usize> {
    if n.index() == 0 {
        None
    } else {
        Some(n.index() - 1)
    }
}

impl DcOperator {
    /// Assembles and factors the MNA matrix of `circuit` with behavioural
    /// op-amp rows (the [`dc_solve`] semantics).
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] for floating nodes or ill-posed
    /// feedback (e.g. an op-amp whose inputs are not connected to anything).
    pub fn new(circuit: &Circuit) -> Result<Self, CircuitError> {
        Self::build(circuit, OpampStamping::Behavioural)
    }

    /// Assembles and factors with op-amp outputs pinned to state values
    /// (the transient engine's algebraic network). RHS op-amp rows carry
    /// the states; see [`solve_states`](Self::solve_states).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn new_pinned_outputs(circuit: &Circuit) -> Result<Self, CircuitError> {
        Self::build(circuit, OpampStamping::PinnedOutputs)
    }

    fn build(circuit: &Circuit, stamping: OpampStamping) -> Result<Self, CircuitError> {
        let nv = circuit.node_count - 1; // unknown node voltages (ground excluded)
        let nvs = circuit.voltage_sources.len();
        let nop = circuit.opamps.len();
        let dim = nv + nvs + nop;
        if dim == 0 {
            return Ok(Self { lu: None, nv, nvs, nop, stamping });
        }
        let mut a = Matrix::zeros(dim, dim);

        for e in &circuit.conductances {
            if e.g == 0.0 {
                continue;
            }
            match (idx(e.a), idx(e.b)) {
                (Some(i), Some(j)) => {
                    a[(i, i)] += e.g;
                    a[(j, j)] += e.g;
                    a[(i, j)] -= e.g;
                    a[(j, i)] -= e.g;
                }
                (Some(i), None) | (None, Some(i)) => a[(i, i)] += e.g,
                (None, None) => {}
            }
        }

        // Voltage sources: branch current unknown k flows from `plus`
        // through the external circuit (i.e. it is supplied into `plus`).
        for (k, e) in circuit.voltage_sources.iter().enumerate() {
            let col = nv + k;
            if let Some(i) = idx(e.plus) {
                a[(i, col)] += 1.0;
                a[(col, i)] += 1.0;
            }
            if let Some(i) = idx(e.minus) {
                a[(i, col)] -= 1.0;
                a[(col, i)] -= 1.0;
            }
        }

        // Op-amps: output branch current + constraint row.
        for (k, e) in circuit.opamps.iter().enumerate() {
            let col = nv + nvs + k;
            if let Some(i) = idx(e.out) {
                a[(i, col)] += 1.0;
            }
            match stamping {
                OpampStamping::PinnedOutputs => {
                    // Output node pinned to the state value (symmetric
                    // voltage-source stamp).
                    if let Some(i) = idx(e.out) {
                        a[(col, i)] += 1.0;
                    }
                }
                OpampStamping::Behavioural => match e.model.gain {
                    None => {
                        // Ideal: v+ + offset - v- = 0.
                        if let Some(i) = idx(e.inp) {
                            a[(col, i)] += 1.0;
                        }
                        if let Some(i) = idx(e.inn) {
                            a[(col, i)] -= 1.0;
                        }
                    }
                    Some(gain) => {
                        // v_out - A (v+ + offset - v-) = 0.
                        if let Some(i) = idx(e.out) {
                            a[(col, i)] += 1.0;
                        }
                        if let Some(i) = idx(e.inp) {
                            a[(col, i)] -= gain;
                        }
                        if let Some(i) = idx(e.inn) {
                            a[(col, i)] += gain;
                        }
                    }
                },
            }
        }

        let lu = LuDecomposition::new(&a).map_err(CircuitError::from)?;
        Ok(Self { lu: Some(lu), nv, nvs, nop, stamping })
    }

    /// Dimension of the MNA system (0 for the empty circuit).
    pub fn dim(&self) -> usize {
        self.nv + self.nvs + self.nop
    }

    /// Number of unknown node voltages (ground excluded). The first
    /// `unknown_nodes()` rows of a raw solution vector are node voltages,
    /// in node order.
    pub fn unknown_nodes(&self) -> usize {
        self.nv
    }

    /// Builds the RHS vector from the *current* source values of `circuit`
    /// (which must have the same element counts as the circuit this
    /// operator was assembled from). Op-amp rows are filled per the
    /// stamping mode: offset terms (behavioural) or zero (pinned — callers
    /// supply states via [`solve_states`](Self::solve_states)).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ShapeMismatch`] if the element counts differ.
    pub fn rhs(&self, circuit: &Circuit) -> Result<Vec<f64>, CircuitError> {
        if circuit.node_count - 1 != self.nv
            || circuit.voltage_sources.len() != self.nvs
            || circuit.opamps.len() != self.nop
        {
            return Err(CircuitError::ShapeMismatch {
                expected: self.dim(),
                found: (circuit.node_count - 1)
                    + circuit.voltage_sources.len()
                    + circuit.opamps.len(),
            });
        }
        let mut rhs = vec![0.0; self.dim()];
        for e in &circuit.current_sources {
            if let Some(i) = idx(e.into) {
                rhs[i] += e.i;
            }
            if let Some(i) = idx(e.from) {
                rhs[i] -= e.i;
            }
        }
        for (k, e) in circuit.voltage_sources.iter().enumerate() {
            rhs[self.nv + k] = e.v;
        }
        if self.stamping == OpampStamping::Behavioural {
            for (k, e) in circuit.opamps.iter().enumerate() {
                rhs[self.nv + self.nvs + k] = match e.model.gain {
                    None => -e.model.offset,
                    Some(gain) => gain * e.model.offset,
                };
            }
        }
        Ok(rhs)
    }

    /// Solves for the given excitation values of `circuit`, reusing the
    /// stored factorization.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ShapeMismatch`] if `circuit`'s element counts differ
    /// from the assembled ones.
    pub fn solve_circuit(&self, circuit: &Circuit) -> Result<DcSolution, CircuitError> {
        let rhs = self.rhs(circuit)?;
        self.solve_rhs(&rhs)
    }

    /// Solves for a raw RHS vector (advanced; see [`rhs`](Self::rhs) for
    /// the layout: node rows, then voltage-source rows, then op-amp rows).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ShapeMismatch`] for a wrong-length RHS.
    pub fn solve_rhs(&self, rhs: &[f64]) -> Result<DcSolution, CircuitError> {
        if rhs.len() != self.dim() {
            return Err(CircuitError::ShapeMismatch { expected: self.dim(), found: rhs.len() });
        }
        let Some(lu) = &self.lu else {
            return Ok(DcSolution {
                node_voltages: vec![0.0],
                branch_currents: Vec::new(),
                vsrc_count: 0,
            });
        };
        let x = lu.solve(rhs).map_err(CircuitError::from)?;
        Ok(self.solution_from(&x))
    }

    /// Multi-RHS solve: each column of `rhs` is one excitation, each column
    /// of the result is the corresponding raw MNA solution vector. All
    /// columns share the factorization and substitute together through
    /// [`LuDecomposition::solve_matrix`].
    ///
    /// # Errors
    ///
    /// [`CircuitError::ShapeMismatch`] for wrong row count;
    /// [`CircuitError::InvalidArgument`] on the empty circuit.
    pub fn solve_rhs_matrix(&self, rhs: &Matrix) -> Result<Matrix, CircuitError> {
        let Some(lu) = &self.lu else {
            return Err(CircuitError::InvalidArgument("empty circuit"));
        };
        if rhs.rows() != self.dim() {
            return Err(CircuitError::ShapeMismatch { expected: self.dim(), found: rhs.rows() });
        }
        lu.solve_matrix(rhs).map_err(CircuitError::from)
    }

    /// Pinned-outputs solve: op-amp rows carry `states`, other rows carry
    /// `base_rhs` (typically from [`rhs`](Self::rhs), or zeros for the
    /// homogeneous response). Returns the full node-voltage vector
    /// (including ground at index 0).
    ///
    /// # Errors
    ///
    /// [`CircuitError::ShapeMismatch`] for wrong state/RHS lengths.
    pub fn solve_states(&self, base_rhs: &[f64], states: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if states.len() != self.nop {
            return Err(CircuitError::ShapeMismatch { expected: self.nop, found: states.len() });
        }
        let mut rhs = base_rhs.to_vec();
        for (k, &s) in states.iter().enumerate() {
            rhs[self.nv + self.nvs + k] = s;
        }
        let sol = self.solve_rhs(&rhs)?;
        Ok(sol.node_voltages)
    }

    fn solution_from(&self, x: &[f64]) -> DcSolution {
        let mut node_voltages = Vec::with_capacity(self.nv + 1);
        node_voltages.push(0.0);
        node_voltages.extend_from_slice(&x[..self.nv]);
        DcSolution { node_voltages, branch_currents: x[self.nv..].to_vec(), vsrc_count: self.nvs }
    }
}

/// Solves the DC operating point of `circuit` (one-shot: assembles, factors
/// and solves; use [`DcOperator`] to amortize the factorization over many
/// excitations).
///
/// # Errors
///
/// * [`CircuitError::SingularSystem`] for floating nodes or ill-posed
///   feedback (e.g. an op-amp whose inputs are not connected to anything).
pub fn dc_solve(circuit: &Circuit) -> Result<DcSolution, CircuitError> {
    DcOperator::new(circuit)?.solve_circuit(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpampModel;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.node();
        let mid = c.node();
        c.voltage_source(top, Circuit::GROUND, 2.0);
        c.conductance(top, mid, 1e-3);
        c.conductance(mid, Circuit::GROUND, 3e-3);
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-12);
        // Source current: 2.0 V across 1/(1e-3) + 1/(3e-3) = 1333.3 Ω.
        let i = sol.voltage_source_current(0);
        assert!((i + 1.5e-3).abs() < 1e-12, "source current {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node();
        c.current_source(Circuit::GROUND, n, 1e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverting_amplifier_ideal() {
        // Standard inverting amp: gain = -R_f/R_in = -2.
        let mut c = Circuit::new();
        let vin = c.node();
        let inn = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.3);
        c.conductance(vin, inn, 1e-3); // R_in = 1k
        c.conductance(out, inn, 0.5e-3); // R_f = 2k
        c.opamp(Circuit::GROUND, inn, out, OpampModel::ideal());
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) + 0.6).abs() < 1e-12);
        assert!(sol.voltage(inn).abs() < 1e-12, "virtual ground violated");
    }

    #[test]
    fn inverting_amplifier_finite_gain_approaches_ideal() {
        let gains = [1e2, 1e4, 1e6];
        let mut errs = Vec::new();
        for g in gains {
            let mut c = Circuit::new();
            let vin = c.node();
            let inn = c.node();
            let out = c.node();
            c.voltage_source(vin, Circuit::GROUND, 0.3);
            c.conductance(vin, inn, 1e-3);
            c.conductance(out, inn, 1e-3);
            c.opamp(Circuit::GROUND, inn, out, OpampModel::with_gain(g));
            let sol = dc_solve(&c).unwrap();
            errs.push((sol.voltage(out) + 0.3).abs());
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
        assert!(errs[2] < 1e-6);
    }

    #[test]
    fn opamp_offset_appears_at_output() {
        // Unity-gain buffer with offset: output = vin + offset.
        let mut c = Circuit::new();
        let vin = c.node();
        let out = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.5);
        // Buffer: inp = vin, inn = out (direct feedback).
        c.opamp(vin, out, out, OpampModel::ideal().offset(2e-3));
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) - 0.502).abs() < 1e-12);
    }

    #[test]
    fn tia_converts_current_to_voltage() {
        let mut c = Circuit::new();
        let vg = c.node();
        c.current_source(Circuit::GROUND, vg, 5e-6);
        let out = c.tia(vg, 1e-4, OpampModel::ideal()); // R_f = 10k
        let sol = dc_solve(&c).unwrap();
        // I into virtual ground flows through feedback: V_out = -I/G_f.
        assert!((sol.voltage(out) + 0.05).abs() < 1e-12);
        assert!(sol.voltage(vg).abs() < 1e-12);
    }

    #[test]
    fn inverter_flips_sign() {
        let mut c = Circuit::new();
        let vin = c.node();
        c.voltage_source(vin, Circuit::GROUND, 0.42);
        let out = c.inverter(vin, 1e-3, OpampModel::ideal());
        let sol = dc_solve(&c).unwrap();
        assert!((sol.voltage(out) + 0.42).abs() < 1e-12);
    }

    #[test]
    fn operator_reuses_factorization_across_excitations() {
        // Factor once, solve for several source values: must match fresh
        // dc_solve exactly (the matrix never changes, only the RHS).
        let mut c = Circuit::new();
        let top = c.node();
        let mid = c.node();
        let vs = c.voltage_source(top, Circuit::GROUND, 2.0);
        c.conductance(top, mid, 1e-3);
        c.conductance(mid, Circuit::GROUND, 3e-3);
        let op = DcOperator::new(&c).unwrap();
        for v in [2.0, -1.0, 0.5, 7.25] {
            c.set_voltage(vs, v);
            let fast = op.solve_circuit(&c).unwrap();
            let fresh = dc_solve(&c).unwrap();
            assert_eq!(fast.voltage(mid).to_bits(), fresh.voltage(mid).to_bits());
            assert_eq!(
                fast.voltage_source_current(0).to_bits(),
                fresh.voltage_source_current(0).to_bits()
            );
            assert!((fast.voltage(mid) - v / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn operator_tracks_current_source_updates() {
        let mut c = Circuit::new();
        let n = c.node();
        let is = c.current_source(Circuit::GROUND, n, 1e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        let op = DcOperator::new(&c).unwrap();
        for i in [1e-3, -2e-3, 0.4e-3] {
            c.set_current(is, i);
            let sol = op.solve_circuit(&c).unwrap();
            assert!((sol.voltage(n) - i / 1e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn operator_rejects_mismatched_circuit() {
        let mut c = Circuit::new();
        let n = c.node();
        c.conductance(n, Circuit::GROUND, 1e-3);
        c.current_source(Circuit::GROUND, n, 1e-3);
        let op = DcOperator::new(&c).unwrap();
        let _extra = c.node(); // changes the unknown count
        assert!(matches!(op.solve_circuit(&c), Err(CircuitError::ShapeMismatch { .. })));
        assert!(matches!(op.solve_rhs(&[0.0; 5]), Err(CircuitError::ShapeMismatch { .. })));
    }

    #[test]
    fn operator_multi_rhs_matches_single_solves() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.conductance(a, b, 2e-3);
        c.conductance(a, Circuit::GROUND, 1e-3);
        c.conductance(b, Circuit::GROUND, 5e-4);
        c.current_source(Circuit::GROUND, a, 1e-3);
        let op = DcOperator::new(&c).unwrap();
        let dim = op.dim();
        let rhs = Matrix::from_fn(dim, 3, |i, j| ((i + 2 * j) as f64 * 0.3).sin() * 1e-3);
        let xs = op.solve_rhs_matrix(&rhs).unwrap();
        for j in 0..3 {
            let sol = op.solve_rhs(&rhs.col(j)).unwrap();
            for i in 0..dim.min(op.unknown_nodes()) {
                assert_eq!(xs[(i, j)].to_bits(), sol.node_voltages[i + 1].to_bits());
            }
        }
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let _floating = c.node();
        let n = c.node();
        c.conductance(n, Circuit::GROUND, 1e-3);
        assert!(matches!(dc_solve(&c), Err(CircuitError::SingularSystem)));
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = dc_solve(&c).unwrap();
        assert_eq!(sol.voltage(Circuit::GROUND), 0.0);
    }

    #[test]
    fn kcl_holds_at_internal_node() {
        // Three conductances meeting at a node with a current source.
        let mut c = Circuit::new();
        let n = c.node();
        let m = c.node();
        c.current_source(Circuit::GROUND, n, 2e-3);
        c.conductance(n, Circuit::GROUND, 1e-3);
        c.conductance(n, m, 2e-3);
        c.conductance(m, Circuit::GROUND, 2e-3);
        let sol = dc_solve(&c).unwrap();
        let vn = sol.voltage(n);
        let vm = sol.voltage(m);
        let i_sum = 2e-3 - vn * 1e-3 - (vn - vm) * 2e-3;
        assert!(i_sum.abs() < 1e-15, "KCL residual {i_sum}");
        let i_sum_m = (vn - vm) * 2e-3 - vm * 2e-3;
        assert!(i_sum_m.abs() < 1e-15);
    }
}
