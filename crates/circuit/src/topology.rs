//! The four reconfigurable AMC circuit topologies (paper Section II-B and
//! Fig. 2).
//!
//! All four builders wire the *same* component inventory — a conductance
//! crossbar, a bank of op-amps usable as TIAs or analog inverters, and
//! voltage/current drivers — differing only in the connections, exactly as
//! the register-array-controlled transmission gates reconfigure the macro in
//! hardware:
//!
//! | Mode | Circuit equation (ideal) | Solves |
//! |------|--------------------------|--------|
//! | MVM  | `V_out = −(1/G_f)·ΔG·V_in`        | `y = A·x`  |
//! | INV  | `ΔG·V_x = −I_in`                  | `A·x = b`  |
//! | PINV | `ΔGᵀ(ΔG·V_x + I_b) = 0`           | `x = A⁺·b` |
//! | EGV  | `(ΔG − G_λ·I)·V_x = 0`            | `A·x = λx` |
//!
//! `ΔG = G⁺ − G⁻` is the differential conductance pair; negative-coefficient
//! paths run through analog inverters (the paper's reconfigured OPAs). The
//! level-0 baseline conductance (1 µS) is present on *both* the positive and
//! negative paths of every cell and cancels exactly at the virtual grounds.

use gramc_linalg::Matrix;

use crate::error::CircuitError;
use crate::netlist::{Circuit, CurrentSourceId, Node, OpampModel, VoltageSourceId};

/// Unit conductance used for the analog inverters' input/feedback pair.
pub const INVERTER_CONDUCTANCE: f64 = 100e-6;

fn check_pair(g_pos: &Matrix, g_neg: &Matrix) -> Result<(usize, usize), CircuitError> {
    if g_pos.shape() != g_neg.shape() {
        return Err(CircuitError::InvalidArgument(
            "positive and negative conductance arrays must have equal shape",
        ));
    }
    let (rows, cols) = g_pos.shape();
    if rows == 0 || cols == 0 {
        return Err(CircuitError::InvalidArgument("empty conductance array"));
    }
    Ok((rows, cols))
}

/// MVM topology: open-loop crossbar with TIA read-out.
#[derive(Debug, Clone)]
pub struct MvmTopology {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Handles to the per-column input drivers (update to re-run).
    pub input_sources: Vec<VoltageSourceId>,
    /// TIA output nodes; `V_out[i] = −(1/g_f)·Σ_j ΔG[i][j]·V_in[j]`.
    pub outputs: Vec<Node>,
    /// TIA feedback conductance used at read-out.
    pub g_f: f64,
}

/// Builds the MVM configuration: columns driven by `v_in`, rows held at
/// virtual ground by TIAs with feedback `g_f`; the negative array is driven
/// through analog inverters so its currents subtract at the virtual grounds.
///
/// # Errors
///
/// Shape errors per [`CircuitError::InvalidArgument`] /
/// [`CircuitError::ShapeMismatch`]; `g_f` must be positive.
pub fn build_mvm(
    g_pos: &Matrix,
    g_neg: &Matrix,
    v_in: &[f64],
    g_f: f64,
    model: OpampModel,
) -> Result<MvmTopology, CircuitError> {
    let (rows, cols) = check_pair(g_pos, g_neg)?;
    if v_in.len() != cols {
        return Err(CircuitError::ShapeMismatch { expected: cols, found: v_in.len() });
    }
    if !(g_f > 0.0) {
        return Err(CircuitError::InvalidArgument("g_f must be positive"));
    }
    let mut c = Circuit::new();
    // Column drive nodes and their inverted copies.
    let col_nodes = c.nodes(cols);
    let mut input_sources = Vec::with_capacity(cols);
    for (j, &cn) in col_nodes.iter().enumerate() {
        input_sources.push(c.voltage_source(cn, Circuit::GROUND, v_in[j]));
    }
    let inv_nodes: Vec<Node> =
        col_nodes.iter().map(|&cn| c.inverter(cn, INVERTER_CONDUCTANCE, model)).collect();
    // Row virtual grounds with TIAs.
    let mut outputs = Vec::with_capacity(rows);
    for i in 0..rows {
        let row = c.node();
        for j in 0..cols {
            c.conductance(col_nodes[j], row, g_pos[(i, j)]);
            c.conductance(inv_nodes[j], row, g_neg[(i, j)]);
        }
        outputs.push(c.tia(row, g_f, model));
    }
    Ok(MvmTopology { circuit: c, input_sources, outputs, g_f })
}

/// INV topology: one-step linear-system solver (ref. [3], Sun et al. 2019).
#[derive(Debug, Clone)]
pub struct InvTopology {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Handles to the per-row injection currents (update to re-run).
    pub input_sources: Vec<CurrentSourceId>,
    /// Solution nodes; ideally `ΔG·V_x = −I_in`.
    pub x_nodes: Vec<Node>,
}

/// Builds the INV configuration: row op-amps whose outputs feed back through
/// the crossbar columns, so KCL at the virtual grounds enforces
/// `ΔG·x = −I_in` and the outputs settle at `x = −ΔG⁻¹·I_in` in one step.
///
/// Requires a square conductance pair; the effective matrix must be
/// positive-stable for the physical feedback loop to converge (Wishart
/// matrices are).
///
/// # Errors
///
/// Shape errors per [`CircuitError::InvalidArgument`] /
/// [`CircuitError::ShapeMismatch`].
pub fn build_inv(
    g_pos: &Matrix,
    g_neg: &Matrix,
    i_in: &[f64],
    model: OpampModel,
) -> Result<InvTopology, CircuitError> {
    let (rows, cols) = check_pair(g_pos, g_neg)?;
    if rows != cols {
        return Err(CircuitError::InvalidArgument("INV requires a square matrix"));
    }
    if i_in.len() != rows {
        return Err(CircuitError::ShapeMismatch { expected: rows, found: i_in.len() });
    }
    let mut c = Circuit::new();
    let row_nodes = c.nodes(rows);
    // Row op-amps: out = x_i, virtual ground at row_i.
    let x_nodes: Vec<Node> = (0..rows)
        .map(|i| {
            let out = c.node();
            c.opamp(Circuit::GROUND, row_nodes[i], out, model);
            out
        })
        .collect();
    // Inverted copies for negative coefficients.
    let inv_x: Vec<Node> =
        x_nodes.iter().map(|&x| c.inverter(x, INVERTER_CONDUCTANCE, model)).collect();
    // Crossbar feedback connections.
    for i in 0..rows {
        for j in 0..cols {
            c.conductance(x_nodes[j], row_nodes[i], g_pos[(i, j)]);
            c.conductance(inv_x[j], row_nodes[i], g_neg[(i, j)]);
        }
    }
    // Injection currents.
    let input_sources: Vec<CurrentSourceId> =
        (0..rows).map(|i| c.current_source(Circuit::GROUND, row_nodes[i], i_in[i])).collect();
    Ok(InvTopology { circuit: c, input_sources, x_nodes })
}

/// PINV topology: one-step least-squares solver (ref. [5], Wang et al. 2023).
#[derive(Debug, Clone)]
pub struct PinvTopology {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Handles to the per-row injection currents encoding `b`.
    pub input_sources: Vec<CurrentSourceId>,
    /// Solution nodes (length = matrix columns); ideally `x = A⁺·b` scaled.
    pub x_nodes: Vec<Node>,
    /// Stage-1 residual nodes (length = matrix rows).
    pub y_nodes: Vec<Node>,
    /// Stage-1 TIA feedback conductance.
    pub g_f: f64,
}

/// Builds the PINV configuration: two cascaded arrays holding `A` and `Aᵀ`.
/// Stage-1 TIAs form the residual `y ∝ −(ΔG·x + I_b)`, and stage-2 amps
/// drive `ΔGᵀ·y → 0`, so the DC solution satisfies the normal equations
/// `ΔGᵀ(ΔG·x + I_b) = 0`, i.e. the least-squares solution.
///
/// # Errors
///
/// Shape errors per [`CircuitError::InvalidArgument`] /
/// [`CircuitError::ShapeMismatch`]; `g_f` must be positive.
pub fn build_pinv(
    g_pos: &Matrix,
    g_neg: &Matrix,
    i_b: &[f64],
    g_f: f64,
    model: OpampModel,
) -> Result<PinvTopology, CircuitError> {
    let (rows, cols) = check_pair(g_pos, g_neg)?;
    if i_b.len() != rows {
        return Err(CircuitError::ShapeMismatch { expected: rows, found: i_b.len() });
    }
    if !(g_f > 0.0) {
        return Err(CircuitError::InvalidArgument("g_f must be positive"));
    }
    let mut c = Circuit::new();

    // Stage-2 outputs x_j drive the first array; allocate them first.
    let col_sense = c.nodes(cols); // stage-2 sense nodes c_j
    let x_nodes: Vec<Node> = col_sense
        .iter()
        .map(|&cj| {
            let out = c.node();
            // Non-inverting sense keeps the two-stage loop in net negative
            // feedback (see module docs in `transient`).
            c.opamp(cj, Circuit::GROUND, out, model);
            out
        })
        .collect();
    let inv_x: Vec<Node> =
        x_nodes.iter().map(|&x| c.inverter(x, INVERTER_CONDUCTANCE, model)).collect();

    // Stage 1: residual TIAs over array A.
    let mut y_nodes = Vec::with_capacity(rows);
    let mut input_sources = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = c.node();
        for j in 0..cols {
            c.conductance(x_nodes[j], r, g_pos[(i, j)]);
            c.conductance(inv_x[j], r, g_neg[(i, j)]);
        }
        input_sources.push(c.current_source(Circuit::GROUND, r, i_b[i]));
        y_nodes.push(c.tia(r, g_f, model));
    }
    let inv_y: Vec<Node> =
        y_nodes.iter().map(|&y| c.inverter(y, INVERTER_CONDUCTANCE, model)).collect();

    // Stage 2: transposed array Aᵀ feeding the column sense nodes.
    for j in 0..cols {
        for i in 0..rows {
            c.conductance(y_nodes[i], col_sense[j], g_pos[(i, j)]);
            c.conductance(inv_y[i], col_sense[j], g_neg[(i, j)]);
        }
        // Sense node needs a DC path to ground for a well-posed solve when
        // op-amps are ideal (input currents are zero anyway).
        c.conductance(col_sense[j], Circuit::GROUND, 1e-9);
    }
    Ok(PinvTopology { circuit: c, input_sources, x_nodes, y_nodes, g_f })
}

/// EGV topology: dominant-eigenvector feedback loop.
#[derive(Debug, Clone)]
pub struct EgvTopology {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Eigenvector read-out nodes (inverter outputs `x = −u`).
    pub x_nodes: Vec<Node>,
    /// TIA output nodes `u`.
    pub u_nodes: Vec<Node>,
    /// The programmed eigenvalue feedback conductance.
    pub g_lambda: f64,
}

/// Builds the EGV configuration: TIAs with feedback conductance `g_lambda`
/// close the loop `ΔG·x = G_λ·x`, which is neutrally stable along the
/// eigenvector whose eigenvalue (in conductance units) equals `g_lambda`.
///
/// The DC solution is the useless zero vector; run
/// [`transient_solve`](crate::transient_solve) from a small random initial
/// state and let amplifier saturation pin the dominant mode's amplitude —
/// program `g_lambda` slightly *below* the dominant eigenvalue so the loop
/// gain along that mode exceeds one.
///
/// # Errors
///
/// Shape errors per [`CircuitError::InvalidArgument`]; `g_lambda` must be
/// positive.
pub fn build_egv(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g_lambda: f64,
    model: OpampModel,
) -> Result<EgvTopology, CircuitError> {
    let (rows, cols) = check_pair(g_pos, g_neg)?;
    if rows != cols {
        return Err(CircuitError::InvalidArgument("EGV requires a square matrix"));
    }
    if !(g_lambda > 0.0) {
        return Err(CircuitError::InvalidArgument("g_lambda must be positive"));
    }
    let mut c = Circuit::new();
    let row_nodes = c.nodes(rows);
    // TIAs: u_i with feedback g_lambda.
    let u_nodes: Vec<Node> = row_nodes.iter().map(|&r| c.tia(r, g_lambda, model)).collect();
    // Inverters: x_j = -u_j closes the loop with the right sign.
    let x_nodes: Vec<Node> =
        u_nodes.iter().map(|&u| c.inverter(u, INVERTER_CONDUCTANCE, model)).collect();
    // Crossbar: positive entries from x_j, negative entries from u_j = -x_j.
    for i in 0..rows {
        for j in 0..cols {
            c.conductance(x_nodes[j], row_nodes[i], g_pos[(i, j)]);
            c.conductance(u_nodes[j], row_nodes[i], g_neg[(i, j)]);
        }
    }
    Ok(EgvTopology { circuit: c, x_nodes, u_nodes, g_lambda })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_solve;
    use crate::transient::{transient_solve, TransientConfig};
    use gramc_linalg::vector::rel_error_up_to_sign;
    use gramc_linalg::{lu, pseudoinverse, SymmetricEigen};

    /// Splits a signed matrix into (g_pos, g_neg) with a baseline floor on
    /// both sides, mimicking the level-0 conductance of real cells.
    fn split(a: &Matrix, unit: f64, floor: f64) -> (Matrix, Matrix) {
        let g_pos = a.map(|v| if v > 0.0 { v * unit + floor } else { floor });
        let g_neg = a.map(|v| if v < 0.0 { -v * unit + floor } else { floor });
        (g_pos, g_neg)
    }

    const UNIT: f64 = 50e-6; // siemens per matrix unit
    const FLOOR: f64 = 1e-6; // level-0 baseline

    #[test]
    fn mvm_matches_matrix_product() {
        let a = Matrix::from_rows(&[&[0.8, -0.4], &[0.2, 0.6]]);
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let v_in = [0.15, -0.10];
        let g_f = UNIT;
        let t = build_mvm(&gp, &gn, &v_in, g_f, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let v_out = sol.voltages(&t.outputs);
        let expected: Vec<f64> = a.matvec(&v_in).iter().map(|y| -y).collect();
        for (o, e) in v_out.iter().zip(&expected) {
            assert!((o - e).abs() < 1e-9, "{v_out:?} vs {expected:?}");
        }
    }

    #[test]
    fn mvm_baseline_floor_cancels() {
        // With a large floor, results must be unchanged (differential pair).
        let a = Matrix::from_rows(&[&[0.5, -0.5], &[-0.25, 1.0]]);
        let v_in = [0.2, 0.1];
        let (gp1, gn1) = split(&a, UNIT, 1e-6);
        let (gp2, gn2) = split(&a, UNIT, 20e-6);
        let t1 = build_mvm(&gp1, &gn1, &v_in, UNIT, OpampModel::ideal()).unwrap();
        let t2 = build_mvm(&gp2, &gn2, &v_in, UNIT, OpampModel::ideal()).unwrap();
        let o1 = dc_solve(&t1.circuit).unwrap().voltages(&t1.outputs);
        let o2 = dc_solve(&t2.circuit).unwrap().voltages(&t2.outputs);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-9, "{o1:?} vs {o2:?}");
        }
    }

    #[test]
    fn inv_solves_linear_system() {
        // SPD matrix with negative off-diagonals.
        let a = Matrix::from_rows(&[&[2.0, -0.5], &[-0.5, 1.5]]);
        let b = [0.4, -0.2];
        let (gp, gn) = split(&a, UNIT, FLOOR);
        // ΔG·x = −I_in with ΔG = UNIT·A, so I_in = −UNIT·(A·x_expected)… we
        // encode b directly: I_in = −UNIT·b·v_unit puts x in volts of v_unit.
        let v_unit = 0.1;
        let i_in: Vec<f64> = b.iter().map(|bi| -UNIT * bi * v_unit).collect();
        let t = build_inv(&gp, &gn, &i_in, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let x_volts = sol.voltages(&t.x_nodes);
        let x: Vec<f64> = x_volts.iter().map(|v| v / v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-8, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn inv_finite_gain_error_shrinks_with_gain() {
        let a = Matrix::from_rows(&[&[1.5, 0.3], &[0.3, 2.0]]);
        let b = [1.0, -0.5];
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let v_unit = 0.1;
        let i_in: Vec<f64> = b.iter().map(|bi| -UNIT * bi * v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut errs = Vec::new();
        for gain in [1e2, 1e4] {
            let t = build_inv(&gp, &gn, &i_in, OpampModel::with_gain(gain)).unwrap();
            let sol = dc_solve(&t.circuit).unwrap();
            let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
            errs.push(gramc_linalg::vector::rel_error(&x, &x_ref));
        }
        assert!(errs[1] < errs[0] / 10.0, "{errs:?}");
    }

    #[test]
    fn inv_transient_is_stable_for_spd_matrix() {
        let a = Matrix::from_rows(&[&[2.0, -0.4], &[-0.4, 1.2]]);
        let b = [0.3, 0.5];
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let v_unit = 0.1;
        let i_in: Vec<f64> = b.iter().map(|bi| -UNIT * bi * v_unit).collect();
        let t = build_inv(&gp, &gn, &i_in, OpampModel::with_gain(1e4)).unwrap();
        let zeros = vec![0.0; t.circuit.opamp_count()];
        let tr = transient_solve(&t.circuit, &zeros, &TransientConfig::default()).unwrap();
        assert!(tr.settled, "INV loop failed to settle");
        let x: Vec<f64> = tr.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 5e-3, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn pinv_solves_least_squares() {
        // Tall 4×2 system.
        let a = Matrix::from_rows(&[&[1.0, 0.2], &[0.5, -1.0], &[-0.3, 0.8], &[0.9, 0.4]]);
        let b = [0.5, -0.1, 0.3, 0.7];
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let v_unit = 0.1;
        let i_b: Vec<f64> = b.iter().map(|bi| -UNIT * bi * v_unit).collect();
        let t = build_pinv(&gp, &gn, &i_b, UNIT, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
        let x_ref = pseudoinverse(&a).unwrap().matvec(&b);
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-6, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn pinv_reduces_to_inverse_for_square_full_rank() {
        let a = Matrix::from_rows(&[&[1.2, 0.3], &[-0.2, 0.9]]);
        let b = [0.4, 0.1];
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let v_unit = 0.1;
        let i_b: Vec<f64> = b.iter().map(|bi| -UNIT * bi * v_unit).collect();
        let t = build_pinv(&gp, &gn, &i_b, UNIT, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-6, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn egv_transient_converges_to_dominant_eigenvector() {
        // Symmetric PSD matrix (a small Gram matrix).
        let a = Matrix::from_rows(&[&[2.0, 0.8, 0.3], &[0.8, 1.5, 0.2], &[0.3, 0.2, 1.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let lambda1 = eig.eigenvalues[0];
        // Program slightly below λ₁ so the dominant loop gain exceeds 1.
        let g_lambda = 0.97 * lambda1 * UNIT;
        let (gp, gn) = split(&a, UNIT, FLOOR);
        // High gain + small margin is the physical regime: the op-amps'
        // closed-loop gain deficits (~2/A) must be far below the eigenvalue
        // margin, and the settled state is then a mildly clipped eigenvector.
        // The growth mode is gain-fast, so dt must resolve it (see
        // gramc-circuit::transient module docs).
        let t = build_egv(&gp, &gn, g_lambda, OpampModel::with_gain(1e4)).unwrap();
        // Seed with a tiny asymmetric perturbation.
        let n_ops = t.circuit.opamp_count();
        let seed: Vec<f64> = (0..n_ops).map(|k| 1e-4 * ((k % 5) as f64 - 2.0)).collect();
        let cfg = TransientConfig {
            dt: Some(2e-11),
            t_max: 2e-6,
            settle_tol: 1e-5,
            ..Default::default()
        };
        let tr = transient_solve(&t.circuit, &seed, &cfg).unwrap();
        let x_raw = tr.voltages(&t.x_nodes);
        let (x, norm) = gramc_linalg::vector::normalize(&x_raw);
        assert!(norm > 1e-3, "EGV mode did not grow (norm {norm})");
        let v_ref = eig.eigenvector(0);
        let err = rel_error_up_to_sign(&x, &v_ref);
        assert!(err < 0.05, "eigenvector error {err}: {x:?} vs {v_ref:?}");
    }

    #[test]
    fn egv_with_lambda_above_spectrum_decays_to_zero() {
        let a = Matrix::from_rows(&[&[1.0, 0.2], &[0.2, 0.8]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let g_lambda = 1.2 * eig.eigenvalues[0] * UNIT;
        let (gp, gn) = split(&a, UNIT, FLOOR);
        let t = build_egv(&gp, &gn, g_lambda, OpampModel::with_gain(1e4)).unwrap();
        let n_ops = t.circuit.opamp_count();
        let seed: Vec<f64> = (0..n_ops).map(|k| 1e-3 * ((k % 3) as f64 - 1.0)).collect();
        let cfg = TransientConfig { dt: Some(2e-11), t_max: 2e-6, ..Default::default() };
        let tr = transient_solve(&t.circuit, &seed, &cfg).unwrap();
        let x = tr.voltages(&t.x_nodes);
        assert!(gramc_linalg::vector::norm2(&x) < 1e-4, "loop should decay when λ̂ > λ₁: {x:?}");
    }

    #[test]
    fn builders_validate_shapes() {
        let g = Matrix::filled(2, 2, 1e-6);
        let g3 = Matrix::filled(2, 3, 1e-6);
        assert!(build_mvm(&g, &g3, &[0.0, 0.0], 1e-6, OpampModel::ideal()).is_err());
        assert!(build_mvm(&g, &g, &[0.0], 1e-6, OpampModel::ideal()).is_err());
        assert!(build_mvm(&g, &g, &[0.0, 0.0], 0.0, OpampModel::ideal()).is_err());
        assert!(build_inv(&g3, &g3, &[0.0, 0.0], OpampModel::ideal()).is_err());
        assert!(build_inv(&g, &g, &[0.0], OpampModel::ideal()).is_err());
        assert!(build_pinv(&g, &g, &[0.0], 1e-6, OpampModel::ideal()).is_err());
        assert!(build_egv(&g, &g, 0.0, OpampModel::ideal()).is_err());
        assert!(build_egv(&g3, &g3, 1e-6, OpampModel::ideal()).is_err());
    }
}
