//! The GRAMC system: controller, instruction stack, decoder, buffers and
//! flag register (paper Fig. 3).
//!
//! The controller fetches instructions from the instruction stack, decodes
//! them (through the binary encoding of [`crate::isa`] — the decoder really
//! runs on the encoded words) and steers the write-verify data path (blue
//! arrows) and the system solution path (red arrows). Results land in the
//! output buffer, where the digital functional modules can post-process
//! them.

use gramc_linalg::Matrix;
#[cfg(feature = "telemetry")]
use gramc_telemetry::HwSnapshot;
#[cfg(feature = "telemetry")]
use std::collections::BTreeMap;

use crate::amc_macro::{MacroConfig, MacroGroup, OperatorId};
use crate::error::CoreError;
use crate::functional::{pool2d, softmax};
use crate::isa::{BufferRef, Instruction, MemSpace};

/// Condition flags of the controller (Fig. 3 "Flag Register").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlagRegister {
    /// Result of the last comparison-unit operation (`a < b`).
    pub less: bool,
    /// Set when the controller executed `Halt`.
    pub halted: bool,
    /// Set when the last write-verify run converged on all cells.
    pub program_ok: bool,
}

/// Execution statistics of a program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: usize,
    /// Analog operations dispatched (MVM + solves).
    pub analog_ops: usize,
    /// Write-verify matrix loads performed.
    pub matrix_loads: usize,
}

/// Number of operator slots the decoder can address.
pub const OPERATOR_SLOTS: usize = 16;

/// The full GRAMC system of Fig. 3: digital control plus a group of AMC
/// macros.
///
/// # Examples
///
/// ```
/// use gramc_core::system::GramcSystem;
/// use gramc_core::isa::{BufferRef, Instruction};
/// use gramc_core::MacroConfig;
/// use gramc_linalg::Matrix;
///
/// # fn main() -> Result<(), gramc_core::CoreError> {
/// let mut sys = GramcSystem::new(2, MacroConfig::small_ideal(2), 3, 64);
/// let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.25, 1.0]]);
/// sys.write_global(0, a.as_slice())?;
/// sys.write_global(4, &[1.0, 2.0])?;
/// sys.load_program(vec![
///     Instruction::LoadMatrix { slot: 0, rows: 2, cols: 2, src: BufferRef::global(0, 4) },
///     Instruction::Mvm { slot: 0, src: BufferRef::global(4, 2), dst: BufferRef::output(0, 2) },
///     Instruction::Halt,
/// ]);
/// sys.run(100)?;
/// let y = sys.read_output(BufferRef::output(0, 2))?;
/// assert!((y[0] - 2.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GramcSystem {
    group: MacroGroup,
    global_buffer: Vec<f64>,
    output_buffer: Vec<f64>,
    instruction_stack: Vec<[u32; 4]>,
    pc: usize,
    flags: FlagRegister,
    slots: [Option<OperatorId>; OPERATOR_SLOTS],
    stats: RunStats,
    /// Hardware events attributed to the instruction mnemonic that caused
    /// them (accumulated since the last `load_program`).
    #[cfg(feature = "telemetry")]
    instr_hw: BTreeMap<&'static str, HwSnapshot>,
}

impl GramcSystem {
    /// Creates a system with `n_macros` macros and `buffer_words` words in
    /// each of the global and output buffers.
    ///
    /// `n_macros` sizes this controller's **single** macro group — it does
    /// not shard the system: every instruction still dispatches into the
    /// one group, serially. The scaling path beyond one group is the
    /// `gramc-runtime` crate, whose `Runtime` owns several independent
    /// [`MacroGroup`] shards and schedules tiled jobs across them with
    /// work stealing; construct one there (e.g. `Runtime::new(shards,
    /// macros_per_shard, config, seed)`) instead of inflating `n_macros`
    /// here when you need multi-group throughput.
    pub fn new(n_macros: usize, config: MacroConfig, seed: u64, buffer_words: usize) -> Self {
        Self {
            group: MacroGroup::new(n_macros, config, seed),
            global_buffer: vec![0.0; buffer_words],
            output_buffer: vec![0.0; buffer_words],
            instruction_stack: Vec::new(),
            pc: 0,
            flags: FlagRegister::default(),
            slots: [None; OPERATOR_SLOTS],
            stats: RunStats::default(),
            #[cfg(feature = "telemetry")]
            instr_hw: BTreeMap::new(),
        }
    }

    /// The paper's configuration: 16 macros of 128×128 and a 64 Ki-word
    /// buffer pair.
    pub fn paper_system(seed: u64) -> Self {
        Self::new(16, MacroConfig::default(), seed, 65536)
    }

    /// The underlying macro group (for inspection).
    pub fn macro_group(&self) -> &MacroGroup {
        &self.group
    }

    /// Mutable access to the macro group (e.g. for direct high-level use).
    pub fn macro_group_mut(&mut self) -> &mut MacroGroup {
        &mut self.group
    }

    /// Current flags.
    pub fn flags(&self) -> FlagRegister {
        self.flags
    }

    /// Statistics of the most recent [`run`](Self::run).
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Loads a program into the instruction stack (encoding each
    /// instruction to its binary form — the controller decodes on fetch,
    /// like the hardware) and resets the PC and flags.
    pub fn load_program(&mut self, program: Vec<Instruction>) {
        self.instruction_stack = program.iter().map(Instruction::encode).collect();
        self.pc = 0;
        self.flags = FlagRegister::default();
        self.stats = RunStats::default();
        #[cfg(feature = "telemetry")]
        self.instr_hw.clear();
    }

    /// Hardware counter deltas attributed per instruction mnemonic since
    /// the last [`load_program`](Self::load_program): which instructions
    /// drove the DACs, settled the arrays, burned write pulses.
    #[cfg(feature = "telemetry")]
    pub fn instruction_telemetry(&self) -> &BTreeMap<&'static str, HwSnapshot> {
        &self.instr_hw
    }

    /// Writes words into the global buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::BufferOutOfBounds`] if the run escapes the buffer.
    pub fn write_global(&mut self, addr: usize, data: &[f64]) -> Result<(), CoreError> {
        if addr + data.len() > self.global_buffer.len() {
            return Err(CoreError::BufferOutOfBounds {
                addr,
                len: data.len(),
                capacity: self.global_buffer.len(),
            });
        }
        self.global_buffer[addr..addr + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads a run of words from either buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::BufferOutOfBounds`] if the reference escapes the buffer.
    pub fn read_buffer(&self, r: BufferRef) -> Result<Vec<f64>, CoreError> {
        let buf = match r.space {
            MemSpace::Global => &self.global_buffer,
            MemSpace::Output => &self.output_buffer,
        };
        let (addr, len) = (r.addr as usize, r.len as usize);
        if addr + len > buf.len() {
            return Err(CoreError::BufferOutOfBounds { addr, len, capacity: buf.len() });
        }
        Ok(buf[addr..addr + len].to_vec())
    }

    /// Convenience alias of [`read_buffer`](Self::read_buffer) for output
    /// references.
    pub fn read_output(&self, r: BufferRef) -> Result<Vec<f64>, CoreError> {
        self.read_buffer(r)
    }

    fn write_ref(&mut self, r: BufferRef, data: &[f64]) -> Result<(), CoreError> {
        let buf = match r.space {
            MemSpace::Global => &mut self.global_buffer,
            MemSpace::Output => &mut self.output_buffer,
        };
        let addr = r.addr as usize;
        if addr + data.len() > buf.len() {
            return Err(CoreError::BufferOutOfBounds {
                addr,
                len: data.len(),
                capacity: buf.len(),
            });
        }
        buf[addr..addr + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn slot_operator(&self, slot: u8) -> Result<OperatorId, CoreError> {
        self.slots
            .get(slot as usize)
            .copied()
            .flatten()
            .ok_or(CoreError::IllegalInstruction { pc: self.pc, reason: "empty operator slot" })
    }

    fn branch(&mut self, target: u16) -> Result<(), CoreError> {
        let t = target as usize;
        if t > self.instruction_stack.len() {
            return Err(CoreError::IllegalInstruction {
                pc: self.pc,
                reason: "branch target out of range",
            });
        }
        self.pc = t;
        Ok(())
    }

    /// Executes one instruction. Returns `false` once halted.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllegalInstruction`] for undecodable words, bad slots or
    /// control-flow violations, plus any analog-path error.
    pub fn step(&mut self) -> Result<bool, CoreError> {
        if self.flags.halted {
            return Ok(false);
        }
        let Some(&words) = self.instruction_stack.get(self.pc) else {
            // Falling off the end halts, like an implicit Halt.
            self.flags.halted = true;
            return Ok(false);
        };
        let inst = Instruction::decode(words).ok_or(CoreError::IllegalInstruction {
            pc: self.pc,
            reason: "undecodable instruction word",
        })?;
        self.pc += 1;
        self.stats.instructions += 1;
        #[cfg(feature = "telemetry")]
        let hw_before = self.group.hw_snapshot();

        match inst {
            Instruction::Nop => {}
            Instruction::Halt => self.flags.halted = true,
            Instruction::Configure { macro_id, mode } => {
                let count = self.group.macro_count();
                if macro_id as usize >= count {
                    return Err(CoreError::NoSuchMacro { id: macro_id as usize, count });
                }
                // Mode is also applied implicitly by the solve instructions;
                // an explicit Configure models the register-write step.
                let _ = mode;
            }
            Instruction::LoadMatrix { slot, rows, cols, src } => {
                let data = self.read_buffer(src)?;
                if data.len() != rows as usize * cols as usize {
                    return Err(CoreError::ShapeMismatch {
                        expected: rows as usize * cols as usize,
                        found: data.len(),
                    });
                }
                let a = Matrix::from_vec(rows as usize, cols as usize, data);
                let id = self.group.load_matrix(&a)?;
                self.replace_slot(slot, id)?;
                self.flags.program_ok = true;
                self.stats.matrix_loads += 1;
            }
            Instruction::LoadMatrixSliced { slot, rows, cols, src } => {
                let data = self.read_buffer(src)?;
                if data.len() != rows as usize * cols as usize {
                    return Err(CoreError::ShapeMismatch {
                        expected: rows as usize * cols as usize,
                        found: data.len(),
                    });
                }
                let a = Matrix::from_vec(rows as usize, cols as usize, data);
                let id = self.group.load_matrix_bitsliced(&a)?;
                self.replace_slot(slot, id)?;
                self.flags.program_ok = true;
                self.stats.matrix_loads += 1;
            }
            Instruction::FreeMatrix { slot } => {
                if let Some(id) = self.slots[slot as usize].take() {
                    self.group.free_operator(id)?;
                }
            }
            Instruction::Mvm { slot, src, dst } => {
                let id = self.slot_operator(slot)?;
                let x = self.read_buffer(src)?;
                let y = self.group.mvm(id, &x)?;
                self.write_ref(dst, &y)?;
                self.stats.analog_ops += 1;
            }
            Instruction::MvmBatch { slot, batch, src, dst } => {
                let id = self.slot_operator(slot)?;
                let data = self.read_buffer(src)?;
                let b = batch as usize;
                if b == 0 || data.len() % b != 0 {
                    return Err(CoreError::IllegalInstruction {
                        pc: self.pc,
                        reason: "batch count does not divide the source run",
                    });
                }
                let n = data.len() / b;
                let xs: Vec<Vec<f64>> = data.chunks(n).map(<[f64]>::to_vec).collect();
                let ys = self.group.mvm_batch(id, &xs)?;
                let flat: Vec<f64> = ys.into_iter().flatten().collect();
                self.write_ref(dst, &flat)?;
                // One batched dispatch = one analog operation: the array is
                // read once and every vector streams through it.
                self.stats.analog_ops += 1;
            }
            Instruction::SolveInv { slot, src, dst } => {
                let id = self.slot_operator(slot)?;
                let b = self.read_buffer(src)?;
                let x = self.group.solve_inv(id, &b)?;
                self.write_ref(dst, &x)?;
                self.stats.analog_ops += 1;
            }
            Instruction::SolvePinv { slot, src, dst } => {
                let id = self.slot_operator(slot)?;
                let b = self.read_buffer(src)?;
                let x = self.group.solve_pinv(id, &b)?;
                self.write_ref(dst, &x)?;
                self.stats.analog_ops += 1;
            }
            Instruction::SolveEgv { slot, dst } => {
                let id = self.slot_operator(slot)?;
                let sol = self.group.solve_egv(id)?;
                self.write_ref(dst, &sol.eigenvector)?;
                self.stats.analog_ops += 1;
            }
            Instruction::Pool { kind, h, w, window, src, dst } => {
                let map = self.read_buffer(src)?;
                let out = pool2d(&map, h as usize, w as usize, window as usize, kind);
                self.write_ref(dst, &out)?;
            }
            Instruction::Activate { kind, src, dst } => {
                let mut v = self.read_buffer(src)?;
                kind.apply_slice(&mut v);
                self.write_ref(dst, &v)?;
            }
            Instruction::Softmax { src, dst } => {
                let v = self.read_buffer(src)?;
                self.write_ref(dst, &softmax(&v))?;
            }
            Instruction::Copy { src, dst } => {
                let v = self.read_buffer(src)?;
                self.write_ref(dst, &v)?;
            }
            Instruction::Jump { target } => self.branch(target)?,
            Instruction::BranchIfLess { a, b, target } => {
                let va = self.read_buffer(a)?[0];
                let vb = self.read_buffer(b)?[0];
                self.flags.less = va < vb;
                if self.flags.less {
                    self.branch(target)?;
                }
            }
            Instruction::LoopDec { counter, target } => {
                let addr = counter as usize;
                if addr >= self.global_buffer.len() {
                    return Err(CoreError::BufferOutOfBounds {
                        addr,
                        len: 1,
                        capacity: self.global_buffer.len(),
                    });
                }
                self.global_buffer[addr] -= 1.0;
                if self.global_buffer[addr] > 0.0 {
                    self.branch(target)?;
                }
            }
        }
        #[cfg(feature = "telemetry")]
        {
            let delta = self.group.hw_snapshot().since(&hw_before);
            if !delta.is_zero() {
                *self.instr_hw.entry(Self::mnemonic(&inst)).or_default() += &delta;
            }
        }
        Ok(!self.flags.halted)
    }

    /// Attribution key for one decoded instruction.
    #[cfg(feature = "telemetry")]
    fn mnemonic(inst: &Instruction) -> &'static str {
        match inst {
            Instruction::Nop => "nop",
            Instruction::Halt => "halt",
            Instruction::Configure { .. } => "configure",
            Instruction::LoadMatrix { .. } => "load_matrix",
            Instruction::LoadMatrixSliced { .. } => "load_matrix_sliced",
            Instruction::FreeMatrix { .. } => "free_matrix",
            Instruction::Mvm { .. } => "mvm",
            Instruction::MvmBatch { .. } => "mvm_batch",
            Instruction::SolveInv { .. } => "solve_inv",
            Instruction::SolvePinv { .. } => "solve_pinv",
            Instruction::SolveEgv { .. } => "solve_egv",
            Instruction::Pool { .. } => "pool",
            Instruction::Activate { .. } => "activate",
            Instruction::Softmax { .. } => "softmax",
            Instruction::Copy { .. } => "copy",
            Instruction::Jump { .. } => "jump",
            Instruction::BranchIfLess { .. } => "branch_if_less",
            Instruction::LoopDec { .. } => "loop_dec",
        }
    }

    fn replace_slot(&mut self, slot: u8, id: OperatorId) -> Result<(), CoreError> {
        let s = slot as usize;
        if s >= OPERATOR_SLOTS {
            return Err(CoreError::IllegalInstruction {
                pc: self.pc,
                reason: "operator slot out of range",
            });
        }
        if let Some(old) = self.slots[s].take() {
            self.group.free_operator(old)?;
        }
        self.slots[s] = Some(id);
        Ok(())
    }

    /// Runs until `Halt` or the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Self::step) errors;
    /// [`CoreError::IllegalInstruction`] if the budget is exceeded (runaway
    /// program).
    pub fn run(&mut self, max_steps: usize) -> Result<RunStats, CoreError> {
        for _ in 0..max_steps {
            if !self.step()? {
                return Ok(self.stats);
            }
        }
        if self.flags.halted {
            Ok(self.stats)
        } else {
            Err(CoreError::IllegalInstruction { pc: self.pc, reason: "step budget exceeded" })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler;
    use gramc_linalg::{lu, random, vector};

    fn small_system(n: usize, seed: u64) -> GramcSystem {
        GramcSystem::new(3, MacroConfig::small_ideal(n), seed, 4096)
    }

    #[test]
    fn program_counter_and_halt() {
        let mut sys = small_system(2, 1);
        sys.load_program(vec![Instruction::Nop, Instruction::Nop, Instruction::Halt]);
        let stats = sys.run(10).unwrap();
        assert_eq!(stats.instructions, 3);
        assert!(sys.flags().halted);
        // Further steps are no-ops.
        assert!(!sys.step().unwrap());
    }

    #[test]
    fn falling_off_the_end_halts() {
        let mut sys = small_system(2, 2);
        sys.load_program(vec![Instruction::Nop]);
        sys.run(10).unwrap();
        assert!(sys.flags().halted);
    }

    #[test]
    fn runaway_program_is_detected() {
        let mut sys = small_system(2, 3);
        sys.load_program(vec![Instruction::Jump { target: 0 }]);
        assert!(matches!(
            sys.run(50),
            Err(CoreError::IllegalInstruction { reason: "step budget exceeded", .. })
        ));
    }

    #[test]
    fn full_mvm_program() {
        let mut sys = small_system(4, 4);
        let a = Matrix::from_rows(&[
            &[1.0, 0.2, 0.0, -0.3],
            &[0.0, 0.8, 0.1, 0.0],
            &[0.5, 0.0, 1.0, 0.2],
            &[-0.2, 0.4, 0.0, 0.9],
        ]);
        sys.write_global(0, a.as_slice()).unwrap();
        sys.write_global(16, &[1.0, -1.0, 0.5, 0.25]).unwrap();
        sys.load_program(vec![
            Instruction::LoadMatrix { slot: 0, rows: 4, cols: 4, src: BufferRef::global(0, 16) },
            Instruction::Mvm {
                slot: 0,
                src: BufferRef::global(16, 4),
                dst: BufferRef::output(0, 4),
            },
            Instruction::Halt,
        ]);
        let stats = sys.run(100).unwrap();
        assert_eq!(stats.analog_ops, 1);
        assert_eq!(stats.matrix_loads, 1);
        let y = sys.read_output(BufferRef::output(0, 4)).unwrap();
        let y_ref = a.matvec(&[1.0, -1.0, 0.5, 0.25]);
        assert!(vector::rel_error(&y, &y_ref) < 0.02, "{y:?} vs {y_ref:?}");
    }

    #[test]
    fn batched_mvm_program_matches_per_vector_instructions() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.2, 0.0, -0.3],
            &[0.0, 0.8, 0.1, 0.0],
            &[0.5, 0.0, 1.0, 0.2],
            &[-0.2, 0.4, 0.0, 0.9],
        ]);
        let xs = [[1.0, -1.0, 0.5, 0.25], [0.2, 0.9, -0.4, 0.0], [-0.6, 0.1, 0.3, 1.0]];
        let mut sys = small_system(4, 12);
        sys.write_global(0, a.as_slice()).unwrap();
        for (k, x) in xs.iter().enumerate() {
            sys.write_global(16 + 4 * k, x).unwrap();
        }
        sys.load_program(vec![
            Instruction::LoadMatrix { slot: 0, rows: 4, cols: 4, src: BufferRef::global(0, 16) },
            Instruction::MvmBatch {
                slot: 0,
                batch: 3,
                src: BufferRef::global(16, 12),
                dst: BufferRef::output(0, 12),
            },
            Instruction::Halt,
        ]);
        let stats = sys.run(100).unwrap();
        assert_eq!(stats.analog_ops, 1, "one batched dispatch = one analog op");
        let y = sys.read_output(BufferRef::output(0, 12)).unwrap();
        for (k, x) in xs.iter().enumerate() {
            let y_ref = a.matvec(x);
            assert!(
                vector::rel_error(&y[4 * k..4 * (k + 1)], &y_ref) < 0.02,
                "batch element {k}: {:?} vs {y_ref:?}",
                &y[4 * k..4 * (k + 1)]
            );
        }
    }

    #[test]
    fn batched_mvm_rejects_indivisible_batch() {
        let mut sys = small_system(4, 13);
        let a = Matrix::identity(4);
        sys.write_global(0, a.as_slice()).unwrap();
        sys.load_program(vec![
            Instruction::LoadMatrix { slot: 0, rows: 4, cols: 4, src: BufferRef::global(0, 16) },
            Instruction::MvmBatch {
                slot: 0,
                batch: 5, // 12 words do not split into 5 vectors
                src: BufferRef::global(16, 12),
                dst: BufferRef::output(0, 12),
            },
        ]);
        assert!(matches!(sys.run(10), Err(CoreError::IllegalInstruction { .. })));
    }

    #[test]
    fn solve_program_with_functional_postprocessing() {
        let mut sys = small_system(4, 5);
        let mut rng = random::seeded_rng(60);
        let a = random::spd_with_condition(&mut rng, 4, 4.0);
        let b = [0.5, -0.25, 0.75, 0.1];
        sys.write_global(0, a.as_slice()).unwrap();
        sys.write_global(16, &b).unwrap();
        sys.load_program(vec![
            Instruction::LoadMatrix { slot: 1, rows: 4, cols: 4, src: BufferRef::global(0, 16) },
            Instruction::SolveInv {
                slot: 1,
                src: BufferRef::global(16, 4),
                dst: BufferRef::output(0, 4),
            },
            // ReLU the solution in the functional module.
            Instruction::Activate {
                kind: crate::Activation::Relu,
                src: BufferRef::output(0, 4),
                dst: BufferRef::output(8, 4),
            },
            Instruction::Halt,
        ]);
        sys.run(100).unwrap();
        let x = sys.read_output(BufferRef::output(0, 4)).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::rel_error(&x, &x_ref) < 0.05, "{x:?} vs {x_ref:?}");
        let relu = sys.read_output(BufferRef::output(8, 4)).unwrap();
        for (r, xi) in relu.iter().zip(&x) {
            assert_eq!(*r, xi.max(0.0));
        }
    }

    #[test]
    fn loop_dec_iterates() {
        let mut sys = small_system(2, 6);
        sys.write_global(0, &[3.0]).unwrap(); // loop counter
        sys.write_global(1, &[0.0]).unwrap(); // accumulator via Copy trick
        sys.load_program(vec![
            // body: copy counter to output (so we can observe the last value)
            Instruction::Copy { src: BufferRef::global(0, 1), dst: BufferRef::output(0, 1) },
            Instruction::LoopDec { counter: 0, target: 0 },
            Instruction::Halt,
        ]);
        let stats = sys.run(100).unwrap();
        // 3 body executions + 3 loopdec + halt
        assert_eq!(stats.instructions, 7);
        let last = sys.read_output(BufferRef::output(0, 1)).unwrap()[0];
        assert_eq!(last, 1.0);
    }

    #[test]
    fn branch_if_less_sets_flag() {
        let mut sys = small_system(2, 7);
        sys.write_global(0, &[1.0, 2.0]).unwrap();
        sys.load_program(vec![
            Instruction::BranchIfLess {
                a: BufferRef::global(0, 1),
                b: BufferRef::global(1, 1),
                target: 3,
            },
            Instruction::Nop, // skipped
            Instruction::Nop,
            Instruction::Halt,
        ]);
        let stats = sys.run(10).unwrap();
        assert!(sys.flags().less);
        assert_eq!(stats.instructions, 2); // branch + halt
    }

    #[test]
    fn bad_slot_is_illegal() {
        let mut sys = small_system(2, 8);
        sys.load_program(vec![Instruction::Mvm {
            slot: 3,
            src: BufferRef::global(0, 2),
            dst: BufferRef::output(0, 2),
        }]);
        assert!(matches!(sys.run(10), Err(CoreError::IllegalInstruction { .. })));
    }

    #[test]
    fn buffer_bounds_are_checked() {
        let mut sys = small_system(2, 9);
        assert!(sys.write_global(4090, &[0.0; 10]).is_err());
        assert!(sys.read_buffer(BufferRef::global(4095, 2)).is_err());
        sys.load_program(vec![Instruction::Copy {
            src: BufferRef::global(0, 2),
            dst: BufferRef::output(4095, 2),
        }]);
        assert!(matches!(sys.run(10), Err(CoreError::BufferOutOfBounds { .. })));
    }

    #[test]
    fn reloading_a_slot_frees_the_old_operator() {
        let mut sys = small_system(4, 10);
        // A 4x2 operator packs both differential planes into one 4-column
        // macro, so repeated loads into the same slot must keep exactly one
        // macro claimed (no leak).
        let a = Matrix::from_fn(4, 2, |i, j| 1.0 + (i * 2 + j) as f64 / 8.0);
        sys.write_global(0, a.as_slice()).unwrap();
        let load =
            Instruction::LoadMatrix { slot: 0, rows: 4, cols: 2, src: BufferRef::global(0, 8) };
        sys.load_program(vec![load, load, load, Instruction::Halt]);
        sys.run(100).unwrap();
        assert!(sys.macro_group().free_macros() >= 2);
    }

    #[test]
    fn compiled_program_runs_end_to_end() {
        // Exercise the compile → load → run flow the paper describes.
        let mut rng = random::seeded_rng(61);
        let a = random::spd_with_condition(&mut rng, 4, 3.0);
        let b = random::normal_vector(&mut rng, 4);
        let program =
            compiler::compile(&[compiler::MatrixOp::SolveInv { a: a.clone(), b: b.clone() }])
                .unwrap();
        let mut sys = small_system(4, 11);
        let outputs = compiler::execute(&mut sys, &program, 10_000).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::rel_error(&outputs[0], &x_ref) < 0.05);
    }
}
