//! The compiling stage (paper Fig. 3: "The instructions from compiling
//! stage will be loaded into the instruction stack in advance").
//!
//! [`compile`] lowers a list of high-level matrix operations into a GRAMC
//! instruction sequence plus a global-buffer image (matrix data, input
//! vectors), and [`execute`] loads both into a [`GramcSystem`], runs the
//! controller and collects the results.

use gramc_linalg::Matrix;

use crate::error::CoreError;
use crate::isa::{BufferRef, Instruction};
use crate::system::{GramcSystem, RunStats};

/// A high-level matrix operation to lower.
#[derive(Debug, Clone)]
pub enum MatrixOp {
    /// `y = A·x`.
    Mvm {
        /// The matrix.
        a: Matrix,
        /// The input vector.
        x: Vec<f64>,
    },
    /// `Y = A·X` for a whole batch of input vectors: lowered to a single
    /// [`Instruction::MvmBatch`] so the hardware reads the array once for
    /// the batch (the LeNet layer pattern).
    MvmBatch {
        /// The matrix.
        a: Matrix,
        /// The input vectors (each of length `a.cols()`).
        xs: Vec<Vec<f64>>,
    },
    /// Solve `A·x = b`.
    SolveInv {
        /// The (square) matrix.
        a: Matrix,
        /// Right-hand side.
        b: Vec<f64>,
    },
    /// Least squares `x = A⁺·b`.
    SolvePinv {
        /// The matrix.
        a: Matrix,
        /// Right-hand side.
        b: Vec<f64>,
    },
    /// Dominant eigenvector of `A`.
    SolveEgv {
        /// The (square) matrix.
        a: Matrix,
    },
}

impl MatrixOp {
    fn output_len(&self) -> usize {
        match self {
            MatrixOp::Mvm { a, .. } => a.rows(),
            MatrixOp::MvmBatch { a, xs } => a.rows() * xs.len(),
            MatrixOp::SolveInv { a, .. } => a.rows(),
            MatrixOp::SolvePinv { a, .. } => a.cols(),
            MatrixOp::SolveEgv { a } => a.rows(),
        }
    }
}

/// A compiled program: instruction stream, initial global-buffer image and
/// the output locations of each operation.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The instruction stream (ends with `Halt`).
    pub instructions: Vec<Instruction>,
    /// Initial contents of the global buffer.
    pub global_image: Vec<f64>,
    /// One output reference per input operation, in order.
    pub outputs: Vec<BufferRef>,
}

/// Lowers a sequence of matrix operations.
///
/// Each operation stages its matrix into the global buffer, emits a
/// `LoadMatrix` (the write-verify path), the matching solve/MVM instruction
/// (the solution path), and a `FreeMatrix` so macros are recycled between
/// operations.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] for empty inputs or shape mismatches
/// detectable at compile time.
pub fn compile(ops: &[MatrixOp]) -> Result<CompiledProgram, CoreError> {
    if ops.is_empty() {
        return Err(CoreError::InvalidArgument("no operations to compile"));
    }
    let mut instructions = Vec::new();
    let mut image: Vec<f64> = Vec::new();
    let mut outputs = Vec::new();
    let mut out_addr: u32 = 0;

    for op in ops {
        let (a, vec_in) = match op {
            MatrixOp::Mvm { a, x } => (a, Some(x)),
            MatrixOp::MvmBatch { a, .. } => (a, None), // staged separately below
            MatrixOp::SolveInv { a, b } => (a, Some(b)),
            MatrixOp::SolvePinv { a, b } => (a, Some(b)),
            MatrixOp::SolveEgv { a } => (a, None),
        };
        let (rows, cols) = a.shape();
        if rows == 0 || cols == 0 {
            return Err(CoreError::InvalidArgument("empty matrix in program"));
        }
        if rows > u16::MAX as usize || cols > u16::MAX as usize {
            return Err(CoreError::InvalidArgument("matrix too large for the ISA encoding"));
        }
        if let Some(v) = vec_in {
            let expected = match op {
                MatrixOp::Mvm { .. } => cols,
                _ => rows,
            };
            if v.len() != expected {
                return Err(CoreError::ShapeMismatch { expected, found: v.len() });
            }
        }
        if let MatrixOp::MvmBatch { xs, .. } = op {
            if xs.is_empty() || xs.len() > u16::MAX as usize {
                return Err(CoreError::InvalidArgument(
                    "batched MVM needs 1..=65535 input vectors",
                ));
            }
            // The ISA packs buffer lengths into 16-bit fields, so the
            // concatenated src/dst runs must each fit in u16 — split
            // oversized batches across several MvmBatch ops.
            if xs.len() * cols > u16::MAX as usize || xs.len() * rows > u16::MAX as usize {
                return Err(CoreError::InvalidArgument(
                    "batched MVM buffers exceed the ISA's 16-bit length fields; split the batch",
                ));
            }
            for x in xs {
                if x.len() != cols {
                    return Err(CoreError::ShapeMismatch { expected: cols, found: x.len() });
                }
            }
        }

        // Stage the matrix.
        let mat_addr = image.len() as u32;
        image.extend_from_slice(a.as_slice());
        let mat_ref = BufferRef::global(mat_addr, (rows * cols) as u32);
        instructions.push(Instruction::LoadMatrix {
            slot: 0,
            rows: rows as u16,
            cols: cols as u16,
            src: mat_ref,
        });

        // Stage the vector (if any).
        let vec_ref = vec_in.map(|v| {
            let addr = image.len() as u32;
            image.extend_from_slice(v);
            BufferRef::global(addr, v.len() as u32)
        });

        let out_len = op.output_len() as u32;
        let dst = BufferRef::output(out_addr, out_len);
        out_addr += out_len;
        outputs.push(dst);

        instructions.push(match op {
            MatrixOp::Mvm { .. } => {
                Instruction::Mvm { slot: 0, src: vec_ref.expect("mvm has input"), dst }
            }
            MatrixOp::MvmBatch { xs, .. } => {
                // Stage the concatenated batch after the matrix.
                let addr = image.len() as u32;
                for x in xs {
                    image.extend_from_slice(x);
                }
                let src = BufferRef::global(addr, (xs.len() * cols) as u32);
                Instruction::MvmBatch { slot: 0, batch: xs.len() as u16, src, dst }
            }
            MatrixOp::SolveInv { .. } => {
                Instruction::SolveInv { slot: 0, src: vec_ref.expect("inv has rhs"), dst }
            }
            MatrixOp::SolvePinv { .. } => {
                Instruction::SolvePinv { slot: 0, src: vec_ref.expect("pinv has rhs"), dst }
            }
            MatrixOp::SolveEgv { .. } => Instruction::SolveEgv { slot: 0, dst },
        });
        instructions.push(Instruction::FreeMatrix { slot: 0 });
    }
    instructions.push(Instruction::Halt);
    Ok(CompiledProgram { instructions, global_image: image, outputs })
}

/// Loads a compiled program into `sys`, runs it, and returns the per-op
/// results.
///
/// # Errors
///
/// Buffer errors if the program image exceeds the system's buffers, plus
/// any controller/analog error from the run.
pub fn execute(
    sys: &mut GramcSystem,
    program: &CompiledProgram,
    max_steps: usize,
) -> Result<Vec<Vec<f64>>, CoreError> {
    sys.write_global(0, &program.global_image)?;
    sys.load_program(program.instructions.clone());
    let _stats: RunStats = sys.run(max_steps)?;
    program.outputs.iter().map(|&r| sys.read_output(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MacroConfig;
    use gramc_linalg::{pseudoinverse, random, vector, SymmetricEigen};

    #[test]
    fn compile_rejects_empty_and_mismatched() {
        assert!(compile(&[]).is_err());
        let a = Matrix::identity(3);
        assert!(compile(&[MatrixOp::Mvm { a: a.clone(), x: vec![1.0; 2] }]).is_err());
        assert!(compile(&[MatrixOp::SolveInv { a, b: vec![1.0; 4] }]).is_err());
    }

    #[test]
    fn program_shape_is_sound() {
        let a = Matrix::identity(4);
        let p =
            compile(&[MatrixOp::Mvm { a: a.clone(), x: vec![1.0; 4] }, MatrixOp::SolveEgv { a }])
                .unwrap();
        // 3 instructions per op + Halt.
        assert_eq!(p.instructions.len(), 7);
        assert_eq!(p.outputs.len(), 2);
        assert!(matches!(p.instructions.last(), Some(Instruction::Halt)));
        // Matrix data + vector staged in the image.
        assert_eq!(p.global_image.len(), 16 + 4 + 16);
    }

    #[test]
    fn batched_mvm_compiles_and_executes() {
        let mut rng = random::seeded_rng(72);
        let a = random::gaussian_matrix(&mut rng, 4, 4);
        let xs: Vec<Vec<f64>> = (0..5).map(|_| random::normal_vector(&mut rng, 4)).collect();
        let program = compile(&[MatrixOp::MvmBatch { a: a.clone(), xs: xs.clone() }]).unwrap();
        // LoadMatrix + MvmBatch + FreeMatrix + Halt.
        assert_eq!(program.instructions.len(), 4);
        let mut sys = GramcSystem::new(3, MacroConfig::small_ideal(4), 73, 4096);
        let out = execute(&mut sys, &program, 10_000).unwrap();
        assert_eq!(out[0].len(), 20);
        for (k, x) in xs.iter().enumerate() {
            let y_ref = a.matvec(x);
            assert!(
                vector::rel_error(&out[0][4 * k..4 * (k + 1)], &y_ref) < 0.05,
                "batch element {k}"
            );
        }
        assert!(matches!(
            compile(&[MatrixOp::MvmBatch { a, xs: vec![] }]),
            Err(CoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn batched_mvm_rejects_buffers_exceeding_isa_length_fields() {
        // 600 vectors × 128 cols = 76800 words > u16::MAX: the 16-bit
        // packed length fields would silently truncate on encode.
        let a = Matrix::identity(128);
        let xs = vec![vec![0.0; 128]; 600];
        assert!(matches!(
            compile(&[MatrixOp::MvmBatch { a, xs }]),
            Err(CoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn multi_op_program_executes() {
        let mut rng = random::seeded_rng(70);
        let a = random::spd_with_condition(&mut rng, 4, 3.0);
        let x = random::normal_vector(&mut rng, 4);
        let tall = random::gaussian_matrix(&mut rng, 6, 2);
        let b6 = random::normal_vector(&mut rng, 6);
        let gram = random::gram(&mut rng, 4, 12);

        let program = compile(&[
            MatrixOp::Mvm { a: a.clone(), x: x.clone() },
            MatrixOp::SolvePinv { a: tall.clone(), b: b6.clone() },
            MatrixOp::SolveEgv { a: gram.clone() },
        ])
        .unwrap();

        let mut sys = GramcSystem::new(3, MacroConfig::small_ideal(6), 71, 4096);
        let out = execute(&mut sys, &program, 10_000).unwrap();

        let y_ref = a.matvec(&x);
        assert!(vector::rel_error(&out[0], &y_ref) < 0.05, "MVM off");

        let x_ref = pseudoinverse(&tall).unwrap().matvec(&b6);
        assert!(vector::rel_error(&out[1], &x_ref) < 0.05, "PINV off");

        let eig = SymmetricEigen::new(&gram).unwrap();
        let err = vector::rel_error_up_to_sign(&out[2], &eig.eigenvector(0));
        assert!(err < 0.15, "EGV off: {err}");
    }
}
