//! # gramc-core
//!
//! The GRAMC architecture: reconfigurable AMC macros, the hybrid
//! digital/analog system of the paper's Fig. 3, and the digital functional
//! modules.
//!
//! * [`MacroGroup`] / [`AmcMacro`] — the paper's Fig. 2 macro group with the
//!   four analog primitives (MVM / INV / PINV / EGV),
//! * [`Dac`] / [`Adc`] — the DA/AD interfaces,
//! * [`RegisterArray`] / [`MacroMode`] — transmission-gate reconfiguration,
//! * [`functional`] — pooling / activation / softmax / requantization,
//! * [`NonidealityConfig`] — every analog error source in one place,
//! * `isa` / `system` / `compiler` — instruction set, controller and the
//!   write-verify / solve data paths,
//! * [`tiling`] — multi-macro placement for matrices beyond 128×128,
//! * [`metrics`] — latency/energy models for analog-vs-digital comparisons.

#![warn(missing_docs)]

mod amc_macro;
pub mod assembler;
pub mod compiler;
mod converter;
mod error;
pub mod functional;
pub mod isa;
pub mod metrics;
mod nonideal;
mod registers;
pub mod system;
pub mod tiling;

pub use amc_macro::{
    AmcMacro, EgvSolution, MacroConfig, MacroGroup, OperatorId, OperatorInfo, ProbeReport,
};
pub use converter::{Adc, Dac};
pub use error::CoreError;
pub use gramc_array::ProgramOutcome;
#[cfg(feature = "telemetry")]
pub use gramc_telemetry::{HwCounters, HwSnapshot};

pub use functional::{argmax, pool2d, requantize, softmax, Activation, Pooling};
#[cfg(feature = "fault-inject")]
pub use gramc_array::{FaultConfig, FaultKind, FaultPlan};
pub use nonideal::{NonidealityConfig, ProgrammingMode};
pub use registers::{GateConfiguration, MacroMode, OpampRole, RegisterArray};
