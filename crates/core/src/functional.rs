//! Digital functional modules (paper Fig. 3 "EU / functional module" and
//! Fig. 5: "The convolutional computation results are transferred to the
//! digital functional module to execute the pooling and activation
//! operations").
//!
//! These operate on channel-major feature maps (`[channels][h][w]` flattened
//! row-major) and plain vectors, matching what the output buffer hands over.

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Applies the activation in place to a slice.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = self.apply(*x);
        }
    }
}

/// Supported pooling reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pooling {
    /// Maximum over the window.
    #[default]
    Max,
    /// Mean over the window.
    Average,
}

/// Pools a single-channel `h × w` feature map with a square window and
/// stride equal to the window size (the LeNet-5 configuration).
///
/// # Panics
///
/// Panics if `h`/`w` are not multiples of `window`, if `window == 0`, or if
/// the map length disagrees with `h·w`.
pub fn pool2d(map: &[f64], h: usize, w: usize, window: usize, kind: Pooling) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    assert_eq!(map.len(), h * w, "feature map length mismatch");
    assert!(
        h.is_multiple_of(window) && w.is_multiple_of(window),
        "h and w must be multiples of window"
    );
    let oh = h / window;
    let ow = w / window;
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = match kind {
                Pooling::Max => f64::NEG_INFINITY,
                Pooling::Average => 0.0,
            };
            for dy in 0..window {
                for dx in 0..window {
                    let v = map[(oy * window + dy) * w + ox * window + dx];
                    match kind {
                        Pooling::Max => acc = acc.max(v),
                        Pooling::Average => acc += v,
                    }
                }
            }
            if kind == Pooling::Average {
                acc /= (window * window) as f64;
            }
            out.push(acc);
        }
    }
    out
}

/// Numerically stable softmax.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|x| (x - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (ties resolve to the first).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Requantizes a vector to a signed integer grid: values are scaled by
/// `1/scale`, rounded, clamped to `±((1<<(bits-1)) - 1)` and returned in
/// integer units. This models the digital requantization stage between
/// GRAMC layers.
///
/// # Panics
///
/// Panics if `scale <= 0` or `bits` is outside `2..=16`.
pub fn requantize(xs: &[f64], scale: f64, bits: u32) -> Vec<i32> {
    assert!(scale > 0.0, "scale must be positive");
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let m = ((1i64 << (bits - 1)) - 1) as f64;
    xs.iter().map(|&x| (x / scale).round().clamp(-m, m) as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_friends() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-15);
        assert_eq!(Activation::Identity.apply(1.5), 1.5);
        let mut v = vec![-1.0, 2.0];
        Activation::Relu.apply_slice(&mut v);
        assert_eq!(v, vec![0.0, 2.0]);
    }

    #[test]
    fn max_pool_2x2() {
        #[rustfmt::skip]
        let map = vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 1.0, 2.0, 3.0,
            4.0, 5.0, 6.0, 7.0,
        ];
        let out = pool2d(&map, 4, 4, 2, Pooling::Max);
        assert_eq!(out, vec![6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let map = vec![1.0, 3.0, 5.0, 7.0];
        let out = pool2d(&map, 2, 2, 2, Pooling::Average);
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn pool_window_one_is_identity() {
        let map = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(pool2d(&map, 2, 2, 1, Pooling::Max), map);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn pool_rejects_non_divisible() {
        let _ = pool2d(&[0.0; 9], 3, 3, 2, Pooling::Max);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large offsets.
        let q = softmax(&[1001.0, 1002.0, 1003.0]);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn requantize_clamps_and_rounds() {
        let out = requantize(&[0.04, -0.26, 10.0], 0.1, 4);
        assert_eq!(out, vec![0, -3, 7]);
    }
}
