//! Analytical latency/energy models for analog-vs-digital comparisons.
//!
//! The paper's pitch — "in-memory AMC … for its high speed and low power
//! consumption" — rests on the analog solver's O(1) settling time versus the
//! O(n³) digital factorization. These models make that comparison concrete
//! for the scaling bench (EXPERIMENTS.md E8). Constants are order-of-
//! magnitude values from the in-memory-computing literature (Sun et al.
//! PNAS 2019; Walden-style converter figures of merit) — absolute numbers
//! are indicative, scaling shapes are the point.

/// Latency + energy estimate for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Seconds.
    pub latency: f64,
    /// Joules.
    pub energy: f64,
}

impl Cost {
    /// Adds two costs (sequential composition).
    pub fn then(self, other: Cost) -> Cost {
        Cost { latency: self.latency + other.latency, energy: self.energy + other.energy }
    }
}

/// Cost model for the analog macro.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogCostModel {
    /// Base op-amp settling time for an MVM read-out, seconds.
    pub mvm_settle: f64,
    /// Settling time of a feedback solve (INV/PINV); grows with the
    /// condition number in practice, a constant captures the typical case.
    pub solve_settle: f64,
    /// Energy per DAC conversion, joules.
    pub dac_energy: f64,
    /// Walden figure of merit: joules per conversion step (energy per ADC
    /// conversion is `fom · 2^bits`).
    pub adc_fom: f64,
    /// ADC resolution used for the energy estimate.
    pub adc_bits: u32,
    /// Static array power during evaluation at read bias, watts per active
    /// cell (I·V at mid conductance ≈ 50 µS · (0.2 V)²).
    pub cell_read_power: f64,
    /// Energy per write-verify pulse, joules (≈ 50 µA · 2 V · 30 ns).
    pub write_pulse_energy: f64,
}

impl Default for AnalogCostModel {
    fn default() -> Self {
        Self {
            mvm_settle: 100e-9,
            solve_settle: 500e-9,
            dac_energy: 1e-12,
            adc_fom: 50e-15,
            adc_bits: 10,
            cell_read_power: 50e-6 * 0.2 * 0.2,
            write_pulse_energy: 50e-6 * 2.0 * 30e-9,
        }
    }
}

impl AnalogCostModel {
    fn adc_energy(&self) -> f64 {
        self.adc_fom * f64::from(1u32 << self.adc_bits)
    }

    /// Cost of one `n × n` analog MVM (differential pair: 2n² active cells,
    /// n DAC + n ADC conversions, one settling interval).
    pub fn mvm(&self, n: usize) -> Cost {
        let nf = n as f64;
        Cost {
            latency: self.mvm_settle,
            energy: 2.0 * nf * nf * self.cell_read_power * self.mvm_settle
                + nf * (self.dac_energy + self.adc_energy()),
        }
    }

    /// Cost of one `n × n` analog INV/PINV solve — one settling interval
    /// regardless of `n` (the "one-step" claim), with the array biased for
    /// the duration.
    pub fn solve(&self, n: usize) -> Cost {
        let nf = n as f64;
        Cost {
            latency: self.solve_settle,
            energy: 2.0 * nf * nf * self.cell_read_power * self.solve_settle
                + nf * (self.dac_energy + self.adc_energy()),
        }
    }

    /// Cost of programming an `n × n` operator (two differential planes)
    /// with `pulses_per_cell` average write-verify pulses.
    pub fn program(&self, n: usize, pulses_per_cell: f64) -> Cost {
        let cells = 2.0 * (n * n) as f64;
        Cost {
            latency: cells * pulses_per_cell * 30e-9, // serial word-line writes
            energy: cells * pulses_per_cell * self.write_pulse_energy,
        }
    }

    /// Folds *measured* hardware counters through the model: the analytic
    /// per-event constants priced against what the simulated hardware
    /// actually did, instead of the idealized per-op shapes above.
    ///
    /// Latency sums settling and write intervals (MVM settles, solve
    /// settles, 30 ns write pulses); energy sums converter events plus the
    /// array bias energy of every cell-read cycle over its settling window.
    #[cfg(feature = "telemetry")]
    pub fn attribute(&self, hw: &gramc_telemetry::HwSnapshot) -> Cost {
        let pulse_width = 30e-9;
        Cost {
            latency: hw.settle_events as f64 * self.mvm_settle
                + hw.solve_settles as f64 * self.solve_settle
                + hw.write_pulses as f64 * pulse_width,
            energy: hw.dac_drives as f64 * self.dac_energy
                + hw.adc_conversions as f64 * self.adc_energy()
                + hw.write_pulses as f64 * self.write_pulse_energy
                + hw.read_cycles_mvm as f64 * self.cell_read_power * self.mvm_settle
                + hw.read_cycles_solve as f64 * self.cell_read_power * self.solve_settle,
        }
    }
}

/// Cell layout style for the area model.
///
/// The device crate models both halves: the Stanford-PKU RRAM compact model
/// is the resistive element itself (a 4F² crosspoint when laid out
/// passively), and [`gramc_device::OneTOneR`] adds the NMOS access
/// transistor that dominates the footprint (≈ 12F², transistor-limited).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellLayout {
    /// 1T1R: RRAM in series with its access transistor, ≈ 12F² per cell.
    OneTOneR,
    /// Passive Stanford-PKU crosspoint, the 4F² density limit.
    Crosspoint,
}

impl CellLayout {
    /// Cell area in units of F² (square feature sizes).
    pub fn cell_f2(self) -> f64 {
        match self {
            CellLayout::OneTOneR => 12.0,
            CellLayout::Crosspoint => 4.0,
        }
    }
}

/// Per-component silicon area of one analog macro, mm².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Crossbar cell matrix (both differential planes counted by the
    /// caller via the macro count).
    pub crossbar_mm2: f64,
    /// Row DAC drivers.
    pub dac_mm2: f64,
    /// Column ADC read-out.
    pub adc_mm2: f64,
}

impl AreaBreakdown {
    /// Total macro area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.crossbar_mm2 + self.dac_mm2 + self.adc_mm2
    }

    /// Component-wise sum (e.g. across macros or shards).
    pub fn then(self, other: AreaBreakdown) -> AreaBreakdown {
        AreaBreakdown {
            crossbar_mm2: self.crossbar_mm2 + other.crossbar_mm2,
            dac_mm2: self.dac_mm2 + other.dac_mm2,
            adc_mm2: self.adc_mm2 + other.adc_mm2,
        }
    }

    /// Scales every component (e.g. by a macro or shard count).
    pub fn scaled(self, k: f64) -> AreaBreakdown {
        AreaBreakdown {
            crossbar_mm2: self.crossbar_mm2 * k,
            dac_mm2: self.dac_mm2 * k,
            adc_mm2: self.adc_mm2 * k,
        }
    }
}

/// Per-component area coefficients for the analog macro — the mm² half of
/// the RAMwich-style accounting (the energy half is
/// [`AnalogCostModel::attribute`]). Converter footprints are indicative
/// ISAAC/PUMA-class figures (8-bit SAR ADC ≈ 1.2e-3 mm², one DAC driver
/// channel ≈ 1.7e-6 mm²); the crossbar follows from the cell layout and
/// feature size.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogAreaModel {
    /// Lithography feature size F, meters (Stanford-PKU demos sit at 130 nm).
    pub feature_size: f64,
    /// Cell layout (1T1R vs passive crosspoint).
    pub cell_layout: CellLayout,
    /// Area per DAC driver channel, mm² (one per array row).
    pub dac_channel_mm2: f64,
    /// Area per ADC read-out channel, mm² (one per array column).
    pub adc_channel_mm2: f64,
}

impl Default for AnalogAreaModel {
    fn default() -> Self {
        Self {
            feature_size: 130e-9,
            cell_layout: CellLayout::OneTOneR,
            dac_channel_mm2: 1.7e-6,
            adc_channel_mm2: 1.2e-3,
        }
    }
}

impl AnalogAreaModel {
    /// Area of one `rows × cols` crossbar plane, mm².
    pub fn crossbar_mm2(&self, rows: usize, cols: usize) -> f64 {
        let f_mm = self.feature_size * 1e3; // m → mm
        (rows * cols) as f64 * self.cell_layout.cell_f2() * f_mm * f_mm
    }

    /// Per-component area of one macro: a `rows × cols` crossbar plane with
    /// `rows` DAC drivers and `cols` ADC channels.
    pub fn macro_area(&self, rows: usize, cols: usize) -> AreaBreakdown {
        AreaBreakdown {
            crossbar_mm2: self.crossbar_mm2(rows, cols),
            dac_mm2: rows as f64 * self.dac_channel_mm2,
            adc_mm2: cols as f64 * self.adc_channel_mm2,
        }
    }

    /// Total area of a deployment of `macros` identical macros (e.g.
    /// `shards × macros_per_shard` in the runtime).
    pub fn deployment_area(&self, macros: usize, rows: usize, cols: usize) -> AreaBreakdown {
        self.macro_area(rows, cols).scaled(macros as f64)
    }
}

/// Cost model for the digital baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalCostModel {
    /// Sustained floating-point throughput, FLOP/s.
    pub flops_per_second: f64,
    /// Energy per floating-point operation, joules.
    pub energy_per_flop: f64,
}

impl Default for DigitalCostModel {
    fn default() -> Self {
        // A competent embedded-class FP unit: 10 GFLOP/s at 10 pJ/FLOP.
        Self { flops_per_second: 1e10, energy_per_flop: 10e-12 }
    }
}

impl DigitalCostModel {
    fn cost_for_flops(&self, flops: f64) -> Cost {
        Cost { latency: flops / self.flops_per_second, energy: flops * self.energy_per_flop }
    }

    /// Cost of a digital `n × n` MVM (2n² FLOPs).
    pub fn mvm(&self, n: usize) -> Cost {
        let nf = n as f64;
        self.cost_for_flops(2.0 * nf * nf)
    }

    /// Cost of a digital LU solve (2n³/3 + 2n² FLOPs).
    pub fn lu_solve(&self, n: usize) -> Cost {
        let nf = n as f64;
        self.cost_for_flops(2.0 * nf * nf * nf / 3.0 + 2.0 * nf * nf)
    }

    /// Cost of a digital SVD-based pseudoinverse (≈ 12·m·n² FLOPs).
    pub fn pinv(&self, m: usize, n: usize) -> Cost {
        self.cost_for_flops(12.0 * m as f64 * (n * n) as f64)
    }

    /// Cost of `iters` power-iteration steps (2n² FLOPs each).
    pub fn power_iteration(&self, n: usize, iters: usize) -> Cost {
        let nf = n as f64;
        self.cost_for_flops(2.0 * nf * nf * iters as f64)
    }
}

/// Speedup of the analog solve over the digital LU at size `n` under the
/// default models.
pub fn inv_speedup(n: usize) -> f64 {
    let analog = AnalogCostModel::default().solve(n);
    let digital = DigitalCostModel::default().lu_solve(n);
    digital.latency / analog.latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_solve_latency_is_size_independent() {
        let m = AnalogCostModel::default();
        assert_eq!(m.solve(8).latency, m.solve(128).latency);
    }

    #[test]
    fn digital_lu_latency_is_cubic() {
        let m = DigitalCostModel::default();
        let r = m.lu_solve(128).latency / m.lu_solve(64).latency;
        assert!(r > 6.0 && r < 8.5, "ratio {r}");
    }

    #[test]
    fn speedup_grows_with_n_and_crosses_over() {
        let s16 = inv_speedup(16);
        let s128 = inv_speedup(128);
        assert!(s128 > s16, "speedup must grow with n");
        assert!(s128 > 100.0, "128-dim analog solve should win big: {s128}");
    }

    #[test]
    fn energy_scales_quadratically_for_analog_solve() {
        let m = AnalogCostModel::default();
        let ratio = m.solve(128).energy / m.solve(64).energy;
        assert!(ratio > 2.0 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn programming_cost_counts_both_planes() {
        let m = AnalogCostModel::default();
        let c = m.program(128, 20.0);
        let cells = 2.0 * 128.0 * 128.0;
        assert!((c.energy - cells * 20.0 * m.write_pulse_energy).abs() < 1e-18);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn attribution_matches_hand_computation() {
        let m = AnalogCostModel::default();
        let hw = gramc_telemetry::HwSnapshot {
            dac_drives: 10,
            adc_conversions: 20,
            settle_events: 3,
            solve_settles: 2,
            write_pulses: 5,
            read_cycles_mvm: 100,
            read_cycles_solve: 200,
            ..Default::default()
        };
        let c = m.attribute(&hw);
        let want_latency = 3.0 * m.mvm_settle + 2.0 * m.solve_settle + 5.0 * 30e-9;
        let want_energy = 10.0 * m.dac_energy
            + 20.0 * m.adc_fom * 1024.0
            + 5.0 * m.write_pulse_energy
            + 100.0 * m.cell_read_power * m.mvm_settle
            + 200.0 * m.cell_read_power * m.solve_settle;
        assert!((c.latency - want_latency).abs() < 1e-18, "latency {}", c.latency);
        assert!((c.energy - want_energy).abs() < 1e-18, "energy {}", c.energy);
    }

    #[test]
    fn area_model_scales_with_cells_and_converters() {
        let m = AnalogAreaModel::default();
        let one = m.macro_area(128, 128);
        // ADC channels dominate a 128×128 macro at these coefficients.
        assert!(one.adc_mm2 > one.crossbar_mm2, "{one:?}");
        assert!(one.total_mm2() > 0.0);
        let sixteen = m.deployment_area(16, 128, 128);
        assert!((sixteen.total_mm2() - 16.0 * one.total_mm2()).abs() < 1e-12);
        // Passive crosspoint is 3× denser than 1T1R on the cell matrix.
        let dense = AnalogAreaModel { cell_layout: CellLayout::Crosspoint, ..m.clone() };
        let r = m.crossbar_mm2(128, 128) / dense.crossbar_mm2(128, 128);
        assert!((r - 3.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn costs_compose() {
        let a = Cost { latency: 1.0, energy: 2.0 };
        let b = Cost { latency: 0.5, energy: 0.25 };
        let c = a.then(b);
        assert_eq!(c.latency, 1.5);
        assert_eq!(c.energy, 2.25);
    }
}
