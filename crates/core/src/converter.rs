//! DA/AD interfaces of the AMC macro (paper Fig. 2: "The DA/AD interfaces
//! bridge the analog and digital domains, so that we can develop a hybrid
//! design").

/// A uniform mid-tread digital-to-analog converter over `±v_ref`.
///
/// # Examples
///
/// ```
/// use gramc_core::Dac;
///
/// let dac = Dac::new(8, 0.2);
/// // Full-scale code maps to v_ref.
/// assert!((dac.convert(1.0) - 0.2).abs() < 1e-12);
/// // Quantization error is bounded by half an LSB.
/// let v = dac.convert(0.3337);
/// assert!((v - 0.3337 * 0.2).abs() <= dac.lsb_volts() / 2.0 + 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac {
    bits: u32,
    v_ref: f64,
}

impl Dac {
    /// Creates an `bits`-bit DAC with full scale `±v_ref` volts.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` or `v_ref <= 0`.
    pub fn new(bits: u32, v_ref: f64) -> Self {
        assert!((1..=16).contains(&bits), "DAC bits must be in 1..=16");
        assert!(v_ref > 0.0, "v_ref must be positive");
        Self { bits, v_ref }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale voltage.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Size of one least-significant bit in volts.
    pub fn lsb_volts(&self) -> f64 {
        self.v_ref / self.max_code() as f64
    }

    fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Converts a normalized digital value in `[-1, 1]` to an output voltage
    /// (values outside the range clip to full scale).
    pub fn convert(&self, normalized: f64) -> f64 {
        let m = self.max_code() as f64;
        let code = (normalized * m).round().clamp(-m, m);
        code / m * self.v_ref
    }

    /// Converts a whole vector.
    pub fn convert_vec(&self, normalized: &[f64]) -> Vec<f64> {
        normalized.iter().map(|&x| self.convert(x)).collect()
    }
}

/// A uniform mid-tread analog-to-digital converter over `±v_ref`.
///
/// # Examples
///
/// ```
/// use gramc_core::Adc;
///
/// let adc = Adc::new(10, 1.2);
/// let x = adc.convert(0.6);
/// assert!((x - 0.5).abs() < 1e-3);
/// assert_eq!(adc.convert(5.0), 1.0); // clips at full scale
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u32,
    v_ref: f64,
}

impl Adc {
    /// Creates an `bits`-bit ADC with input range `±v_ref` volts.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=24` or `v_ref <= 0`.
    pub fn new(bits: u32, v_ref: f64) -> Self {
        assert!((1..=24).contains(&bits), "ADC bits must be in 1..=24");
        assert!(v_ref > 0.0, "v_ref must be positive");
        Self { bits, v_ref }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Input range.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Size of one least-significant bit in normalized units.
    pub fn lsb(&self) -> f64 {
        1.0 / self.max_code() as f64
    }

    fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Converts a voltage to a normalized digital value in `[-1, 1]`
    /// (clipping outside `±v_ref`).
    pub fn convert(&self, volts: f64) -> f64 {
        let m = self.max_code() as f64;
        let code = (volts / self.v_ref * m).round().clamp(-m, m);
        code / m
    }

    /// Converts a whole vector.
    pub fn convert_vec(&self, volts: &[f64]) -> Vec<f64> {
        volts.iter().map(|&v| self.convert(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac_quantization_bounded_by_half_lsb() {
        let dac = Dac::new(8, 0.2);
        for k in 0..100 {
            let x = -1.0 + 2.0 * k as f64 / 99.0;
            let v = dac.convert(x);
            assert!((v - x * 0.2).abs() <= dac.lsb_volts() / 2.0 + 1e-15, "x={x}");
        }
    }

    #[test]
    fn dac_clips_out_of_range() {
        let dac = Dac::new(6, 1.0);
        assert_eq!(dac.convert(3.0), 1.0);
        assert_eq!(dac.convert(-3.0), -1.0);
    }

    #[test]
    fn dac_is_monotone() {
        let dac = Dac::new(4, 1.0);
        let mut last = f64::NEG_INFINITY;
        for k in 0..200 {
            let v = dac.convert(-1.0 + k as f64 / 100.0);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn adc_roundtrips_dac_codes() {
        // Same resolution, same range: DAC codes must be ADC fixed points.
        let dac = Dac::new(8, 1.0);
        let adc = Adc::new(8, 1.0);
        for k in [-127i32, -64, -1, 0, 1, 77, 127] {
            let x = k as f64 / 127.0;
            let v = dac.convert(x);
            assert!((adc.convert(v) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn adc_error_shrinks_with_bits() {
        let coarse = Adc::new(4, 1.0);
        let fine = Adc::new(12, 1.0);
        let v = 0.123_456;
        assert!((fine.convert(v) - v).abs() < (coarse.convert(v) - v).abs());
    }

    #[test]
    fn zero_maps_to_zero() {
        // Mid-tread: zero is always an exact code.
        assert_eq!(Dac::new(5, 0.7).convert(0.0), 0.0);
        assert_eq!(Adc::new(5, 0.7).convert(0.0), 0.0);
    }

    #[test]
    fn vector_conversion_matches_scalar() {
        let adc = Adc::new(6, 1.0);
        let vs = [0.1, -0.5, 0.9];
        let out = adc.convert_vec(&vs);
        for (o, v) in out.iter().zip(&vs) {
            assert_eq!(*o, adc.convert(*v));
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn dac_rejects_zero_bits() {
        let _ = Dac::new(0, 1.0);
    }
}
