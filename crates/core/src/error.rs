//! Error type for the GRAMC system layer.

use std::error::Error;
use std::fmt;

use gramc_array::ArrayError;
use gramc_circuit::CircuitError;
use gramc_linalg::LinalgError;

/// Errors produced by the AMC macro and the GRAMC system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Error from the crossbar / write-verify layer.
    Array(ArrayError),
    /// Error from the analog circuit simulator.
    Circuit(CircuitError),
    /// Error from the numerical baseline.
    Linalg(LinalgError),
    /// A macro id is out of range.
    NoSuchMacro {
        /// Requested macro index.
        id: usize,
        /// Number of macros in the system.
        count: usize,
    },
    /// The requested operation does not match the macro's configured mode.
    WrongMode {
        /// Mode the macro is configured for.
        configured: &'static str,
        /// Mode the operation requires.
        required: &'static str,
    },
    /// An operator handle is stale or refers to a different group.
    InvalidOperator,
    /// A matrix or vector argument has the wrong shape.
    ShapeMismatch {
        /// Required size.
        expected: usize,
        /// Supplied size.
        found: usize,
    },
    /// Not enough free macro capacity to place the operator.
    OutOfCapacity {
        /// Macros requested by this placement.
        requested: usize,
        /// Macros still free.
        available: usize,
    },
    /// A buffer reference escapes the global/output buffer.
    BufferOutOfBounds {
        /// Offending address.
        addr: usize,
        /// Reference length.
        len: usize,
        /// Buffer capacity.
        capacity: usize,
    },
    /// The controller hit an illegal instruction or control-flow target.
    IllegalInstruction {
        /// Program counter at the fault.
        pc: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The EGV iteration failed to converge.
    EgvNoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Array(e) => write!(f, "array error: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::NoSuchMacro { id, count } => {
                write!(f, "macro {id} does not exist (system has {count})")
            }
            CoreError::WrongMode { configured, required } => {
                write!(f, "macro configured for {configured} but operation requires {required}")
            }
            CoreError::InvalidOperator => write!(f, "stale or foreign operator handle"),
            CoreError::ShapeMismatch { expected, found } => {
                write!(f, "expected a vector of length {expected}, found {found}")
            }
            CoreError::OutOfCapacity { requested, available } => {
                write!(f, "placement needs {requested} macros, only {available} free")
            }
            CoreError::BufferOutOfBounds { addr, len, capacity } => {
                write!(f, "buffer reference {addr}+{len} exceeds capacity {capacity}")
            }
            CoreError::IllegalInstruction { pc, reason } => {
                write!(f, "illegal instruction at pc={pc}: {reason}")
            }
            CoreError::EgvNoConvergence { iterations } => {
                write!(f, "EGV iteration did not converge after {iterations} iterations")
            }
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Array(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArrayError> for CoreError {
    fn from(e: ArrayError) -> Self {
        CoreError::Array(e)
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::NoSuchMacro { id: 20, count: 16 };
        assert!(e.to_string().contains("20"));
        let e: CoreError = ArrayError::InvalidArgument("x").into();
        assert!(e.source().is_some());
        let e = CoreError::WrongMode { configured: "MVM", required: "INV" };
        assert!(e.to_string().contains("MVM") && e.to_string().contains("INV"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
