//! Multi-macro tiling for matrices larger than one 128×128 array.
//!
//! The paper's system has 16 macros (Fig. 3) precisely so larger operators
//! can be spread across them; LeNet-5's first fully-connected layer
//! (120×256) and the im2col matrices of its convolutions need this. A
//! [`TiledOperator`] splits a matrix into array-sized tiles, loads each tile
//! as its own operator and accumulates partial MVM results digitally.

use gramc_linalg::Matrix;

use crate::amc_macro::{MacroGroup, OperatorId};
use crate::error::CoreError;

/// Whether tiles use 4-bit differential or 8-bit bit-sliced mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileMapping {
    /// Differential 4-bit planes (the paper's default).
    #[default]
    FourBit,
    /// Bit-sliced INT8 (two nibble planes per sign).
    BitSlicedInt8,
}

/// Tile origins covering a `rows × cols` matrix with tiles of at most
/// `tile_rows × tile_cols`: the row/column start offsets of the grid.
///
/// Shared by [`TiledOperator`] and the cross-shard tiled operator in
/// `gramc-runtime`, so both split a matrix identically.
pub fn tile_grid(
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
) -> (Vec<usize>, Vec<usize>) {
    let row_starts = (0..rows).step_by(tile_rows.max(1)).collect();
    let col_starts = (0..cols).step_by(tile_cols.max(1)).collect();
    (row_starts, col_starts)
}

/// A matrix operator tiled across several macros.
#[derive(Debug)]
pub struct TiledOperator {
    rows: usize,
    cols: usize,
    /// `tiles[r][c]` covers rows `row_starts[r]..` and cols `col_starts[c]..`.
    tiles: Vec<Vec<OperatorId>>,
    row_starts: Vec<usize>,
    col_starts: Vec<usize>,
    freed: bool,
}

impl TiledOperator {
    /// Splits `a` into tiles no larger than the group's array and loads each
    /// tile.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfCapacity`] if the group cannot hold all tiles, plus
    /// mapping errors for degenerate input.
    pub fn load(
        group: &mut MacroGroup,
        a: &Matrix,
        mapping: TileMapping,
    ) -> Result<Self, CoreError> {
        let (rows, cols) = a.shape();
        if rows == 0 || cols == 0 {
            return Err(CoreError::InvalidArgument("cannot tile an empty matrix"));
        }
        let tile_rows = group.config().array_rows;
        let tile_cols = group.config().array_cols;
        let (row_starts, col_starts) = tile_grid(rows, cols, tile_rows, tile_cols);

        let mut tiles = Vec::with_capacity(row_starts.len());
        let mut loaded: Vec<OperatorId> = Vec::new();
        for &r0 in &row_starts {
            let mut row_tiles = Vec::with_capacity(col_starts.len());
            for &c0 in &col_starts {
                let tr = tile_rows.min(rows - r0);
                let tc = tile_cols.min(cols - c0);
                let block = a.block(r0, c0, tr, tc);
                let result = match mapping {
                    TileMapping::FourBit => group.load_matrix(&block),
                    TileMapping::BitSlicedInt8 => group.load_matrix_bitsliced(&block),
                };
                match result {
                    Ok(id) => {
                        loaded.push(id);
                        row_tiles.push(id);
                    }
                    Err(e) => {
                        // Roll back everything loaded so far.
                        for id in loaded {
                            let _ = group.free_operator(id);
                        }
                        return Err(e);
                    }
                }
            }
            tiles.push(row_tiles);
        }
        Ok(Self { rows, cols, tiles, row_starts, col_starts, freed: false })
    }

    /// Logical shape of the tiled matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.iter().map(Vec::len).sum()
    }

    /// Tiled analog MVM: every tile computes its partial product on its own
    /// macro and the partials are accumulated digitally.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] for wrong input length; stale-handle
    /// errors after [`free`](Self::free).
    pub fn mvm(&self, group: &mut MacroGroup, x: &[f64]) -> Result<Vec<f64>, CoreError> {
        if self.freed {
            return Err(CoreError::InvalidOperator);
        }
        if x.len() != self.cols {
            return Err(CoreError::ShapeMismatch { expected: self.cols, found: x.len() });
        }
        let mut y = vec![0.0; self.rows];
        for (ri, &r0) in self.row_starts.iter().enumerate() {
            for (ci, &c0) in self.col_starts.iter().enumerate() {
                let id = self.tiles[ri][ci];
                let info = group.operator_info(id)?;
                let (tr, tc) = (info.rows, info.cols);
                let partial = group.mvm(id, &x[c0..c0 + tc])?;
                for (k, p) in partial.iter().enumerate().take(tr) {
                    y[r0 + k] += p;
                }
            }
        }
        Ok(y)
    }

    /// Tiled batched MVM: each tile reads its conductances once for the
    /// whole batch (see [`MacroGroup::mvm_batch`]) and partials accumulate
    /// digitally per column.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mvm`](Self::mvm).
    pub fn mvm_batch(
        &self,
        group: &mut MacroGroup,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        for x in xs {
            if x.len() != self.cols {
                return Err(CoreError::ShapeMismatch { expected: self.cols, found: x.len() });
            }
        }
        let mut v = Matrix::zeros(xs.len(), self.cols);
        for (b, x) in xs.iter().enumerate() {
            v.row_mut(b).copy_from_slice(x);
        }
        let out = self.mvm_batch_rows(group, &v)?;
        Ok((0..out.rows()).map(|b| out.row(b).to_vec()).collect())
    }

    /// [`mvm_batch`](Self::mvm_batch) on matrix batches (row `b` in, row `b`
    /// out — the layout [`MacroGroup::mvm_batch_rows`] consumes directly).
    /// Per tile, one column-slice matrix feeds one analog batch drive; the
    /// streaming `gramc-nn` pipeline calls this with whole-dataset drive
    /// matrices so nothing is allocated per image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mvm`](Self::mvm).
    pub fn mvm_batch_rows(&self, group: &mut MacroGroup, xs: &Matrix) -> Result<Matrix, CoreError> {
        if self.freed {
            return Err(CoreError::InvalidOperator);
        }
        if xs.cols() != self.cols {
            return Err(CoreError::ShapeMismatch { expected: self.cols, found: xs.cols() });
        }
        let bsz = xs.rows();
        let mut ys = Matrix::zeros(bsz, self.rows);
        for (ri, &r0) in self.row_starts.iter().enumerate() {
            for (ci, &c0) in self.col_starts.iter().enumerate() {
                let id = self.tiles[ri][ci];
                let info = group.operator_info(id)?;
                let (tr, tc) = (info.rows, info.cols);
                let slice = xs.block(0, c0, bsz, tc);
                let partials = group.mvm_batch_rows(id, &slice)?;
                for b in 0..bsz {
                    let y = &mut ys.row_mut(b)[r0..r0 + tr];
                    for (yk, &p) in y.iter_mut().zip(&partials.row(b)[..tr]) {
                        *yk += p;
                    }
                }
            }
        }
        Ok(ys)
    }

    /// Releases all tiles.
    ///
    /// # Errors
    ///
    /// Stale-handle errors if already freed.
    pub fn free(&mut self, group: &mut MacroGroup) -> Result<(), CoreError> {
        if self.freed {
            return Err(CoreError::InvalidOperator);
        }
        self.freed = true;
        for row in &self.tiles {
            for &id in row {
                group.free_operator(id)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amc_macro::MacroConfig;
    use gramc_linalg::{random, vector};

    #[test]
    fn single_tile_matches_plain_operator() {
        let mut group = MacroGroup::new(2, MacroConfig::small_ideal(8), 20);
        let mut rng = random::seeded_rng(80);
        let a = random::gaussian_matrix(&mut rng, 6, 6);
        let tiled = TiledOperator::load(&mut group, &a, TileMapping::FourBit).unwrap();
        assert_eq!(tiled.tile_count(), 1);
        let x = random::normal_vector(&mut rng, 6);
        let y = tiled.mvm(&mut group, &x).unwrap();
        let y_ref = a.matvec(&x);
        assert!(vector::rel_error(&y, &y_ref) < 0.05);
    }

    #[test]
    fn multi_tile_mvm_accumulates_correctly() {
        // 10×10 matrix on 4×4 arrays → 3×3 tiles; full-width tiles need
        // two macros each (2·4 cols > 4), edge tiles pack into one:
        // 3 rows × (2+2+1) = 15 macros.
        let mut group = MacroGroup::new(16, MacroConfig::small_ideal(4), 21);
        let mut rng = random::seeded_rng(81);
        let a = random::gaussian_matrix(&mut rng, 10, 10);
        let tiled = TiledOperator::load(&mut group, &a, TileMapping::FourBit).unwrap();
        assert_eq!(tiled.tile_count(), 9);
        assert_eq!(tiled.shape(), (10, 10));
        let x = random::normal_vector(&mut rng, 10);
        let y = tiled.mvm(&mut group, &x).unwrap();
        let y_ref = a.matvec(&x);
        // Tile-local quantization scales differ from global quantization,
        // so compare against the true product with a modest tolerance.
        assert!(vector::rel_error(&y, &y_ref) < 0.08, "{y:?} vs {y_ref:?}");
    }

    #[test]
    fn capacity_rollback_frees_partial_loads() {
        let mut group = MacroGroup::new(2, MacroConfig::small_ideal(4), 22);
        let mut rng = random::seeded_rng(82);
        let a = random::gaussian_matrix(&mut rng, 12, 12); // needs 9 tiles
        let before = group.free_macros();
        assert!(TiledOperator::load(&mut group, &a, TileMapping::FourBit).is_err());
        assert_eq!(group.free_macros(), before, "rollback must free claimed macros");
    }

    #[test]
    fn free_releases_and_invalidates() {
        let mut group = MacroGroup::new(8, MacroConfig::small_ideal(4), 23);
        let mut rng = random::seeded_rng(83);
        let a = random::gaussian_matrix(&mut rng, 8, 8);
        let mut tiled = TiledOperator::load(&mut group, &a, TileMapping::FourBit).unwrap();
        let before = group.free_macros();
        tiled.free(&mut group).unwrap();
        assert!(group.free_macros() > before);
        assert!(tiled.mvm(&mut group, &[0.0; 8]).is_err());
        assert!(tiled.free(&mut group).is_err());
    }

    #[test]
    fn input_length_checked() {
        let mut group = MacroGroup::new(2, MacroConfig::small_ideal(4), 24);
        let a = Matrix::identity(4);
        let tiled = TiledOperator::load(&mut group, &a, TileMapping::FourBit).unwrap();
        assert!(matches!(tiled.mvm(&mut group, &[1.0; 3]), Err(CoreError::ShapeMismatch { .. })));
    }
}
