//! Non-ideality configuration: every analog error source in one place.
//!
//! The paper attributes its ~10 % relative errors to "the quantization error
//! and the intrinsic analog noises in the circuit"; this module enumerates
//! those sources so experiments can enable, disable and sweep them
//! individually (the ablation bench does exactly that).

/// How conductance targets are written into the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgrammingMode {
    /// Full pulse-level write-verify (paper Fig. 1 / Fig. 3 blue path).
    /// Slow but faithful; residual error is whatever the verify band leaves.
    Pulse,
    /// Direct gap seating with Gaussian programming error of the given
    /// sigma in level units — statistically equivalent to the write-verify
    /// residual, used by throughput-heavy pipelines (LeNet-5).
    Direct {
        /// Programming error, 1σ, in level units.
        sigma_levels: f64,
    },
}

/// Aggregate non-ideality knobs for a macro group.
#[derive(Debug, Clone, PartialEq)]
pub struct NonidealityConfig {
    /// Conductance quantization bits per cell (paper: 4).
    pub weight_bits: u32,
    /// Programming path.
    pub programming: ProgrammingMode,
    /// Relative read noise per conductance read, 1σ.
    pub read_noise_rel: f64,
    /// Cycle-to-cycle gap noise per programming pulse, 1σ, nm.
    pub c2c_gap_sigma: f64,
    /// Device-to-device sigma on the current prefactor `I0` (relative).
    pub d2d_i0_sigma: f64,
    /// Device-to-device sigma on the gap length `g0` (relative).
    pub d2d_g0_sigma: f64,
    /// Op-amp open-loop gain; `None` = ideal infinite gain.
    pub opamp_gain: Option<f64>,
    /// Op-amp input offset voltage, 1σ, volts.
    pub opamp_offset_sigma: f64,
    /// Input DAC resolution in bits.
    pub dac_bits: u32,
    /// Output ADC resolution in bits.
    pub adc_bits: u32,
    /// Wire resistance per crossbar segment, ohms (0 = neglected, as in the
    /// paper's simulations).
    pub wire_resistance: f64,
}

impl NonidealityConfig {
    /// The paper's simulation conditions: 4-bit weights, write-verify
    /// residual of ±0.4 level, 1 % read noise, realistic converters and
    /// op-amps.
    pub fn paper_default() -> Self {
        Self {
            weight_bits: 4,
            programming: ProgrammingMode::Direct { sigma_levels: 0.2 },
            read_noise_rel: 0.01,
            c2c_gap_sigma: 0.002,
            d2d_i0_sigma: 0.02,
            d2d_g0_sigma: 0.005,
            opamp_gain: Some(1e4),
            opamp_offset_sigma: 1e-4,
            dac_bits: 8,
            adc_bits: 10,
            wire_resistance: 0.0,
        }
    }

    /// Everything ideal except the (unavoidable) weight quantization.
    pub fn quantization_only(weight_bits: u32) -> Self {
        Self {
            weight_bits,
            programming: ProgrammingMode::Direct { sigma_levels: 0.0 },
            read_noise_rel: 0.0,
            c2c_gap_sigma: 0.0,
            d2d_i0_sigma: 0.0,
            d2d_g0_sigma: 0.0,
            opamp_gain: None,
            opamp_offset_sigma: 0.0,
            dac_bits: 16,
            adc_bits: 24,
            wire_resistance: 0.0,
        }
    }

    /// Fully ideal: 8-bit weights, no noise — for numerical validation of
    /// the analog paths against the digital baseline.
    pub fn ideal() -> Self {
        Self::quantization_only(8)
    }

    /// Returns this configuration with pulse-level write-verify programming.
    pub fn with_pulse_programming(mut self) -> Self {
        self.programming = ProgrammingMode::Pulse;
        self
    }
}

impl Default for NonidealityConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_4_bit() {
        let c = NonidealityConfig::paper_default();
        assert_eq!(c.weight_bits, 4);
        assert!(c.read_noise_rel > 0.0);
        assert!(c.opamp_gain.is_some());
    }

    #[test]
    fn ideal_silences_all_noise() {
        let c = NonidealityConfig::ideal();
        assert_eq!(c.read_noise_rel, 0.0);
        assert_eq!(c.opamp_offset_sigma, 0.0);
        assert_eq!(c.d2d_i0_sigma, 0.0);
        assert!(
            matches!(c.programming, ProgrammingMode::Direct { sigma_levels } if sigma_levels == 0.0)
        );
    }

    #[test]
    fn pulse_programming_builder() {
        let c = NonidealityConfig::paper_default().with_pulse_programming();
        assert_eq!(c.programming, ProgrammingMode::Pulse);
    }
}
