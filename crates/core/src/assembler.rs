//! Text assembler / disassembler for the GRAMC ISA.
//!
//! A human-readable assembly form for the binary instruction words of
//! [`crate::isa`] — what a toolchain for the paper's "compiling stage"
//! would emit for inspection. Round-trips exactly:
//! `parse(format(prog)) == prog`.
//!
//! Syntax, one instruction per line (`;` starts a comment):
//!
//! ```text
//! load       s0, 128x128, g:0+16384      ; write-verify slot 0
//! mvm        s0, g:16384+128, o:0+128
//! solve_inv  s0, g:16384+128, o:0+128
//! pool       max, 24x24/2, o:0+576, o:576+144
//! activate   relu, o:0+10, o:16+10
//! branch_lt  g:1+1, g:2+1, @7
//! halt
//! ```
//!
//! Buffer references are `g:addr+len` (global) or `o:addr+len` (output);
//! branch targets are `@index`; operator slots are `sN`.

use std::fmt::Write as _;

use crate::functional::{Activation, Pooling};
use crate::isa::{BufferRef, Instruction, MemSpace};
use crate::registers::MacroMode;

/// Error produced when parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn fmt_ref(r: BufferRef) -> String {
    let s = match r.space {
        MemSpace::Global => 'g',
        MemSpace::Output => 'o',
    };
    format!("{s}:{}+{}", r.addr, r.len)
}

fn fmt_mode(m: MacroMode) -> &'static str {
    match m {
        MacroMode::Idle => "idle",
        MacroMode::Mvm => "mvm",
        MacroMode::Inv => "inv",
        MacroMode::Pinv => "pinv",
        MacroMode::Egv => "egv",
    }
}

fn fmt_pool(k: Pooling) -> &'static str {
    match k {
        Pooling::Max => "max",
        Pooling::Average => "avg",
    }
}

fn fmt_act(k: Activation) -> &'static str {
    match k {
        Activation::Relu => "relu",
        Activation::Sigmoid => "sigmoid",
        Activation::Tanh => "tanh",
        Activation::Identity => "id",
    }
}

/// Formats a program as assembly text.
pub fn format_program(program: &[Instruction]) -> String {
    let mut out = String::new();
    for inst in program {
        match *inst {
            Instruction::Nop => out.push_str("nop"),
            Instruction::Halt => out.push_str("halt"),
            Instruction::Configure { macro_id, mode } => {
                let _ = write!(out, "configure  m{macro_id}, {}", fmt_mode(mode));
            }
            Instruction::LoadMatrix { slot, rows, cols, src } => {
                let _ = write!(out, "load       s{slot}, {rows}x{cols}, {}", fmt_ref(src));
            }
            Instruction::LoadMatrixSliced { slot, rows, cols, src } => {
                let _ = write!(out, "load8      s{slot}, {rows}x{cols}, {}", fmt_ref(src));
            }
            Instruction::FreeMatrix { slot } => {
                let _ = write!(out, "free       s{slot}");
            }
            Instruction::Mvm { slot, src, dst } => {
                let _ = write!(out, "mvm        s{slot}, {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::MvmBatch { slot, batch, src, dst } => {
                let _ =
                    write!(out, "mvm_batch  s{slot}, x{batch}, {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::SolveInv { slot, src, dst } => {
                let _ = write!(out, "solve_inv  s{slot}, {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::SolvePinv { slot, src, dst } => {
                let _ = write!(out, "solve_pinv s{slot}, {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::SolveEgv { slot, dst } => {
                let _ = write!(out, "solve_egv  s{slot}, {}", fmt_ref(dst));
            }
            Instruction::Pool { kind, h, w, window, src, dst } => {
                let _ = write!(
                    out,
                    "pool       {}, {h}x{w}/{window}, {}, {}",
                    fmt_pool(kind),
                    fmt_ref(src),
                    fmt_ref(dst)
                );
            }
            Instruction::Activate { kind, src, dst } => {
                let _ =
                    write!(out, "activate   {}, {}, {}", fmt_act(kind), fmt_ref(src), fmt_ref(dst));
            }
            Instruction::Softmax { src, dst } => {
                let _ = write!(out, "softmax    {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::Copy { src, dst } => {
                let _ = write!(out, "copy       {}, {}", fmt_ref(src), fmt_ref(dst));
            }
            Instruction::Jump { target } => {
                let _ = write!(out, "jump       @{target}");
            }
            Instruction::BranchIfLess { a, b, target } => {
                let _ = write!(out, "branch_lt  {}, {}, @{target}", fmt_ref(a), fmt_ref(b));
            }
            Instruction::LoopDec { counter, target } => {
                let _ = write!(out, "loop_dec   g:{counter}, @{target}");
            }
        }
        out.push('\n');
    }
    out
}

struct LineParser<'a> {
    line_no: usize,
    parts: Vec<&'a str>,
    idx: usize,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line_no, message: message.into() }
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        let p = self.parts.get(self.idx).copied().ok_or_else(|| self.err("missing operand"))?;
        self.idx += 1;
        Ok(p)
    }

    fn buf_ref(&mut self) -> Result<BufferRef, ParseError> {
        let p = self.next()?;
        let (space, rest) = match p.split_once(':') {
            Some(("g", r)) => (MemSpace::Global, r),
            Some(("o", r)) => (MemSpace::Output, r),
            _ => return Err(self.err(format!("bad buffer ref '{p}' (want g:addr+len)"))),
        };
        let (addr, len) = rest
            .split_once('+')
            .ok_or_else(|| self.err(format!("bad buffer ref '{p}' (missing +len)")))?;
        let addr = addr.parse().map_err(|_| self.err(format!("bad address in '{p}'")))?;
        let len = len.parse().map_err(|_| self.err(format!("bad length in '{p}'")))?;
        Ok(BufferRef { addr, len, space })
    }

    fn slot(&mut self) -> Result<u8, ParseError> {
        let p = self.next()?;
        p.strip_prefix('s')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err(format!("bad slot '{p}' (want sN)")))
    }

    fn target(&mut self) -> Result<u16, ParseError> {
        let p = self.next()?;
        p.strip_prefix('@')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err(format!("bad target '{p}' (want @index)")))
    }

    fn dims(&mut self) -> Result<(u16, u16), ParseError> {
        let p = self.next()?;
        let (r, c) =
            p.split_once('x').ok_or_else(|| self.err(format!("bad shape '{p}' (want RxC)")))?;
        Ok((
            r.parse().map_err(|_| self.err(format!("bad rows in '{p}'")))?,
            c.parse().map_err(|_| self.err(format!("bad cols in '{p}'")))?,
        ))
    }
}

/// Parses assembly text into a program.
///
/// # Errors
///
/// [`ParseError`] with the offending line number.
pub fn parse_program(text: &str) -> Result<Vec<Instruction>, ParseError> {
    let mut program = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> =
            line.split(|c: char| c == ',' || c.is_whitespace()).filter(|s| !s.is_empty()).collect();
        let mut p = LineParser { line_no: i + 1, parts, idx: 0 };
        let op = p.next()?;
        let inst = match op {
            "nop" => Instruction::Nop,
            "halt" => Instruction::Halt,
            "configure" => {
                let m = p.next()?;
                let macro_id = m
                    .strip_prefix('m')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| p.err(format!("bad macro '{m}' (want mN)")))?;
                let mode = match p.next()? {
                    "idle" => MacroMode::Idle,
                    "mvm" => MacroMode::Mvm,
                    "inv" => MacroMode::Inv,
                    "pinv" => MacroMode::Pinv,
                    "egv" => MacroMode::Egv,
                    other => return Err(p.err(format!("unknown mode '{other}'"))),
                };
                Instruction::Configure { macro_id, mode }
            }
            "load" | "load8" => {
                let slot = p.slot()?;
                let (rows, cols) = p.dims()?;
                let src = p.buf_ref()?;
                if op == "load" {
                    Instruction::LoadMatrix { slot, rows, cols, src }
                } else {
                    Instruction::LoadMatrixSliced { slot, rows, cols, src }
                }
            }
            "free" => Instruction::FreeMatrix { slot: p.slot()? },
            "mvm" => Instruction::Mvm { slot: p.slot()?, src: p.buf_ref()?, dst: p.buf_ref()? },
            "mvm_batch" => {
                let slot = p.slot()?;
                let b = p.next()?;
                let batch = b
                    .strip_prefix('x')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| p.err(format!("bad batch '{b}' (want xN)")))?;
                Instruction::MvmBatch { slot, batch, src: p.buf_ref()?, dst: p.buf_ref()? }
            }
            "solve_inv" => {
                Instruction::SolveInv { slot: p.slot()?, src: p.buf_ref()?, dst: p.buf_ref()? }
            }
            "solve_pinv" => {
                Instruction::SolvePinv { slot: p.slot()?, src: p.buf_ref()?, dst: p.buf_ref()? }
            }
            "solve_egv" => Instruction::SolveEgv { slot: p.slot()?, dst: p.buf_ref()? },
            "pool" => {
                let kind = match p.next()? {
                    "max" => Pooling::Max,
                    "avg" => Pooling::Average,
                    other => return Err(p.err(format!("unknown pooling '{other}'"))),
                };
                let shape = p.next()?;
                let (dims, win) = shape
                    .split_once('/')
                    .ok_or_else(|| p.err(format!("bad pool shape '{shape}' (want HxW/win)")))?;
                let (h, w) =
                    dims.split_once('x').ok_or_else(|| p.err(format!("bad pool dims '{dims}'")))?;
                let h: u16 = h.parse().map_err(|_| p.err("bad pool height"))?;
                let w: u16 = w.parse().map_err(|_| p.err("bad pool width"))?;
                let window: u8 = win.parse().map_err(|_| p.err("bad pool window"))?;
                Instruction::Pool { kind, h, w, window, src: p.buf_ref()?, dst: p.buf_ref()? }
            }
            "activate" => {
                let kind = match p.next()? {
                    "relu" => Activation::Relu,
                    "sigmoid" => Activation::Sigmoid,
                    "tanh" => Activation::Tanh,
                    "id" => Activation::Identity,
                    other => return Err(p.err(format!("unknown activation '{other}'"))),
                };
                Instruction::Activate { kind, src: p.buf_ref()?, dst: p.buf_ref()? }
            }
            "softmax" => Instruction::Softmax { src: p.buf_ref()?, dst: p.buf_ref()? },
            "copy" => Instruction::Copy { src: p.buf_ref()?, dst: p.buf_ref()? },
            "jump" => Instruction::Jump { target: p.target()? },
            "branch_lt" => {
                Instruction::BranchIfLess { a: p.buf_ref()?, b: p.buf_ref()?, target: p.target()? }
            }
            "loop_dec" => {
                let c = p.next()?;
                let counter = c
                    .strip_prefix("g:")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| p.err(format!("bad counter '{c}' (want g:addr)")))?;
                Instruction::LoopDec { counter, target: p.target()? }
            }
            other => return Err(p.err(format!("unknown mnemonic '{other}'"))),
        };
        program.push(inst);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Vec<Instruction> {
        vec![
            Instruction::Configure { macro_id: 3, mode: MacroMode::Inv },
            Instruction::LoadMatrix {
                slot: 0,
                rows: 128,
                cols: 128,
                src: BufferRef::global(0, 16384),
            },
            Instruction::LoadMatrixSliced {
                slot: 1,
                rows: 16,
                cols: 150,
                src: BufferRef::global(20000, 2400),
            },
            Instruction::Mvm {
                slot: 0,
                src: BufferRef::global(16384, 128),
                dst: BufferRef::output(0, 128),
            },
            Instruction::MvmBatch {
                slot: 0,
                batch: 4,
                src: BufferRef::global(16384, 512),
                dst: BufferRef::output(0, 512),
            },
            Instruction::SolveInv {
                slot: 0,
                src: BufferRef::global(16384, 128),
                dst: BufferRef::output(0, 128),
            },
            Instruction::SolvePinv {
                slot: 0,
                src: BufferRef::global(16384, 128),
                dst: BufferRef::output(0, 6),
            },
            Instruction::SolveEgv { slot: 0, dst: BufferRef::output(0, 128) },
            Instruction::Pool {
                kind: Pooling::Max,
                h: 24,
                w: 24,
                window: 2,
                src: BufferRef::output(0, 576),
                dst: BufferRef::output(576, 144),
            },
            Instruction::Activate {
                kind: Activation::Relu,
                src: BufferRef::output(0, 10),
                dst: BufferRef::output(16, 10),
            },
            Instruction::Softmax { src: BufferRef::output(0, 10), dst: BufferRef::output(16, 10) },
            Instruction::Copy { src: BufferRef::output(0, 4), dst: BufferRef::global(40, 4) },
            Instruction::BranchIfLess {
                a: BufferRef::global(1, 1),
                b: BufferRef::global(2, 1),
                target: 2,
            },
            Instruction::LoopDec { counter: 7, target: 1 },
            Instruction::FreeMatrix { slot: 0 },
            Instruction::Jump { target: 0 },
            Instruction::Nop,
            Instruction::Halt,
        ]
    }

    #[test]
    fn round_trips_every_instruction() {
        let prog = sample_program();
        let text = format_program(&prog);
        let back = parse_program(&text).unwrap();
        assert_eq!(back, prog, "assembly:\n{text}");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "
; a comment-only line
nop            ; trailing comment

halt
";
        let prog = parse_program(text).unwrap();
        assert_eq!(prog, vec![Instruction::Nop, Instruction::Halt]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("nop\nbogus_op s1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus_op"));
        let err = parse_program("mvm s0, q:1+2, o:0+2").unwrap_err();
        assert!(err.message.contains("buffer ref"));
        let err = parse_program("jump seven").unwrap_err();
        assert!(err.message.contains("target"));
    }

    #[test]
    fn assembly_agrees_with_binary_encoding() {
        // Text → Instruction → binary words → Instruction is the identity.
        let prog = sample_program();
        for inst in &prog {
            let enc = inst.encode();
            assert_eq!(Instruction::decode(enc), Some(*inst));
        }
    }
}
