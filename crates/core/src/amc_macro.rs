//! The AMC macro and macro group (paper Fig. 2) with the four analog
//! computing paths.
//!
//! An [`AmcMacro`] owns one 1T1R crossbar, its register array, the DA/AD
//! interfaces and an output buffer. A [`MacroGroup`] owns several macros (16
//! in the paper's system) plus the shared RNG, places matrix operators onto
//! them ("all matrices were mapped to one or two RRAM arrays with 4-bit
//! quantization") and executes the four primitives:
//!
//! * [`MacroGroup::mvm`] — crossbar fast path (exact TIA mathematics with
//!   aggregated read noise; validated against full MNA by
//!   [`MacroGroup::mvm_mna`]),
//! * [`MacroGroup::solve_inv`] — full MNA solve of the INV feedback circuit,
//! * [`MacroGroup::solve_pinv`] — full MNA solve of the two-array cascade,
//! * [`MacroGroup::solve_egv`] — the clipped-eigenvector fixed point of the
//!   EGV loop (the settled state of the saturating transient; see
//!   `gramc-circuit::transient` docs), iterated behaviourally.

use std::sync::Arc;

use gramc_array::{
    ActiveRegion, ArrayConfig, ConductanceMapper, CrossbarArray, LevelMatrix, MappedMatrix,
    ProgramOutcome, SignedEncoding, WriteVerifyController,
};
use gramc_circuit::{dc_solve, topology, DcOperator, OpampModel};
use gramc_device::{CellNoise, LevelQuantizer};
#[cfg(feature = "fault-inject")]
use gramc_device::{FaultConfig, FaultPlan};
use gramc_linalg::{power_iteration, random, vector, Matrix};
#[cfg(feature = "telemetry")]
use gramc_telemetry::{HwCounters, HwSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::converter::{Adc, Dac};
use crate::error::CoreError;
use crate::nonideal::{NonidealityConfig, ProgrammingMode};
use crate::registers::{MacroMode, RegisterArray};

/// Geometry and interface parameters of a macro.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroConfig {
    /// Crossbar rows (paper: 128).
    pub array_rows: usize,
    /// Crossbar columns (paper: 128).
    pub array_cols: usize,
    /// Read/drive voltage full scale in volts.
    pub v_read: f64,
    /// Op-amp output / ADC full scale in volts.
    pub v_out_ref: f64,
    /// Non-ideality knobs.
    pub nonideal: NonidealityConfig,
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self {
            array_rows: 128,
            array_cols: 128,
            v_read: 0.2,
            v_out_ref: 1.2,
            nonideal: NonidealityConfig::paper_default(),
        }
    }
}

impl MacroConfig {
    /// A small macro for fast tests.
    pub fn small(n: usize) -> Self {
        Self { array_rows: n, array_cols: n, ..Self::default() }
    }

    /// A small, fully ideal macro (deterministic tests).
    pub fn small_ideal(n: usize) -> Self {
        Self {
            array_rows: n,
            array_cols: n,
            nonideal: NonidealityConfig::ideal(),
            ..Self::default()
        }
    }
}

/// One AMC macro: crossbar + registers + converters + output buffer.
#[derive(Debug, Clone)]
pub struct AmcMacro {
    id: usize,
    array: CrossbarArray,
    registers: RegisterArray,
    dac: Dac,
    adc: Adc,
    /// Static input-referred offsets of the macro's op-amp bank (sampled
    /// once at fabrication — offsets are a device property, not noise).
    offset_bank: Vec<f64>,
    output_buffer: Vec<f64>,
    owner: Option<usize>,
}

impl AmcMacro {
    fn new(id: usize, config: &MacroConfig, rng: &mut StdRng) -> Self {
        let ni = &config.nonideal;
        let array_cfg = ArrayConfig {
            rows: config.array_rows,
            cols: config.array_cols,
            noise: CellNoise { c2c_gap_sigma: ni.c2c_gap_sigma, read_rel_sigma: ni.read_noise_rel },
            d2d_i0_sigma: ni.d2d_i0_sigma,
            d2d_g0_sigma: ni.d2d_g0_sigma,
            wire_resistance: ni.wire_resistance,
            ..ArrayConfig::default()
        };
        let offset_bank = (0..4 * config.array_rows.max(config.array_cols))
            .map(|_| {
                if ni.opamp_offset_sigma == 0.0 {
                    0.0
                } else {
                    ni.opamp_offset_sigma * random::standard_normal(rng)
                }
            })
            .collect();
        Self {
            id,
            array: CrossbarArray::new(array_cfg, rng),
            registers: RegisterArray::new(config.array_rows),
            dac: Dac::new(ni.dac_bits, config.v_read),
            adc: Adc::new(ni.adc_bits, config.v_out_ref),
            offset_bank,
            output_buffer: Vec::new(),
            owner: None,
        }
    }

    /// Input-referred offset of op-amp `k` in this macro's bank.
    pub fn opamp_offset(&self, k: usize) -> f64 {
        self.offset_bank[k % self.offset_bank.len()]
    }

    /// Macro index within its group.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The register array (mode + gate configuration).
    pub fn registers(&self) -> &RegisterArray {
        &self.registers
    }

    /// Currently configured mode.
    pub fn mode(&self) -> MacroMode {
        self.registers.mode()
    }

    /// The most recent ADC capture.
    pub fn output_buffer(&self) -> &[f64] {
        &self.output_buffer
    }

    /// The input DAC.
    pub fn dac(&self) -> &Dac {
        &self.dac
    }

    /// The output ADC.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }
}

/// Handle to a matrix operator placed on a macro group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorId(usize);

/// Where one level plane of an operator lives.
#[derive(Debug, Clone, Copy)]
struct PlaneRef {
    macro_id: usize,
    region: ActiveRegion,
}

/// A placed operator: shape, scaling and plane locations.
#[derive(Debug, Clone)]
pub struct OperatorInfo {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Matrix units per level difference.
    pub scale: f64,
    /// Number of 4-bit planes (2 for differential, 4 for bit-sliced INT8).
    pub planes: usize,
    /// The matrix as quantized onto the levels (the analog ground truth).
    pub quantized: Matrix,
    /// Verify outcome of the load's programming pass across all planes —
    /// the write-verify failure count, surfaced instead of dropped.
    pub program: ProgramOutcome,
}

/// Result of a [`MacroGroup::health_probe`]: the programmed planes read
/// back and compared against the operator's mapped target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeReport {
    /// Matrix entries compared.
    pub cells: usize,
    /// Entries whose readback missed the target by more than the probe's
    /// level tolerance.
    pub bad_cells: usize,
    /// Relative Frobenius residual `‖readback − quantized‖ / ‖quantized‖`.
    pub residual: f64,
}

#[derive(Debug, Clone)]
struct Operator {
    info: OperatorInfo,
    /// Differential planes: `[pos, neg]` or `[hi_pos, hi_neg, lo_pos, lo_neg]`.
    planes: Vec<PlaneRef>,
    /// Total programmed conductance per row across all planes — sets each
    /// TIA's offset noise gain `1 + ΣG_row/g_f` (cached at load time).
    row_g_sum: Vec<f64>,
    /// TIA feedback conductance chosen at load time so the worst-case row
    /// current stays inside the ADC range (realized as parallel RRAM cells,
    /// i.e. quantized to multiples of the level step).
    g_f: f64,
    freed: bool,
}

/// Result of an EGV solve.
#[derive(Debug, Clone)]
pub struct EgvSolution {
    /// Rayleigh-quotient eigenvalue estimate (matrix units, computed
    /// digitally from the quantized operator).
    pub eigenvalue: f64,
    /// Unit-norm eigenvector as captured by the ADCs.
    pub eigenvector: Vec<f64>,
    /// Loop iterations until the direction settled.
    pub iterations: usize,
    /// The feedback conductance level that was programmed.
    pub lambda_level: usize,
}

/// A group of AMC macros with shared control (paper Fig. 2 "AMC macro
/// group"; the full system has 16 macros, Fig. 3).
///
/// # Examples
///
/// ```
/// use gramc_core::{MacroGroup, MacroConfig};
/// use gramc_linalg::Matrix;
///
/// # fn main() -> Result<(), gramc_core::CoreError> {
/// let mut group = MacroGroup::new(2, MacroConfig::small_ideal(4), 7);
/// let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
/// let op = group.load_matrix(&a)?;
/// let y = group.mvm(op, &[1.0, 2.0])?;
/// let y_ref = a.matvec(&[1.0, 2.0]);
/// assert!((y[0] - y_ref[0]).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MacroGroup {
    config: MacroConfig,
    macros: Vec<AmcMacro>,
    operators: Vec<Operator>,
    quantizer: LevelQuantizer,
    write_verify: WriteVerifyController,
    rng: StdRng,
    /// One shared hardware-counter sink for the whole group (installed into
    /// every macro's array, so converter events counted here and array
    /// events counted there aggregate in one place).
    #[cfg(feature = "telemetry")]
    telemetry: Arc<HwCounters>,
}

impl MacroGroup {
    /// Creates a group of `n_macros` macros with the given configuration and
    /// RNG seed (all stochastic effects are reproducible from the seed).
    pub fn new(n_macros: usize, config: MacroConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let quantizer = LevelQuantizer::with_bits(config.nonideal.weight_bits);
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut macros: Vec<AmcMacro> =
            (0..n_macros).map(|id| AmcMacro::new(id, &config, &mut rng)).collect();
        // Counter installation happens after all RNG-driven construction:
        // telemetry never touches the random stream.
        #[cfg(feature = "telemetry")]
        let telemetry = {
            let counters = Arc::new(HwCounters::new());
            for m in &mut macros {
                m.array.set_telemetry(counters.clone());
            }
            counters
        };
        let write_verify = WriteVerifyController::new(Default::default(), quantizer.clone());
        Self {
            config,
            macros,
            operators: Vec::new(),
            quantizer,
            write_verify,
            rng,
            #[cfg(feature = "telemetry")]
            telemetry,
        }
    }

    /// The group's shared hardware event counters (also the sink of every
    /// member array).
    #[cfg(feature = "telemetry")]
    pub fn telemetry(&self) -> &Arc<HwCounters> {
        &self.telemetry
    }

    /// A point-in-time copy of the group's hardware counters.
    #[cfg(feature = "telemetry")]
    pub fn hw_snapshot(&self) -> HwSnapshot {
        self.telemetry.snapshot()
    }

    /// The paper's full system complement: 16 macros of 128×128.
    pub fn paper_system(seed: u64) -> Self {
        Self::new(16, MacroConfig::default(), seed)
    }

    /// The group configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.config
    }

    /// Number of macros.
    pub fn macro_count(&self) -> usize {
        self.macros.len()
    }

    /// Access a macro by id.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSuchMacro`] if out of range.
    pub fn macro_at(&self, id: usize) -> Result<&AmcMacro, CoreError> {
        self.macros.get(id).ok_or(CoreError::NoSuchMacro { id, count: self.macros.len() })
    }

    /// Number of macros not yet claimed by an operator.
    pub fn free_macros(&self) -> usize {
        self.macros.iter().filter(|m| m.owner.is_none()).count()
    }

    /// Shape/scale information for a placed operator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidOperator`] for stale handles.
    pub fn operator_info(&self, id: OperatorId) -> Result<&OperatorInfo, CoreError> {
        let op = self.operators.get(id.0).ok_or(CoreError::InvalidOperator)?;
        if op.freed {
            return Err(CoreError::InvalidOperator);
        }
        Ok(&op.info)
    }

    /// Releases the macros held by an operator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidOperator`] for stale handles.
    pub fn free_operator(&mut self, id: OperatorId) -> Result<(), CoreError> {
        let op = self.operators.get_mut(id.0).ok_or(CoreError::InvalidOperator)?;
        if op.freed {
            return Err(CoreError::InvalidOperator);
        }
        op.freed = true;
        let macro_ids: Vec<usize> = op.planes.iter().map(|p| p.macro_id).collect();
        for mid in macro_ids {
            self.macros[mid].owner = None;
        }
        Ok(())
    }

    fn place_planes(
        &mut self,
        rows: usize,
        cols: usize,
        planes: &[&LevelMatrix],
        op_index: usize,
    ) -> Result<(Vec<PlaneRef>, ProgramOutcome), CoreError> {
        if rows > self.config.array_rows || cols > self.config.array_cols {
            return Err(CoreError::InvalidArgument(
                "matrix exceeds a single array; tile it (see gramc_core::tiling)",
            ));
        }
        // Pack two planes side by side when they fit ("one or two RRAM
        // arrays" — Fig. 2 shows the array split into column halves).
        let per_macro = if 2 * cols <= self.config.array_cols { 2 } else { 1 };
        let macros_needed = planes.len().div_ceil(per_macro);
        let free: Vec<usize> =
            self.macros.iter().filter(|m| m.owner.is_none()).map(|m| m.id).collect();
        if free.len() < macros_needed {
            return Err(CoreError::OutOfCapacity {
                requested: macros_needed,
                available: free.len(),
            });
        }
        let mut refs = Vec::with_capacity(planes.len());
        let mut outcome = ProgramOutcome::default();
        for (k, plane) in planes.iter().enumerate() {
            let macro_id = free[k / per_macro];
            let col0 = (k % per_macro) * cols;
            let region = ActiveRegion { row0: 0, col0, rows, cols };
            outcome.merge(self.program_plane(macro_id, region, plane)?);
            self.macros[macro_id].owner = Some(op_index);
            refs.push(PlaneRef { macro_id, region });
        }
        Ok((refs, outcome))
    }

    /// Programs one level plane and returns its typed verify outcome.
    ///
    /// Pulse-mode non-convergence is no longer a hard error here: the
    /// failure count is surfaced in the outcome (and recorded on the
    /// operator), leaving the accept/reject policy to the caller — the
    /// sharded runtime applies its configurable load threshold, standalone
    /// users read [`OperatorInfo::program`].
    fn program_plane(
        &mut self,
        macro_id: usize,
        region: ActiveRegion,
        plane: &LevelMatrix,
    ) -> Result<ProgramOutcome, CoreError> {
        match self.config.nonideal.programming {
            ProgrammingMode::Pulse => {
                let targets = plane.to_targets();
                let report = self
                    .write_verify
                    .program_region_lossy(
                        &mut self.macros[macro_id].array,
                        region,
                        &targets,
                        &mut self.rng,
                    )
                    .map_err(CoreError::from)?;
                Ok(report.outcome())
            }
            ProgrammingMode::Direct { sigma_levels } => {
                let targets = plane.to_conductances(&self.quantizer);
                self.macros[macro_id]
                    .array
                    .program_direct(region, &targets, &self.quantizer, sigma_levels, &mut self.rng)
                    .map_err(CoreError::from)
            }
        }
    }

    /// Loads a signed matrix with differential 4-bit mapping (the paper's
    /// default). Claims one or two macros.
    ///
    /// # Errors
    ///
    /// Mapping errors for empty/zero matrices; [`CoreError::OutOfCapacity`]
    /// if no macros are free; [`CoreError::InvalidArgument`] if the matrix
    /// exceeds a single array (tile it with [`crate::tiling`]).
    pub fn load_matrix(&mut self, a: &Matrix) -> Result<OperatorId, CoreError> {
        let mapper = ConductanceMapper::new(self.quantizer.clone(), SignedEncoding::Differential);
        let mapped: MappedMatrix = mapper.map(a).map_err(CoreError::from)?;
        let neg = mapped.negative.clone().expect("differential mapping has two planes");
        let op_index = self.operators.len();
        let (planes, program) =
            self.place_planes(a.rows(), a.cols(), &[&mapped.positive, &neg], op_index)?;
        let row_g_sum = self.row_conductance_sums(&planes, a.rows())?;
        let quantized = mapped.dequantize();
        let max_row_levels = (0..a.rows())
            .map(|i| quantized.row(i).iter().map(|v| (v / mapped.scale).abs()).sum::<f64>())
            .fold(0.0_f64, f64::max);
        let g_f = self.feedback_conductance(max_row_levels);
        let info = OperatorInfo {
            rows: a.rows(),
            cols: a.cols(),
            scale: mapped.scale,
            planes: 2,
            quantized,
            program,
        };
        self.operators.push(Operator { info, planes, row_g_sum, g_f, freed: false });
        Ok(OperatorId(op_index))
    }

    /// Loads a signed matrix with 8-bit bit-sliced mapping: two 4-bit nibble
    /// planes per sign (paper Fig. 5 INT8 path). Claims two or four macros.
    ///
    /// # Errors
    ///
    /// Same conditions as [`load_matrix`](Self::load_matrix).
    pub fn load_matrix_bitsliced(&mut self, a: &Matrix) -> Result<OperatorId, CoreError> {
        if self.config.nonideal.weight_bits != 4 {
            return Err(CoreError::InvalidArgument(
                "bit slicing assumes 4-bit cells (two nibbles per 8-bit weight)",
            ));
        }
        let sliced = gramc_array::BitSlicedMatrix::map(a).map_err(CoreError::from)?;
        let op_index = self.operators.len();
        let (planes, program) = self.place_planes(
            a.rows(),
            a.cols(),
            &[&sliced.hi_pos, &sliced.hi_neg, &sliced.lo_pos, &sliced.lo_neg],
            op_index,
        )?;
        let row_g_sum = self.row_conductance_sums(&planes, a.rows())?;
        // Worst-case per-nibble-plane row current (hi and lo planes each see
        // at most 15 levels per cell).
        let max_row_levels = (0..a.rows())
            .map(|i| {
                (0..a.cols())
                    .map(|j| {
                        let hi = sliced.hi_pos.level(i, j).max(sliced.hi_neg.level(i, j));
                        let lo = sliced.lo_pos.level(i, j).max(sliced.lo_neg.level(i, j));
                        hi.max(lo) as f64
                    })
                    .sum::<f64>()
            })
            .fold(0.0_f64, f64::max);
        let g_f = self.feedback_conductance(max_row_levels);
        let info = OperatorInfo {
            rows: a.rows(),
            cols: a.cols(),
            scale: sliced.scale,
            planes: 4,
            quantized: sliced.dequantize(),
            program,
        };
        self.operators.push(Operator { info, planes, row_g_sum, g_f, freed: false });
        Ok(OperatorId(op_index))
    }

    fn operator(&self, id: OperatorId) -> Result<&Operator, CoreError> {
        let op = self.operators.get(id.0).ok_or(CoreError::InvalidOperator)?;
        if op.freed {
            return Err(CoreError::InvalidOperator);
        }
        Ok(op)
    }

    fn configure_operator(&mut self, id: OperatorId, mode: MacroMode) -> Result<(), CoreError> {
        let macro_ids: Vec<usize> = self.operator(id)?.planes.iter().map(|p| p.macro_id).collect();
        for mid in macro_ids {
            self.macros[mid].registers.configure(mode);
        }
        Ok(())
    }

    /// TIA feedback conductance sized for the worst-case row current
    /// `I_max = v_read·step·max_i Σ_j |Δlevel_ij|`, rounded up to a multiple
    /// of the level step (parallel RRAM cells).
    fn feedback_conductance(&self, max_row_level_sum: f64) -> f64 {
        let needed =
            max_row_level_sum * self.quantizer.step() * self.config.v_read / self.config.v_out_ref;
        let steps = (needed / self.quantizer.step() * 1.02).ceil().max(1.0);
        steps * self.quantizer.step()
    }

    fn row_conductance_sums(
        &self,
        planes: &[PlaneRef],
        rows: usize,
    ) -> Result<Vec<f64>, CoreError> {
        let mut sums = vec![0.0; rows];
        for p in planes {
            let g = self.macros[p.macro_id]
                .array
                .conductances_ideal(p.region)
                .map_err(CoreError::from)?;
            for (i, s) in sums.iter_mut().enumerate() {
                *s += g.row(i).iter().sum::<f64>();
            }
        }
        Ok(sums)
    }

    fn opamp_model(&self) -> OpampModel {
        OpampModel { gain: self.config.nonideal.opamp_gain, ..OpampModel::default() }
    }

    /// Conversion factor: matrix units of output per (ampere / volt-scale).
    fn current_decode(&self, scale: f64, v_scale: f64) -> f64 {
        scale / (self.quantizer.step() * v_scale)
    }

    /// Analog MVM: `y = A·x` through the crossbar fast path with DAC/ADC
    /// quantization, read noise and TIA offsets. Bit-sliced operators are
    /// recombined digitally (`16·hi + lo`).
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if `x.len()` differs from the operator's
    /// column count, plus stale-handle errors.
    pub fn mvm(&mut self, id: OperatorId, x: &[f64]) -> Result<Vec<f64>, CoreError> {
        let op = self.operator(id)?;
        let (rows, cols, scale, nplanes) =
            (op.info.rows, op.info.cols, op.info.scale, op.info.planes);
        if x.len() != cols {
            return Err(CoreError::ShapeMismatch { expected: cols, found: x.len() });
        }
        let planes = op.planes.clone();
        self.configure_operator(id, MacroMode::Mvm)?;

        let x_max = vector::norm_inf(x);
        if x_max == 0.0 {
            return Ok(vec![0.0; rows]);
        }
        let v_scale = self.config.v_read / x_max;
        // All planes share the DAC drive.
        let dac = self.macros[planes[0].macro_id].dac;
        let v: Vec<f64> = x.iter().map(|&xi| dac.convert(xi / x_max)).collect();
        // One DAC drive per input column, shared across planes; one ADC
        // conversion per row per differential pair. Settles and cell reads
        // are counted by `row_currents` inside the array.
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_dac_drives(cols as u64);
            self.telemetry.add_adc_conversions((rows * (nplanes / 2)) as u64);
        }

        // Per-plane row currents.
        let mut currents = Vec::with_capacity(nplanes);
        for p in &planes {
            let i = self.macros[p.macro_id]
                .array
                .row_currents(p.region, &v, &mut self.rng)
                .map_err(CoreError::from)?;
            currents.push(i);
        }

        // TIA feedback sized at load time for the worst-case row current.
        let op_ref = self.operator(id)?;
        let g_f = op_ref.g_f;
        let row_g_sum = op_ref.row_g_sum.clone();
        let adc = self.macros[planes[0].macro_id].adc;
        let conv = self.current_decode(scale, v_scale);
        let mut y = Vec::with_capacity(rows);
        for i in 0..rows {
            // Each differential pair is captured by its own TIA + ADC; the
            // nibble shift-add (×16) happens digitally AFTER conversion —
            // an analog ×16 would blow past the converter rails, which is
            // the entire reason bit slicing recombines digitally.
            let offset = self.macros[planes[0].macro_id].opamp_offset(i);
            let noise_gain = 1.0 + row_g_sum[i] / g_f;
            let mut pair_values = Vec::with_capacity(nplanes / 2);
            for pair in 0..nplanes / 2 {
                let i_diff = currents[2 * pair][i] - currents[2 * pair + 1][i];
                let v_out = -i_diff / g_f + offset * noise_gain;
                pair_values.push(adc.convert(v_out) * adc.v_ref());
            }
            let v_combined = match nplanes {
                2 => pair_values[0],
                4 => 16.0 * pair_values[0] + pair_values[1],
                _ => unreachable!("operators have 2 or 4 planes"),
            };
            y.push(-v_combined * g_f * conv);
        }
        // Capture into the macro's output buffer (Fig. 2's read-out path).
        self.macros[planes[0].macro_id].output_buffer = y.clone();
        Ok(y)
    }

    /// Batched analog MVM: one conductance read (one read-noise sample) is
    /// shared across all input vectors — the throughput path for neural-
    /// network inference, where a layer evaluates hundreds of im2col columns
    /// back to back and the array state cannot change between them.
    ///
    /// Semantically equivalent to calling [`mvm`](Self::mvm) per column with
    /// a shared noise draw; converter quantization and TIA offsets are
    /// applied per column exactly as in the scalar path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mvm`](Self::mvm).
    pub fn mvm_batch(
        &mut self,
        id: OperatorId,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let cols = self.operator(id)?.info.cols;
        for x in xs {
            if x.len() != cols {
                return Err(CoreError::ShapeMismatch { expected: cols, found: x.len() });
            }
        }
        let mut v = Matrix::zeros(xs.len(), cols);
        for (b, x) in xs.iter().enumerate() {
            v.row_mut(b).copy_from_slice(x);
        }
        let out = self.mvm_batch_rows(id, &v)?;
        Ok((0..out.rows()).map(|b| out.row(b).to_vec()).collect())
    }

    /// [`mvm_batch`](Self::mvm_batch) on matrix batches: row `b` of `xs` is
    /// input vector `b`, row `b` of the result is its output. This is the
    /// zero-copy streaming form the `gramc-nn` drive-matrix pipeline feeds
    /// directly (no per-vector `Vec`s on either side); the slice-based
    /// `mvm_batch` is a thin wrapper around it.
    ///
    /// The per-plane products run through [`parallel::map_collect`], one
    /// scoped thread per plane, each plane's `matmul` capped to its share of
    /// the thread budget — plane results are combined in plane order, so the
    /// output does not depend on the thread count.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if `xs.cols()` differs from the
    /// operator's column count, plus stale-handle errors.
    pub fn mvm_batch_rows(&mut self, id: OperatorId, xs: &Matrix) -> Result<Matrix, CoreError> {
        let op = self.operator(id)?;
        let (rows, cols, scale, nplanes) =
            (op.info.rows, op.info.cols, op.info.scale, op.info.planes);
        let (planes, g_f, row_g_sum) = (op.planes.clone(), op.g_f, op.row_g_sum.clone());
        if xs.cols() != cols {
            return Err(CoreError::ShapeMismatch { expected: cols, found: xs.cols() });
        }
        self.configure_operator(id, MacroMode::Mvm)?;
        // One conductance read per plane for the whole batch, held
        // pre-transposed so the whole batch multiplies through the blocked
        // matmul kernel: I_p = V · G_pᵀ. With read noise each batch samples
        // a fresh read; noise-free reads share each array's generation-
        // tagged snapshot by reference (zero copies across calls). Both
        // paths include the IR-drop correction, like the scalar `mvm`.
        let noisy = self.config.nonideal.read_noise_rel != 0.0;
        let mut gs_t: Vec<Arc<Matrix>> = Vec::with_capacity(planes.len());
        for p in &planes {
            let array = &self.macros[p.macro_id].array;
            let g_t = if noisy {
                Arc::new(
                    array
                        .effective_conductances_noisy(p.region, &mut self.rng)
                        .map_err(CoreError::from)?
                        .transpose(),
                )
            } else {
                array.transposed_effective_conductances(p.region).map_err(CoreError::from)?
            };
            gs_t.push(g_t);
        }
        let dac = self.macros[planes[0].macro_id].dac;
        let adc = self.macros[planes[0].macro_id].adc;
        // DAC-converted drive matrix, one batch vector per row (all-zero
        // inputs keep their exact-zero output without touching the arrays).
        let bsz = xs.rows();
        let mut v_mat = Matrix::zeros(bsz, cols);
        let mut x_maxes = vec![0.0; bsz];
        for (b, x_max) in x_maxes.iter_mut().enumerate() {
            let x = xs.row(b);
            *x_max = vector::norm_inf(x);
            if *x_max == 0.0 {
                continue;
            }
            for (vj, &xi) in v_mat.row_mut(b).iter_mut().zip(x) {
                *vj = dac.convert(xi / *x_max);
            }
        }
        // The batch path reads conductances directly (no `row_currents`), so
        // the macro itself accounts for the per-driven-row analog events:
        // each nonzero batch row drives the DACs once, settles every plane,
        // reads every cell of every plane, and converts rows × pairs ADCs.
        #[cfg(feature = "telemetry")]
        {
            let driven = x_maxes.iter().filter(|&&m| m != 0.0).count() as u64;
            self.telemetry.add_dac_drives(driven * cols as u64);
            self.telemetry.add_settle_events(driven * nplanes as u64);
            self.telemetry.add_read_cycles_mvm(driven * (nplanes * rows * cols) as u64);
            self.telemetry.add_adc_conversions(driven * (rows * (nplanes / 2)) as u64);
        }
        // Plane drives are independent analog events: fan them out over
        // scoped threads (serial and in order when the feature is off or
        // only one core is available — same results either way).
        let currents: Vec<Matrix> =
            gramc_linalg::parallel::map_collect(&gs_t, |g_t| v_mat.matmul(g_t));
        let mut out = Matrix::zeros(bsz, rows);
        for (b, &x_max) in x_maxes.iter().enumerate() {
            if x_max == 0.0 {
                continue;
            }
            let v_scale = self.config.v_read / x_max;
            let conv = self.current_decode(scale, v_scale);
            let y = out.row_mut(b);
            for (i, yi) in y.iter_mut().enumerate() {
                let offset = self.macros[planes[0].macro_id].opamp_offset(i);
                let noise_gain = 1.0 + row_g_sum[i] / g_f;
                // At most two differential pairs (2 or 4 planes): a fixed
                // array keeps the hot decode loop allocation-free.
                let mut pair_values = [0.0_f64; 2];
                for (pair, pv) in pair_values.iter_mut().take(nplanes / 2).enumerate() {
                    let i_diff = currents[2 * pair][(b, i)] - currents[2 * pair + 1][(b, i)];
                    let v_out = -i_diff / g_f + offset * noise_gain;
                    *pv = adc.convert(v_out) * adc.v_ref();
                }
                let v_combined = match nplanes {
                    2 => pair_values[0],
                    4 => 16.0 * pair_values[0] + pair_values[1],
                    _ => unreachable!("operators have 2 or 4 planes"),
                };
                *yi = -v_combined * g_f * conv;
            }
        }
        Ok(out)
    }

    /// Reference MVM through the full MNA netlist (differential operators
    /// only) — used to validate the fast path. No read noise or converters;
    /// keeps device variation, quantization and op-amp gain/offset.
    ///
    /// # Errors
    ///
    /// Stale-handle and shape errors; [`CoreError::Circuit`] if the netlist
    /// solve fails.
    pub fn mvm_mna(&mut self, id: OperatorId, x: &[f64]) -> Result<Vec<f64>, CoreError> {
        let op = self.operator(id)?;
        if op.info.planes != 2 {
            return Err(CoreError::InvalidArgument("mvm_mna supports differential operators"));
        }
        if x.len() != op.info.cols {
            return Err(CoreError::ShapeMismatch { expected: op.info.cols, found: x.len() });
        }
        let (scale, planes) = (op.info.scale, op.planes.clone());
        let x_max = vector::norm_inf(x);
        if x_max == 0.0 {
            return Ok(vec![0.0; op.info.rows]);
        }
        let v_scale = self.config.v_read / x_max;
        let v: Vec<f64> = x.iter().map(|&xi| xi / x_max * self.config.v_read).collect();
        let g_pos = self.macros[planes[0].macro_id]
            .array
            .effective_conductances(planes[0].region)
            .map_err(CoreError::from)?;
        let g_neg = self.macros[planes[1].macro_id]
            .array
            .effective_conductances(planes[1].region)
            .map_err(CoreError::from)?;
        let g_f = self.operator(id)?.g_f;
        let model = self.opamp_model();
        let mut topo =
            topology::build_mvm(&g_pos, &g_neg, &v, g_f, model).map_err(CoreError::from)?;
        for (k, opamp) in topo.circuit.opamp_ids().into_iter().enumerate() {
            let m = topo.circuit.opamp_model(opamp);
            let off = self.macros[planes[0].macro_id].opamp_offset(k);
            topo.circuit.set_opamp_model(opamp, m.offset(off));
        }
        let sol = dc_solve(&topo.circuit).map_err(CoreError::from)?;
        let conv = self.current_decode(scale, v_scale);
        Ok(sol.voltages(&topo.outputs).iter().map(|v_out| -v_out * g_f * conv).collect())
    }

    /// One-step linear-system solve `A·x = b` on the INV configuration —
    /// the single-RHS form of [`solve_inv_batch`](Self::solve_inv_batch)
    /// (full MNA of the feedback circuit, DAC-quantized injection,
    /// ADC-quantized auto-ranged read-out).
    ///
    /// # Errors
    ///
    /// Shape/handle errors; [`CoreError::Circuit`] on singular netlists;
    /// [`CoreError::InvalidArgument`] for non-square or bit-sliced operators.
    pub fn solve_inv(&mut self, id: OperatorId, b: &[f64]) -> Result<Vec<f64>, CoreError> {
        let mut xs = self.solve_inv_batch(id, &[b.to_vec()])?;
        Ok(xs.pop().expect("one RHS in, one solution out"))
    }

    /// Multi-RHS linear-system solve on the INV configuration: every column
    /// of the batch shares one conductance read and one MNA factorization
    /// ([`DcOperator::solve_rhs_matrix`]), so `k` right-hand sides cost one
    /// LU factorization plus `k` substitutions instead of `k` full solves.
    ///
    /// Auto-ranging (the Fig. 3 verify/flag path) runs per column: a column
    /// whose output rails the ADC halves its injection scale α (volts of
    /// output per matrix unit of x; `I_in = −(step/scale)·α·b`) and
    /// re-substitutes together with the other railed columns on the next
    /// attempt — only the injected currents change between attempts, so the
    /// factorization is never repeated.
    ///
    /// # Errors
    ///
    /// Shape/handle errors; [`CoreError::Circuit`] on singular netlists;
    /// [`CoreError::InvalidArgument`] for non-square or bit-sliced
    /// operators. The batch is one analog program: a column that still
    /// rails the ADC after every ranging attempt fails the whole call
    /// (solve such columns individually to isolate them).
    pub fn solve_inv_batch(
        &mut self,
        id: OperatorId,
        bs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let op = self.operator(id)?;
        if op.info.rows != op.info.cols {
            return Err(CoreError::InvalidArgument("INV requires a square operator"));
        }
        if op.info.planes != 2 {
            return Err(CoreError::InvalidArgument("INV requires a differential operator"));
        }
        let n = op.info.rows;
        for b in bs {
            if b.len() != n {
                return Err(CoreError::ShapeMismatch { expected: n, found: b.len() });
            }
        }
        if bs.is_empty() {
            return Ok(Vec::new());
        }
        let (scale, planes) = (op.info.scale, op.planes.clone());
        self.configure_operator(id, MacroMode::Inv)?;

        let dac = self.macros[planes[0].macro_id].dac;
        let adc = self.macros[planes[0].macro_id].adc;
        let c = self.quantizer.step() / scale;

        // Per-column injection state: quantized b, its norm and the current
        // ranging scale α (volts of output per matrix unit of x). Scanned
        // before the conductance read so an all-zero batch — including
        // every zero-b `solve_inv` call — short-circuits without touching
        // the arrays or the RNG (matching `solve_pinv` and the zero-input
        // `mvm` path).
        let mut quantized: Vec<Vec<f64>> = Vec::with_capacity(bs.len());
        let mut b_maxes = Vec::with_capacity(bs.len());
        let mut alphas = Vec::with_capacity(bs.len());
        let mut xs: Vec<Option<Vec<f64>>> = vec![None; bs.len()];
        let mut active: Vec<usize> = Vec::new();
        for (ci, b) in bs.iter().enumerate() {
            let b_max = vector::norm_inf(b);
            if b_max == 0.0 {
                xs[ci] = Some(vec![0.0; n]);
                quantized.push(Vec::new());
                b_maxes.push(0.0);
                alphas.push(0.0);
                continue;
            }
            quantized
                .push(b.iter().map(|&bi| dac.convert(bi / b_max) / self.config.v_read).collect());
            b_maxes.push(b_max);
            alphas.push(self.config.v_read / b_max);
            active.push(ci);
        }
        if active.is_empty() {
            return Ok(xs.into_iter().map(|x| x.expect("all columns zero")).collect());
        }
        // One DAC drive per element of every active injection column.
        #[cfg(feature = "telemetry")]
        self.telemetry.add_dac_drives((active.len() * n) as u64);

        // One noisy conductance read shared by the whole batch (the
        // mvm_batch contract: the array state cannot change mid-batch).
        let g_pos = self.macros[planes[0].macro_id]
            .array
            .conductances(planes[0].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_neg = self.macros[planes[1].macro_id]
            .array
            .conductances(planes[1].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let model = self.opamp_model();

        let zeros = vec![0.0; n];
        let mut topo =
            topology::build_inv(&g_pos, &g_neg, &zeros, model).map_err(CoreError::from)?;
        for (k, opamp) in topo.circuit.opamp_ids().into_iter().enumerate() {
            let m = topo.circuit.opamp_model(opamp);
            let off = self.macros[planes[0].macro_id].opamp_offset(k);
            topo.circuit.set_opamp_model(opamp, m.offset(off));
        }
        let dc_op = DcOperator::new(&topo.circuit).map_err(CoreError::from)?;

        // Ranged multi-RHS substitution: all still-railing columns stack
        // into one RHS matrix and substitute through the shared LU factors.
        for _attempt in 0..8 {
            if active.is_empty() {
                break;
            }
            // Every ranging attempt settles the feedback loop once per
            // still-active column, biasing both planes of the region.
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.add_solve_settles(active.len() as u64);
                self.telemetry.add_read_cycles_solve((active.len() * 2 * n * n) as u64);
            }
            let mut rhs = Matrix::zeros(dc_op.dim(), active.len());
            for (k, &ci) in active.iter().enumerate() {
                for (&src, &qb) in topo.input_sources.iter().zip(&quantized[ci]) {
                    topo.circuit.set_current(src, -c * alphas[ci] * b_maxes[ci] * qb);
                }
                let col = dc_op.rhs(&topo.circuit).map_err(CoreError::from)?;
                for (i, v) in col.iter().enumerate() {
                    rhs[(i, k)] = *v;
                }
            }
            let sol = dc_op.solve_rhs_matrix(&rhs).map_err(CoreError::from)?;
            let mut railed = Vec::new();
            for (k, &ci) in active.iter().enumerate() {
                // Raw MNA columns: node voltages occupy the leading rows,
                // ground (index 0) is implicit.
                let volts: Vec<f64> = topo
                    .x_nodes
                    .iter()
                    .map(|node| match node.index() {
                        0 => 0.0,
                        i => sol[(i - 1, k)],
                    })
                    .collect();
                let peak = volts.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
                if peak > 0.95 * adc.v_ref() {
                    alphas[ci] *= 0.5;
                    railed.push(ci);
                } else {
                    #[cfg(feature = "telemetry")]
                    self.telemetry.add_adc_conversions(n as u64);
                    xs[ci] = Some(
                        volts
                            .iter()
                            .map(|&vx| adc.convert(vx) * adc.v_ref() / alphas[ci])
                            .collect(),
                    );
                }
            }
            active = railed;
        }
        if !active.is_empty() {
            return Err(CoreError::InvalidArgument(
                "INV output railed the ADC at every ranging attempt",
            ));
        }
        let out: Vec<Vec<f64>> =
            xs.into_iter().map(|x| x.expect("every column solved or error returned")).collect();
        self.macros[planes[0].macro_id].output_buffer = out.last().cloned().unwrap_or_default();
        Ok(out)
    }

    /// One-step least-squares solve `x = A⁺·b` on the PINV configuration.
    ///
    /// # Errors
    ///
    /// Shape/handle errors; [`CoreError::Circuit`] on singular netlists.
    pub fn solve_pinv(&mut self, id: OperatorId, b: &[f64]) -> Result<Vec<f64>, CoreError> {
        let op = self.operator(id)?;
        if op.info.planes != 2 {
            return Err(CoreError::InvalidArgument("PINV requires a differential operator"));
        }
        if b.len() != op.info.rows {
            return Err(CoreError::ShapeMismatch { expected: op.info.rows, found: b.len() });
        }
        let (scale, cols, planes) = (op.info.scale, op.info.cols, op.planes.clone());
        self.configure_operator(id, MacroMode::Pinv)?;

        let b_max = vector::norm_inf(b);
        if b_max == 0.0 {
            return Ok(vec![0.0; cols]);
        }
        let dac = self.macros[planes[0].macro_id].dac;
        let adc = self.macros[planes[0].macro_id].adc;
        let c = self.quantizer.step() / scale;

        let g_pos = self.macros[planes[0].macro_id]
            .array
            .conductances(planes[0].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_neg = self.macros[planes[1].macro_id]
            .array
            .conductances(planes[1].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_f = c.clamp(self.quantizer.g_min(), self.quantizer.g_max());
        let model = self.opamp_model();

        // Auto-ranging exactly as in solve_inv: factor once, re-scale the
        // injected currents per attempt.
        let mut alpha = self.config.v_read / b_max;
        let quantized_b: Vec<f64> =
            b.iter().map(|&bi| dac.convert(bi / b_max) / self.config.v_read).collect();
        #[cfg(feature = "telemetry")]
        self.telemetry.add_dac_drives(b.len() as u64);
        let i_b: Vec<f64> = quantized_b.iter().map(|&qb| -c * alpha * b_max * qb).collect();
        let mut topo =
            topology::build_pinv(&g_pos, &g_neg, &i_b, g_f, model).map_err(CoreError::from)?;
        for (k, opamp) in topo.circuit.opamp_ids().into_iter().enumerate() {
            let m = topo.circuit.opamp_model(opamp);
            let off = self.macros[planes[0].macro_id].opamp_offset(k);
            topo.circuit.set_opamp_model(opamp, m.offset(off));
        }
        let dc_op = DcOperator::new(&topo.circuit).map_err(CoreError::from)?;
        let mut x = Vec::new();
        for _attempt in 0..8 {
            // One feedback-loop settle per ranging attempt, reading both
            // planes of the full region.
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.add_solve_settles(1);
                self.telemetry.add_read_cycles_solve((2 * b.len() * cols) as u64);
            }
            for (&src, &qb) in topo.input_sources.iter().zip(&quantized_b) {
                topo.circuit.set_current(src, -c * alpha * b_max * qb);
            }
            let sol = dc_op.solve_circuit(&topo.circuit).map_err(CoreError::from)?;
            let volts = sol.voltages(&topo.x_nodes);
            let peak = volts.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if peak > 0.95 * adc.v_ref() {
                alpha *= 0.5;
                continue;
            }
            #[cfg(feature = "telemetry")]
            self.telemetry.add_adc_conversions(cols as u64);
            x = volts.iter().map(|&vx| adc.convert(vx) * adc.v_ref() / alpha).collect();
            break;
        }
        if x.is_empty() {
            return Err(CoreError::InvalidArgument(
                "PINV output railed the ADC at every ranging attempt",
            ));
        }
        self.macros[planes[0].macro_id].output_buffer = x.clone();
        Ok(x)
    }

    /// Multi-RHS least-squares solve on the PINV configuration — the twin
    /// of [`Self::solve_inv_batch`]. Every column of the batch shares one
    /// conductance read and one MNA factorization
    /// ([`DcOperator::solve_rhs_matrix`]); auto-ranging runs per column with
    /// railed columns re-substituted together on the next attempt, so `k`
    /// right-hand sides cost one LU factorization plus `k` substitutions.
    ///
    /// # Errors
    ///
    /// Shape/handle errors; [`CoreError::Circuit`] on singular netlists;
    /// [`CoreError::InvalidArgument`] for bit-sliced operators. The batch is
    /// one analog program: a column that still rails the ADC after every
    /// ranging attempt fails the whole call (solve such columns individually
    /// to isolate them).
    pub fn solve_pinv_batch(
        &mut self,
        id: OperatorId,
        bs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let op = self.operator(id)?;
        if op.info.planes != 2 {
            return Err(CoreError::InvalidArgument("PINV requires a differential operator"));
        }
        let rows = op.info.rows;
        let cols = op.info.cols;
        for b in bs {
            if b.len() != rows {
                return Err(CoreError::ShapeMismatch { expected: rows, found: b.len() });
            }
        }
        if bs.is_empty() {
            return Ok(Vec::new());
        }
        let (scale, planes) = (op.info.scale, op.planes.clone());
        self.configure_operator(id, MacroMode::Pinv)?;

        let dac = self.macros[planes[0].macro_id].dac;
        let adc = self.macros[planes[0].macro_id].adc;
        let c = self.quantizer.step() / scale;

        // Per-column injection state, scanned before the conductance read so
        // an all-zero batch short-circuits without touching the arrays or
        // the RNG (matching `solve_pinv` and `solve_inv_batch`).
        let mut quantized: Vec<Vec<f64>> = Vec::with_capacity(bs.len());
        let mut b_maxes = Vec::with_capacity(bs.len());
        let mut alphas = Vec::with_capacity(bs.len());
        let mut xs: Vec<Option<Vec<f64>>> = vec![None; bs.len()];
        let mut active: Vec<usize> = Vec::new();
        for (ci, b) in bs.iter().enumerate() {
            let b_max = vector::norm_inf(b);
            if b_max == 0.0 {
                xs[ci] = Some(vec![0.0; cols]);
                quantized.push(Vec::new());
                b_maxes.push(0.0);
                alphas.push(0.0);
                continue;
            }
            quantized
                .push(b.iter().map(|&bi| dac.convert(bi / b_max) / self.config.v_read).collect());
            b_maxes.push(b_max);
            alphas.push(self.config.v_read / b_max);
            active.push(ci);
        }
        if active.is_empty() {
            return Ok(xs.into_iter().map(|x| x.expect("all columns zero")).collect());
        }
        #[cfg(feature = "telemetry")]
        self.telemetry.add_dac_drives((active.len() * rows) as u64);

        // One noisy conductance read shared by the whole batch.
        let g_pos = self.macros[planes[0].macro_id]
            .array
            .conductances(planes[0].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_neg = self.macros[planes[1].macro_id]
            .array
            .conductances(planes[1].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_f = c.clamp(self.quantizer.g_min(), self.quantizer.g_max());
        let model = self.opamp_model();

        // The initial source currents are overwritten per column before each
        // substitution, so the topology builds with a zero injection.
        let zeros = vec![0.0; rows];
        let mut topo =
            topology::build_pinv(&g_pos, &g_neg, &zeros, g_f, model).map_err(CoreError::from)?;
        for (k, opamp) in topo.circuit.opamp_ids().into_iter().enumerate() {
            let m = topo.circuit.opamp_model(opamp);
            let off = self.macros[planes[0].macro_id].opamp_offset(k);
            topo.circuit.set_opamp_model(opamp, m.offset(off));
        }
        let dc_op = DcOperator::new(&topo.circuit).map_err(CoreError::from)?;

        // Ranged multi-RHS substitution through the shared LU factors.
        for _attempt in 0..8 {
            if active.is_empty() {
                break;
            }
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.add_solve_settles(active.len() as u64);
                self.telemetry.add_read_cycles_solve((active.len() * 2 * rows * cols) as u64);
            }
            let mut rhs = Matrix::zeros(dc_op.dim(), active.len());
            for (k, &ci) in active.iter().enumerate() {
                for (&src, &qb) in topo.input_sources.iter().zip(&quantized[ci]) {
                    topo.circuit.set_current(src, -c * alphas[ci] * b_maxes[ci] * qb);
                }
                let col = dc_op.rhs(&topo.circuit).map_err(CoreError::from)?;
                for (i, v) in col.iter().enumerate() {
                    rhs[(i, k)] = *v;
                }
            }
            let sol = dc_op.solve_rhs_matrix(&rhs).map_err(CoreError::from)?;
            let mut railed = Vec::new();
            for (k, &ci) in active.iter().enumerate() {
                let volts: Vec<f64> = topo
                    .x_nodes
                    .iter()
                    .map(|node| match node.index() {
                        0 => 0.0,
                        i => sol[(i - 1, k)],
                    })
                    .collect();
                let peak = volts.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
                if peak > 0.95 * adc.v_ref() {
                    alphas[ci] *= 0.5;
                    railed.push(ci);
                } else {
                    #[cfg(feature = "telemetry")]
                    self.telemetry.add_adc_conversions(cols as u64);
                    xs[ci] = Some(
                        volts
                            .iter()
                            .map(|&vx| adc.convert(vx) * adc.v_ref() / alphas[ci])
                            .collect(),
                    );
                }
            }
            active = railed;
        }
        if !active.is_empty() {
            return Err(CoreError::InvalidArgument(
                "PINV output railed the ADC at every ranging attempt",
            ));
        }
        let out: Vec<Vec<f64>> =
            xs.into_iter().map(|x| x.expect("every column solved or error returned")).collect();
        self.macros[planes[0].macro_id].output_buffer = out.last().cloned().unwrap_or_default();
        Ok(out)
    }

    /// Dominant-eigenvector solve on the EGV configuration.
    ///
    /// The controller first estimates λ₁ digitally (power iteration on the
    /// quantized operator — exactly what GRAMC's digital module can compute
    /// from the level data), programs the feedback conductance half a level
    /// *below* the estimate, and then iterates the loop's clipped fixed
    /// point: `u ← clip(ΔG·u / g_λ)`. This is the settled state of the
    /// saturating transient (validated against `transient_solve` in the
    /// integration tests).
    ///
    /// # Errors
    ///
    /// Shape/handle errors; [`CoreError::EgvNoConvergence`] if the loop
    /// direction does not settle.
    pub fn solve_egv(&mut self, id: OperatorId) -> Result<EgvSolution, CoreError> {
        let op = self.operator(id)?;
        if op.info.rows != op.info.cols {
            return Err(CoreError::InvalidArgument("EGV requires a square operator"));
        }
        if op.info.planes != 2 {
            return Err(CoreError::InvalidArgument("EGV requires a differential operator"));
        }
        let n = op.info.rows;
        let planes = op.planes.clone();
        let quantized = op.info.quantized.clone();
        self.configure_operator(id, MacroMode::Egv)?;

        // Effective ΔG with read noise, sampled once for the run.
        let g_pos = self.macros[planes[0].macro_id]
            .array
            .conductances(planes[0].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let g_neg = self.macros[planes[1].macro_id]
            .array
            .conductances(planes[1].region, &mut self.rng)
            .map_err(CoreError::from)?;
        let dg = &g_pos - &g_neg;

        // Digital λ̂ estimate from the *measured* conductances — the
        // write-verify path reads the array anyway, so the controller
        // estimates the dominant eigenvalue of the operator it actually
        // holds (device variation included), in conductance units. This is
        // what keeps the λ margin at the read-noise scale instead of the
        // much larger static-variation scale.
        let pair = power_iteration(&dg, 10_000, 1e-10).map_err(CoreError::from)?;
        let g_lambda_ideal = pair.value;
        if !(g_lambda_ideal > 0.0) {
            return Err(CoreError::InvalidArgument("EGV requires a positive dominant eigenvalue"));
        }

        // The feedback conductance may exceed one cell's G_max (λ₁ can be
        // much larger than the matrix entries): realize it as parallel RRAM
        // cells, quantized to the level step. The controller programs it at
        // least half a step below λ̂·c so the dominant loop gain exceeds one,
        // and retries one step lower if the mode fails to grow (Fig. 3's
        // verify/retry control flow).
        let step = self.quantizer.step();
        let base_steps = ((g_lambda_ideal / step) - 0.5).floor().max(1.0);
        let v_sat = self.config.v_out_ref;
        let offsets: Vec<f64> =
            (0..n).map(|k| self.macros[planes[0].macro_id].opamp_offset(k)).collect();

        let mut chosen = None;
        'attempt: for attempt in 0..8 {
            let steps_down = base_steps - attempt as f64;
            if steps_down < 1.0 {
                break;
            }
            let g_lambda = steps_down * step;
            let mut u: Vec<f64> =
                (0..n).map(|k| 1e-3 * (((k * 37 + 11) % 17) as f64 - 8.0)).collect();
            let max_iters = 50_000;
            let mut last_nrm = vector::norm2(&u);
            for it in 0..max_iters {
                let w = dg.matvec(&u);
                let next: Vec<f64> = w
                    .iter()
                    .zip(&offsets)
                    .map(|(wi, off)| (wi / g_lambda + 2.0 * off).clamp(-v_sat, v_sat))
                    .collect();
                let (next_dir, nrm) = vector::normalize(&next);
                let (u_dir, _) = vector::normalize(&u);
                let delta = vector::rel_error_up_to_sign(&next_dir, &u_dir);
                let amp_delta = (nrm - last_nrm).abs() / nrm.max(1e-30);
                last_nrm = nrm;
                u = next;
                if nrm < 1e-10 {
                    // Decayed to the noise floor: λ̂ overshot the spectrum —
                    // retry one step lower.
                    continue 'attempt;
                }
                // Settled means BOTH the direction and the (clip-limited)
                // amplitude have stopped moving — during the growth phase
                // the direction settles long before the amplitude does.
                if delta < 1e-8 && amp_delta < 1e-8 {
                    if nrm > 0.05 * v_sat {
                        chosen = Some((u, it + 1, steps_down as usize));
                        break 'attempt;
                    }
                    continue 'attempt;
                }
                if it == max_iters - 1 && nrm > 0.05 * v_sat {
                    // The clipped fixed point can micro-oscillate (a small
                    // limit cycle in the saturated components); the grown
                    // direction is valid — accept it, as a lock-in amplifier
                    // reading the settled output would.
                    chosen = Some((u, it + 1, steps_down as usize));
                    break 'attempt;
                }
            }
            // Decayed and never grew within the budget: try one step lower.
        }
        let Some((u, iterations, lambda_level)) = chosen else {
            return Err(CoreError::EgvNoConvergence { iterations: 2000 });
        };
        // Every loop iteration is one analog settle of the feedback loop
        // reading both planes; the settled mode is captured once per row.
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_solve_settles(iterations as u64);
            self.telemetry.add_read_cycles_solve((iterations * 2 * n * n) as u64);
            self.telemetry.add_adc_conversions(n as u64);
        }

        // ADC capture and normalization.
        let adc = self.macros[planes[0].macro_id].adc;
        let captured: Vec<f64> = u.iter().map(|&ui| adc.convert(ui) * adc.v_ref()).collect();
        let (eigenvector, _) = vector::normalize(&captured);
        // Digital Rayleigh quotient on the quantized operator.
        let eigenvalue = vector::dot(&eigenvector, &quantized.matvec(&eigenvector));
        self.macros[planes[0].macro_id].output_buffer = eigenvector.clone();
        Ok(EgvSolution { eigenvalue, eigenvector, iterations, lambda_level })
    }

    /// Health probe: reads an operator's programmed planes back (ideal read
    /// — no read noise, but device faults and drift included) and compares
    /// the realized matrix against the operator's quantized target.
    ///
    /// `level_tol` is the per-entry tolerance in level units: an entry whose
    /// realized value misses the target by more than `level_tol · scale`
    /// counts as a bad cell. The report's residual is the relative Frobenius
    /// error of the full readback, the quantity the runtime's health monitor
    /// thresholds on.
    ///
    /// # Errors
    ///
    /// Stale-handle errors.
    pub fn health_probe(&self, id: OperatorId, level_tol: f64) -> Result<ProbeReport, CoreError> {
        let op = self.operator(id)?;
        let (rows, cols, scale, nplanes) =
            (op.info.rows, op.info.cols, op.info.scale, op.info.planes);
        let step = self.quantizer.step();
        let mut plane_g = Vec::with_capacity(nplanes);
        for p in &op.planes {
            let g = self.macros[p.macro_id]
                .array
                .conductances_ideal(p.region)
                .map_err(CoreError::from)?;
            plane_g.push(g);
        }
        // Decode exactly as the MVM paths do: per-pair level differences
        // (the shared g_min cancels), bit-sliced pairs recombined as 16·hi+lo.
        let realized = Matrix::from_fn(rows, cols, |i, j| {
            let diff =
                |pair: usize| (plane_g[2 * pair][(i, j)] - plane_g[2 * pair + 1][(i, j)]) / step;
            let levels = match nplanes {
                2 => diff(0),
                4 => 16.0 * diff(0) + diff(1),
                _ => unreachable!("operators have 2 or 4 planes"),
            };
            levels * scale
        });
        let tol = level_tol * scale;
        let mut bad_cells = 0;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..rows {
            for j in 0..cols {
                let err = realized[(i, j)] - op.info.quantized[(i, j)];
                if err.abs() > tol {
                    bad_cells += 1;
                }
                num += err * err;
                den += op.info.quantized[(i, j)] * op.info.quantized[(i, j)];
            }
        }
        let residual = if den > 0.0 { (num / den).sqrt() } else { num.sqrt() };
        Ok(ProbeReport { cells: rows * cols, bad_cells, residual })
    }
}

/// Fault-injection controls (the `fault-inject` feature): install one
/// seeded [`FaultPlan`] per macro, advance the shared fault clock, and
/// clear. Each macro gets a decorrelated seed derived from the campaign
/// seed, so a group-level injection is reproducible end to end.
#[cfg(feature = "fault-inject")]
impl MacroGroup {
    /// Samples and installs a fault plan on every macro's crossbar.
    ///
    /// Macro `m` uses seed `seed ^ (m+1)·0x9E37_79B9_7F4A_7C15` — the same
    /// golden-ratio decorrelation the sharded runtime applies to shard
    /// seeds. Installing a plan invalidates the affected arrays' snapshot
    /// caches; an all-zero `config` leaves behavior bit-identical.
    pub fn inject_faults(&mut self, config: &FaultConfig, seed: u64) {
        let (rows, cols) = (self.config.array_rows, self.config.array_cols);
        for m in &mut self.macros {
            let macro_seed = seed ^ (m.id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let plan = FaultPlan::sample(rows, cols, config, macro_seed);
            m.array.install_fault_plan(plan);
        }
    }

    /// Advances every macro's fault clock by `dt` seconds (conductance
    /// drift), invalidating their snapshot caches.
    pub fn advance_fault_time(&mut self, dt: f64) {
        for m in &mut self.macros {
            m.array.advance_fault_time(dt);
        }
    }

    /// Removes all installed fault plans.
    pub fn clear_faults(&mut self) {
        for m in &mut self.macros {
            m.array.clear_fault_plan();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::lu;
    use gramc_linalg::random::seeded_rng;

    fn ideal_group(n_macros: usize, n: usize, seed: u64) -> MacroGroup {
        MacroGroup::new(n_macros, MacroConfig::small_ideal(n), seed)
    }

    #[test]
    fn load_and_info() {
        let mut g = ideal_group(2, 8, 1);
        let a = Matrix::from_fn(4, 4, |i, j| ((i + j) as f64).sin());
        let op = g.load_matrix(&a).unwrap();
        let info = g.operator_info(op).unwrap();
        assert_eq!((info.rows, info.cols, info.planes), (4, 4, 2));
        // 8-bit ideal quantization: tight.
        assert!((&info.quantized - &a).max_abs() <= info.scale * 0.5 + 1e-12);
    }

    #[test]
    fn planes_pack_into_one_macro_when_they_fit() {
        let mut g = ideal_group(2, 8, 2);
        let a = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f64 / 31.0 - 0.5);
        let _op = g.load_matrix(&a).unwrap();
        // 2 planes × 4 cols fit side by side in one 8-col macro.
        assert_eq!(g.free_macros(), 1);
    }

    #[test]
    fn wide_matrix_claims_two_macros() {
        let mut g = ideal_group(3, 8, 3);
        let a = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64).cos());
        let _op = g.load_matrix(&a).unwrap();
        assert_eq!(g.free_macros(), 1);
    }

    #[test]
    fn capacity_is_enforced_and_freed() {
        // One 8-column macro: an 8x4 differential operator (2 planes x 4
        // cols) packs into it exactly once.
        let mut g = ideal_group(1, 8, 4);
        let a = Matrix::from_fn(8, 4, |i, j| (1 + i + j) as f64);
        let op1 = g.load_matrix(&a).unwrap();
        assert!(matches!(g.load_matrix(&a), Err(CoreError::OutOfCapacity { .. })));
        g.free_operator(op1).unwrap();
        assert!(g.load_matrix(&a).is_ok());
        assert!(matches!(g.free_operator(op1), Err(CoreError::InvalidOperator)));
    }

    #[test]
    fn mvm_matches_digital_reference_when_ideal() {
        let mut g = ideal_group(2, 6, 5);
        let mut rng = seeded_rng(50);
        let a = random::gaussian_matrix(&mut rng, 6, 6);
        let op = g.load_matrix(&a).unwrap();
        let x = random::normal_vector(&mut rng, 6);
        let y = g.mvm(op, &x).unwrap();
        let y_ref = g.operator_info(op).unwrap().quantized.matvec(&x);
        let err = vector::rel_error(&y, &y_ref);
        assert!(err < 0.01, "ideal MVM error {err}");
    }

    #[test]
    fn mvm_fast_path_matches_mna() {
        let mut g = MacroGroup::new(
            2,
            MacroConfig {
                nonideal: NonidealityConfig {
                    read_noise_rel: 0.0, // MNA path has no read noise
                    opamp_offset_sigma: 0.0,
                    ..NonidealityConfig::paper_default()
                },
                ..MacroConfig::small(5)
            },
            6,
        );
        let mut rng = seeded_rng(51);
        let a = random::gaussian_matrix(&mut rng, 5, 5);
        let op = g.load_matrix(&a).unwrap();
        let x = random::normal_vector(&mut rng, 5);
        let fast = g.mvm(op, &x).unwrap();
        let mna = g.mvm_mna(op, &x).unwrap();
        let err = vector::rel_error(&fast, &mna);
        // Fast path adds DAC/ADC quantization, MNA path adds finite gain:
        // they agree to converter resolution.
        assert!(err < 0.02, "fast {fast:?} vs mna {mna:?} (err {err})");
    }

    #[test]
    fn solve_inv_recovers_solution() {
        let mut g = ideal_group(2, 6, 7);
        let mut rng = seeded_rng(52);
        let a = random::spd_with_condition(&mut rng, 6, 5.0);
        let b = random::normal_vector(&mut rng, 6);
        let op = g.load_matrix(&a).unwrap();
        let x = g.solve_inv(op, &b).unwrap();
        let quantized = g.operator_info(op).unwrap().quantized.clone();
        let x_ref = lu::solve(&quantized, &b).unwrap();
        let err = vector::rel_error(&x, &x_ref);
        assert!(err < 0.02, "INV error {err}: {x:?} vs {x_ref:?}");
    }

    #[test]
    fn solve_pinv_recovers_least_squares() {
        let mut g = ideal_group(2, 8, 8);
        let mut rng = seeded_rng(53);
        let a = random::gaussian_matrix(&mut rng, 8, 3);
        let b = random::normal_vector(&mut rng, 8);
        let op = g.load_matrix(&a).unwrap();
        let x = g.solve_pinv(op, &b).unwrap();
        let quantized = g.operator_info(op).unwrap().quantized.clone();
        let x_ref = gramc_linalg::pseudoinverse(&quantized).unwrap().matvec(&b);
        let err = vector::rel_error(&x, &x_ref);
        assert!(err < 0.03, "PINV error {err}: {x:?} vs {x_ref:?}");
    }

    #[test]
    fn solve_egv_finds_dominant_eigenvector() {
        let mut g = ideal_group(2, 8, 9);
        let mut rng = seeded_rng(54);
        let a = random::gram(&mut rng, 8, 16);
        let op = g.load_matrix(&a).unwrap();
        let sol = g.solve_egv(op).unwrap();
        let quantized = g.operator_info(op).unwrap().quantized.clone();
        // Reference from the digital eigensolver on the (symmetrized)
        // quantized matrix — quantization can break exact symmetry.
        let q_sym = Matrix::from_fn(8, 8, |i, j| 0.5 * (quantized[(i, j)] + quantized[(j, i)]));
        let eig = gramc_linalg::SymmetricEigen::new(&q_sym).unwrap();
        let err = vector::rel_error_up_to_sign(&sol.eigenvector, &eig.eigenvector(0));
        assert!(err < 0.12, "EGV error {err}");
        assert!((sol.eigenvalue - eig.eigenvalues[0]).abs() / eig.eigenvalues[0] < 0.1);
    }

    #[test]
    fn shape_validation() {
        let mut g = ideal_group(2, 6, 10);
        let a = Matrix::from_fn(4, 4, |i, j| (1 + i * 4 + j) as f64);
        let op = g.load_matrix(&a).unwrap();
        assert!(matches!(g.mvm(op, &[1.0; 3]), Err(CoreError::ShapeMismatch { .. })));
        assert!(matches!(g.solve_inv(op, &[1.0; 5]), Err(CoreError::ShapeMismatch { .. })));
        let tall = Matrix::from_fn(6, 2, |i, j| (1 + i + j) as f64);
        let g2 = &mut ideal_group(2, 6, 11);
        let op_tall = g2.load_matrix(&tall).unwrap();
        assert!(matches!(g2.solve_inv(op_tall, &[1.0; 6]), Err(CoreError::InvalidArgument(_))));
        assert!(matches!(g2.solve_egv(op_tall), Err(CoreError::InvalidArgument(_))));
    }

    #[test]
    fn bitsliced_mvm_beats_4bit_accuracy() {
        let mut rng = seeded_rng(55);
        let a = random::gaussian_matrix(&mut rng, 6, 6);
        let x = random::normal_vector(&mut rng, 6);
        let y_true = a.matvec(&x);

        // 4-bit differential.
        let cfg4 = MacroConfig {
            nonideal: NonidealityConfig::quantization_only(4),
            ..MacroConfig::small(6)
        };
        let mut g4 = MacroGroup::new(2, cfg4, 12);
        let op4 = g4.load_matrix(&a).unwrap();
        let y4 = g4.mvm(op4, &x).unwrap();

        // 8-bit bit-sliced on 4-bit cells.
        let cfg8 = MacroConfig {
            nonideal: NonidealityConfig::quantization_only(4),
            ..MacroConfig::small(6)
        };
        let mut g8 = MacroGroup::new(4, cfg8, 12);
        let op8 = g8.load_matrix_bitsliced(&a).unwrap();
        let y8 = g8.mvm(op8, &x).unwrap();

        let e4 = vector::rel_error(&y4, &y_true);
        let e8 = vector::rel_error(&y8, &y_true);
        assert!(e8 < e4, "bit-sliced {e8} should beat 4-bit {e4}");
    }

    #[test]
    fn paper_default_mvm_error_is_in_band() {
        // With all paper non-idealities on, MVM relative error lands in the
        // few-percent-to-~15 % band of Fig. 4.
        let mut g = MacroGroup::new(2, MacroConfig::small(16), 13);
        let mut rng = seeded_rng(56);
        let a = random::wishart(&mut rng, 16, 32);
        let op = g.load_matrix(&a).unwrap();
        let x = random::normal_vector(&mut rng, 16);
        let y = g.mvm(op, &x).unwrap();
        let y_ref = a.matvec(&x);
        let err = vector::rel_error(&y, &y_ref);
        assert!(err > 0.001, "suspiciously perfect: {err}");
        assert!(err < 0.25, "error out of band: {err}");
    }

    #[test]
    fn solve_inv_batch_matches_per_column_solves() {
        let mut g = ideal_group(2, 6, 15);
        let mut rng = seeded_rng(57);
        let a = random::spd_with_condition(&mut rng, 6, 5.0);
        let op = g.load_matrix(&a).unwrap();
        let bs: Vec<Vec<f64>> = (0..4).map(|_| random::normal_vector(&mut rng, 6)).collect();
        let batch = g.solve_inv_batch(op, &bs).unwrap();
        assert_eq!(batch.len(), 4);
        // Ideal config: no read noise, so the shared conductance read equals
        // the per-call reads and the results must agree to rounding.
        for (b, x) in bs.iter().zip(&batch) {
            let x_ref = g.solve_inv(op, b).unwrap();
            assert!(vector::rel_error(x, &x_ref) < 1e-10, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn solve_inv_batch_handles_zero_columns_and_shapes() {
        let mut g = ideal_group(2, 4, 16);
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { 2.0 } else { 0.25 });
        let op = g.load_matrix(&a).unwrap();
        let bs = vec![vec![0.0; 4], vec![1.0, -0.5, 0.25, 0.75]];
        let xs = g.solve_inv_batch(op, &bs).unwrap();
        assert_eq!(xs[0], vec![0.0; 4]);
        let x_ref = g.solve_inv(op, &bs[1]).unwrap();
        assert!(vector::rel_error(&xs[1], &x_ref) < 1e-10);
        assert!(g.solve_inv_batch(op, &[vec![1.0; 3]]).is_err());
        assert!(g.solve_inv_batch(op, &[]).unwrap().is_empty());
    }

    #[test]
    fn solve_pinv_batch_matches_per_column_solves() {
        let mut g = ideal_group(2, 8, 18);
        let mut rng = seeded_rng(59);
        let a = random::gaussian_matrix(&mut rng, 8, 3);
        let op = g.load_matrix(&a).unwrap();
        let bs: Vec<Vec<f64>> = (0..4).map(|_| random::normal_vector(&mut rng, 8)).collect();
        let batch = g.solve_pinv_batch(op, &bs).unwrap();
        assert_eq!(batch.len(), 4);
        // Ideal config: no read noise, so the shared conductance read equals
        // the per-call reads and the results must agree to rounding.
        for (b, x) in bs.iter().zip(&batch) {
            assert_eq!(x.len(), 3);
            let x_ref = g.solve_pinv(op, b).unwrap();
            assert!(vector::rel_error(x, &x_ref) < 1e-10, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn solve_pinv_batch_handles_zero_columns_and_shapes() {
        let mut g = ideal_group(2, 6, 19);
        let mut rng = seeded_rng(60);
        let a = random::gaussian_matrix(&mut rng, 6, 2);
        let op = g.load_matrix(&a).unwrap();
        let bs = vec![vec![0.0; 6], random::normal_vector(&mut rng, 6)];
        let xs = g.solve_pinv_batch(op, &bs).unwrap();
        assert_eq!(xs[0], vec![0.0; 2]);
        let x_ref = g.solve_pinv(op, &bs[1]).unwrap();
        assert!(vector::rel_error(&xs[1], &x_ref) < 1e-10);
        assert!(g.solve_pinv_batch(op, &[vec![1.0; 3]]).is_err());
        assert!(g.solve_pinv_batch(op, &[]).unwrap().is_empty());
    }

    #[test]
    fn mvm_batch_gt_cache_is_hit_and_invalidated() {
        let mut g = ideal_group(4, 6, 17);
        let mut rng = seeded_rng(58);
        let a = random::gaussian_matrix(&mut rng, 6, 6);
        let op = g.load_matrix(&a).unwrap();
        let xs: Vec<Vec<f64>> = (0..3).map(|_| random::normal_vector(&mut rng, 6)).collect();
        // First call builds the snapshot, second call serves it — results
        // must be identical (the read is deterministic without read noise).
        let y1 = g.mvm_batch(op, &xs).unwrap();
        let y2 = g.mvm_batch(op, &xs).unwrap();
        assert_eq!(y1, y2);
        // Reprogramming the macros (free + reload of a different matrix)
        // bumps the array generations; a stale snapshot must not survive.
        g.free_operator(op).unwrap();
        let b = random::gaussian_matrix(&mut rng, 6, 6);
        let op2 = g.load_matrix(&b).unwrap();
        let y3 = g.mvm_batch(op2, &xs).unwrap();
        let quantized = g.operator_info(op2).unwrap().quantized.clone();
        for (x, y) in xs.iter().zip(&y3) {
            let y_ref = quantized.matvec(x);
            assert!(vector::rel_error(y, &y_ref) < 0.01, "{y:?} vs {y_ref:?}");
        }
    }

    #[test]
    fn mvm_batch_rows_matches_vec_batch_and_is_thread_count_invariant() {
        // The Matrix-batch entry point is the implementation the Vec-batch
        // wrapper delegates to, and its per-plane map_collect fan-out must
        // not change results with the thread budget — including on a
        // 4-plane bit-sliced operator where the plane loop actually fans
        // out. Noise-free config keeps every call deterministic; bit
        // slicing needs 4-bit cells, so use the quantization-only config.
        let cfg = MacroConfig {
            nonideal: NonidealityConfig::quantization_only(4),
            ..MacroConfig::small(6)
        };
        let mut g = MacroGroup::new(4, cfg, 91);
        let mut rng = seeded_rng(92);
        let a = random::gaussian_matrix(&mut rng, 6, 6);
        let op = g.load_matrix_bitsliced(&a).unwrap();
        let xs: Vec<Vec<f64>> = (0..5).map(|_| random::normal_vector(&mut rng, 6)).collect();
        let mut m = Matrix::zeros(5, 6);
        for (b, x) in xs.iter().enumerate() {
            m.row_mut(b).copy_from_slice(x);
        }
        let via_vecs = g.mvm_batch(op, &xs).unwrap();
        let via_rows = g.mvm_batch_rows(op, &m).unwrap();
        let serial_planes =
            gramc_linalg::parallel::with_thread_cap(1, || g.mvm_batch_rows(op, &m)).unwrap();
        for (b, y) in via_vecs.iter().enumerate() {
            for (j, v) in y.iter().enumerate() {
                assert_eq!(v.to_bits(), via_rows[(b, j)].to_bits());
                assert_eq!(v.to_bits(), serial_planes[(b, j)].to_bits());
            }
        }
    }

    #[test]
    fn mode_configuration_tracks_operations() {
        let mut g = ideal_group(2, 4, 14);
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { 2.0 } else { 0.3 / (1.0 + j as f64) });
        let op = g.load_matrix(&a).unwrap();
        g.mvm(op, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(g.macro_at(0).unwrap().mode(), MacroMode::Mvm);
        g.solve_inv(op, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(g.macro_at(0).unwrap().mode(), MacroMode::Inv);
    }
}
