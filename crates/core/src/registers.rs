//! The register array and transmission-gate configuration (paper Fig. 2:
//! "The configuration messages are stored in the register array in advance
//! and will control the transmission gates (on or off), thus configuring the
//! connections between memory and OPAs").

use std::fmt;

/// The four computing configurations of an AMC macro, plus idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacroMode {
    /// No computation configured; drivers disconnected.
    #[default]
    Idle,
    /// Matrix-vector multiplication (open loop, TIA read-out).
    Mvm,
    /// Linear-system solve `Ax = b` (crossbar feedback).
    Inv,
    /// Least-squares solve `x = A⁺b` (two-array cascade).
    Pinv,
    /// Dominant eigenvector (eigenvalue feedback conductance).
    Egv,
}

impl MacroMode {
    /// Opcode used in the register encoding and the ISA.
    pub fn opcode(&self) -> u8 {
        match self {
            MacroMode::Idle => 0,
            MacroMode::Mvm => 1,
            MacroMode::Inv => 2,
            MacroMode::Pinv => 3,
            MacroMode::Egv => 4,
        }
    }

    /// Inverse of [`opcode`](Self::opcode).
    pub fn from_opcode(op: u8) -> Option<Self> {
        match op {
            0 => Some(MacroMode::Idle),
            1 => Some(MacroMode::Mvm),
            2 => Some(MacroMode::Inv),
            3 => Some(MacroMode::Pinv),
            4 => Some(MacroMode::Egv),
            _ => None,
        }
    }
}

impl fmt::Display for MacroMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MacroMode::Idle => "IDLE",
            MacroMode::Mvm => "MVM",
            MacroMode::Inv => "INV",
            MacroMode::Pinv => "PINV",
            MacroMode::Egv => "EGV",
        };
        f.write_str(s)
    }
}

/// Per-op-amp role selected by the transmission gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpampRole {
    /// Disconnected.
    #[default]
    Off,
    /// Transimpedance amplifier (feedback conductance to its row).
    Tia,
    /// Unity-gain analog inverter.
    Inverter,
    /// High-gain sense amplifier (PINV stage 2).
    Sense,
}

/// The transmission-gate configuration derived from a [`MacroMode`] for a
/// bank of `n` op-amps on an `n`-row array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateConfiguration {
    /// Role of each op-amp in the bank (`2n` entries: `n` row amps then `n`
    /// auxiliary amps usable as inverters).
    pub roles: Vec<OpampRole>,
    /// Whether each column's output-feedback gate is closed (INV/EGV wire
    /// op-amp outputs back into the array columns).
    pub column_feedback: Vec<bool>,
    /// Whether the input DAC drivers are connected to the columns (MVM) or
    /// converted to row current injection (INV/PINV).
    pub dac_to_columns: bool,
}

/// The register array: raw configuration words plus the decoded gate state.
///
/// # Examples
///
/// ```
/// use gramc_core::{RegisterArray, MacroMode};
///
/// let mut regs = RegisterArray::new(4);
/// regs.configure(MacroMode::Inv);
/// assert_eq!(regs.mode(), MacroMode::Inv);
/// assert!(regs.gates().column_feedback.iter().all(|&g| g));
/// let words = regs.words().to_vec();
/// let decoded = RegisterArray::from_words(4, &words).unwrap();
/// assert_eq!(decoded.mode(), MacroMode::Inv);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterArray {
    n: usize,
    mode: MacroMode,
}

impl RegisterArray {
    /// Creates the register array for an `n`-row macro, initially idle.
    pub fn new(n: usize) -> Self {
        Self { n, mode: MacroMode::Idle }
    }

    /// Currently configured mode.
    pub fn mode(&self) -> MacroMode {
        self.mode
    }

    /// Row count this register bank serves.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Stores a new configuration (the paper's "register configuration"
    /// pipeline stage).
    pub fn configure(&mut self, mode: MacroMode) {
        self.mode = mode;
    }

    /// Decodes the transmission-gate pattern for the current mode.
    pub fn gates(&self) -> GateConfiguration {
        let n = self.n;
        let mut roles = vec![OpampRole::Off; 2 * n];
        let (column_feedback, dac_to_columns) = match self.mode {
            MacroMode::Idle => (vec![false; n], false),
            MacroMode::Mvm => {
                for r in roles.iter_mut().take(n) {
                    *r = OpampRole::Tia;
                }
                for r in roles.iter_mut().skip(n) {
                    *r = OpampRole::Inverter;
                }
                (vec![false; n], true)
            }
            MacroMode::Inv => {
                for r in roles.iter_mut().take(n) {
                    *r = OpampRole::Sense;
                }
                for r in roles.iter_mut().skip(n) {
                    *r = OpampRole::Inverter;
                }
                (vec![true; n], false)
            }
            MacroMode::Pinv => {
                for r in roles.iter_mut().take(n) {
                    *r = OpampRole::Tia;
                }
                for r in roles.iter_mut().skip(n) {
                    *r = OpampRole::Sense;
                }
                (vec![true; n], false)
            }
            MacroMode::Egv => {
                for r in roles.iter_mut().take(n) {
                    *r = OpampRole::Tia;
                }
                for r in roles.iter_mut().skip(n) {
                    *r = OpampRole::Inverter;
                }
                (vec![true; n], false)
            }
        };
        GateConfiguration { roles, column_feedback, dac_to_columns }
    }

    /// Serializes the configuration to register words (1 mode word; gate
    /// state is derived, exactly as a decoder PLA would).
    pub fn words(&self) -> Vec<u32> {
        vec![u32::from(self.mode.opcode()) | ((self.n as u32) << 8)]
    }

    /// Reconstructs a register array from its words.
    ///
    /// Returns `None` for malformed words or mismatched row counts.
    pub fn from_words(n: usize, words: &[u32]) -> Option<Self> {
        let w = *words.first()?;
        if (w >> 8) as usize != n {
            return None;
        }
        let mode = MacroMode::from_opcode((w & 0xFF) as u8)?;
        Some(Self { n, mode })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for m in [MacroMode::Idle, MacroMode::Mvm, MacroMode::Inv, MacroMode::Pinv, MacroMode::Egv]
        {
            assert_eq!(MacroMode::from_opcode(m.opcode()), Some(m));
        }
        assert_eq!(MacroMode::from_opcode(99), None);
    }

    #[test]
    fn idle_disconnects_everything() {
        let regs = RegisterArray::new(8);
        let g = regs.gates();
        assert!(g.roles.iter().all(|&r| r == OpampRole::Off));
        assert!(g.column_feedback.iter().all(|&f| !f));
        assert!(!g.dac_to_columns);
    }

    #[test]
    fn mvm_uses_tias_and_open_loop() {
        let mut regs = RegisterArray::new(4);
        regs.configure(MacroMode::Mvm);
        let g = regs.gates();
        assert_eq!(g.roles[0], OpampRole::Tia);
        assert_eq!(g.roles[4], OpampRole::Inverter);
        assert!(g.dac_to_columns);
        assert!(g.column_feedback.iter().all(|&f| !f));
    }

    #[test]
    fn feedback_modes_close_column_gates() {
        for m in [MacroMode::Inv, MacroMode::Pinv, MacroMode::Egv] {
            let mut regs = RegisterArray::new(4);
            regs.configure(m);
            let g = regs.gates();
            assert!(g.column_feedback.iter().all(|&f| f), "{m}");
            assert!(!g.dac_to_columns, "{m}");
        }
    }

    #[test]
    fn word_serialization_roundtrips() {
        for m in [MacroMode::Mvm, MacroMode::Egv] {
            let mut regs = RegisterArray::new(128);
            regs.configure(m);
            let words = regs.words();
            let back = RegisterArray::from_words(128, &words).unwrap();
            assert_eq!(back, regs);
        }
        assert!(RegisterArray::from_words(64, &RegisterArray::new(128).words()).is_none());
        assert!(RegisterArray::from_words(4, &[4 | (4 << 8)]).is_some());
        assert!(RegisterArray::from_words(4, &[9 | (4 << 8)]).is_none());
    }

    #[test]
    fn reconfiguration_is_idempotent() {
        let mut regs = RegisterArray::new(4);
        regs.configure(MacroMode::Pinv);
        let g1 = regs.gates();
        regs.configure(MacroMode::Pinv);
        assert_eq!(regs.gates(), g1);
    }
}
