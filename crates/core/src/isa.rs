//! The GRAMC instruction set.
//!
//! Paper Fig. 3: "The instructions from compiling stage will be loaded into
//! the instruction stack in advance. Then, the instructions will be decoded
//! to control the two data paths: write-verify path and system solution
//! path." This module defines those instructions and their fixed-width
//! binary encoding (four 32-bit words), which the system's decoder
//! round-trips.

use crate::functional::{Activation, Pooling};
use crate::registers::MacroMode;

/// Memory space selector for a [`BufferRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemSpace {
    /// The global buffer (inputs, matrix data, staged results).
    #[default]
    Global,
    /// The output buffer (ADC captures, functional-module results).
    Output,
}

/// A reference to a contiguous run of words in one of the two buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferRef {
    /// Word address.
    pub addr: u32,
    /// Run length in words.
    pub len: u32,
    /// Which buffer.
    pub space: MemSpace,
}

impl BufferRef {
    /// A reference into the global buffer.
    pub fn global(addr: u32, len: u32) -> Self {
        Self { addr, len, space: MemSpace::Global }
    }

    /// A reference into the output buffer.
    pub fn output(addr: u32, len: u32) -> Self {
        Self { addr, len, space: MemSpace::Output }
    }
}

/// One GRAMC instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Do nothing.
    Nop,
    /// Stop the controller.
    Halt,
    /// Write the mode into a macro's register array (Fig. 3 step
    /// "Register Configuration").
    Configure {
        /// Target macro.
        macro_id: u8,
        /// Mode to configure.
        mode: MacroMode,
    },
    /// Run the write-verify path: load `rows × cols` matrix words from
    /// `src` and program them into operator slot `slot` (differential
    /// 4-bit planes).
    LoadMatrix {
        /// Operator slot to fill.
        slot: u8,
        /// Matrix rows.
        rows: u16,
        /// Matrix columns.
        cols: u16,
        /// Row-major matrix data in the global buffer.
        src: BufferRef,
    },
    /// Like [`Instruction::LoadMatrix`] but with 8-bit bit-sliced planes.
    LoadMatrixSliced {
        /// Operator slot to fill.
        slot: u8,
        /// Matrix rows.
        rows: u16,
        /// Matrix columns.
        cols: u16,
        /// Row-major matrix data in the global buffer.
        src: BufferRef,
    },
    /// Release an operator slot's macros.
    FreeMatrix {
        /// Operator slot to release.
        slot: u8,
    },
    /// Analog MVM: `dst ← A[slot]·src`.
    Mvm {
        /// Operator slot.
        slot: u8,
        /// Input vector.
        src: BufferRef,
        /// Result destination.
        dst: BufferRef,
    },
    /// Batched analog MVM: `src` holds `batch` input vectors back to back
    /// (`src.len / batch` words each) and `dst` receives the `batch` result
    /// vectors back to back. One instruction dispatches the whole batch to
    /// the macro group's batched fast path
    /// ([`MacroGroup::mvm_batch`](crate::MacroGroup::mvm_batch)): the
    /// conductances are read once and shared, which is how a layer of
    /// im2col columns executes as a single analog operation.
    ///
    /// The binary encoding packs `src.len` and `dst.len` into 16-bit
    /// fields (like [`Instruction::Mvm`]), so each concatenated run is
    /// limited to 65535 words; `compiler::compile` rejects larger batches
    /// — split them across several `MvmBatch` ops.
    MvmBatch {
        /// Operator slot.
        slot: u8,
        /// Number of input vectors packed in `src`.
        batch: u16,
        /// Concatenated input vectors.
        src: BufferRef,
        /// Concatenated result destination.
        dst: BufferRef,
    },
    /// Analog linear-system solve: `dst ← A[slot]⁻¹·src`.
    SolveInv {
        /// Operator slot.
        slot: u8,
        /// Right-hand side.
        src: BufferRef,
        /// Result destination.
        dst: BufferRef,
    },
    /// Analog least-squares solve: `dst ← A[slot]⁺·src`.
    SolvePinv {
        /// Operator slot.
        slot: u8,
        /// Right-hand side.
        src: BufferRef,
        /// Result destination.
        dst: BufferRef,
    },
    /// Analog dominant-eigenvector solve: `dst ← egv(A[slot])`.
    SolveEgv {
        /// Operator slot.
        slot: u8,
        /// Result destination (eigenvector).
        dst: BufferRef,
    },
    /// Digital pooling over a single-channel `h × w` map.
    Pool {
        /// Reduction kind.
        kind: Pooling,
        /// Map height.
        h: u16,
        /// Map width.
        w: u16,
        /// Window (stride = window).
        window: u8,
        /// Input map.
        src: BufferRef,
        /// Output map (length `(h/window)·(w/window)`).
        dst: BufferRef,
    },
    /// Digital activation applied element-wise.
    Activate {
        /// Activation kind.
        kind: Activation,
        /// Input.
        src: BufferRef,
        /// Output (same length).
        dst: BufferRef,
    },
    /// Digital softmax.
    Softmax {
        /// Input.
        src: BufferRef,
        /// Output (same length).
        dst: BufferRef,
    },
    /// Copy words between buffers.
    Copy {
        /// Source.
        src: BufferRef,
        /// Destination (same length).
        dst: BufferRef,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Target instruction index.
        target: u16,
    },
    /// Comparison-unit branch: if `buffer[a] < buffer[b]`, jump to `target`
    /// (the CU of Fig. 3's write-verify path).
    BranchIfLess {
        /// Left operand (single word).
        a: BufferRef,
        /// Right operand (single word).
        b: BufferRef,
        /// Target instruction index.
        target: u16,
    },
    /// Decrement the counter word at `counter`; jump to `target` while it
    /// remains positive.
    LoopDec {
        /// Counter word (global buffer).
        counter: u32,
        /// Target instruction index.
        target: u16,
    },
}

fn space_bit(s: MemSpace) -> u32 {
    match s {
        MemSpace::Global => 0,
        MemSpace::Output => 1,
    }
}

fn space_from_bit(b: u32) -> MemSpace {
    if b & 1 == 0 {
        MemSpace::Global
    } else {
        MemSpace::Output
    }
}

fn pack_ref(r: BufferRef) -> (u32, u32) {
    // 31 bits of address + 1 space bit; full 32-bit length.
    ((r.addr << 1) | space_bit(r.space), r.len)
}

fn unpack_ref(w_addr: u32, w_len: u32) -> BufferRef {
    BufferRef { addr: w_addr >> 1, len: w_len, space: space_from_bit(w_addr) }
}

fn pooling_code(k: Pooling) -> u32 {
    match k {
        Pooling::Max => 0,
        Pooling::Average => 1,
    }
}

fn pooling_from(code: u32) -> Option<Pooling> {
    match code {
        0 => Some(Pooling::Max),
        1 => Some(Pooling::Average),
        _ => None,
    }
}

fn activation_code(k: Activation) -> u32 {
    match k {
        Activation::Relu => 0,
        Activation::Sigmoid => 1,
        Activation::Tanh => 2,
        Activation::Identity => 3,
    }
}

fn activation_from(code: u32) -> Option<Activation> {
    match code {
        0 => Some(Activation::Relu),
        1 => Some(Activation::Sigmoid),
        2 => Some(Activation::Tanh),
        3 => Some(Activation::Identity),
        _ => None,
    }
}

impl Instruction {
    /// Encodes the instruction into four 32-bit words.
    pub fn encode(&self) -> [u32; 4] {
        match *self {
            Instruction::Nop => [0, 0, 0, 0],
            Instruction::Halt => [1, 0, 0, 0],
            Instruction::Configure { macro_id, mode } => {
                [2 | (u32::from(macro_id) << 8) | (u32::from(mode.opcode()) << 16), 0, 0, 0]
            }
            Instruction::LoadMatrix { slot, rows, cols, src } => {
                let (a, l) = pack_ref(src);
                [3 | (u32::from(slot) << 8), (u32::from(rows) << 16) | u32::from(cols), a, l]
            }
            Instruction::LoadMatrixSliced { slot, rows, cols, src } => {
                let (a, l) = pack_ref(src);
                [4 | (u32::from(slot) << 8), (u32::from(rows) << 16) | u32::from(cols), a, l]
            }
            Instruction::FreeMatrix { slot } => [5 | (u32::from(slot) << 8), 0, 0, 0],
            Instruction::Mvm { slot, src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, dl) = pack_ref(dst);
                debug_assert!(sl < 1 << 16 && dl < 1 << 16, "vector too long for packed encoding");
                [6 | (u32::from(slot) << 8), (sl << 16) | dl, sa, da]
            }
            Instruction::SolveInv { slot, src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, dl) = pack_ref(dst);
                [7 | (u32::from(slot) << 8), (sl << 16) | dl, sa, da]
            }
            Instruction::SolvePinv { slot, src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, dl) = pack_ref(dst);
                [8 | (u32::from(slot) << 8), (sl << 16) | dl, sa, da]
            }
            Instruction::SolveEgv { slot, dst } => {
                let (da, dl) = pack_ref(dst);
                [9 | (u32::from(slot) << 8), dl, 0, da]
            }
            Instruction::Pool { kind, h, w, window, src, dst } => {
                let (sa, _) = pack_ref(src);
                let (da, _) = pack_ref(dst);
                [
                    10 | (pooling_code(kind) << 8) | (u32::from(window) << 16),
                    (u32::from(h) << 16) | u32::from(w),
                    sa,
                    da,
                ]
            }
            Instruction::Activate { kind, src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, _) = pack_ref(dst);
                [11 | (activation_code(kind) << 8), sl, sa, da]
            }
            Instruction::Softmax { src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, _) = pack_ref(dst);
                [12, sl, sa, da]
            }
            Instruction::Copy { src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, _) = pack_ref(dst);
                [13, sl, sa, da]
            }
            Instruction::Jump { target } => [14 | (u32::from(target) << 16), 0, 0, 0],
            Instruction::BranchIfLess { a, b, target } => {
                let (aa, _) = pack_ref(a);
                let (ba, _) = pack_ref(b);
                [15 | (u32::from(target) << 16), 0, aa, ba]
            }
            Instruction::LoopDec { counter, target } => {
                [16 | (u32::from(target) << 16), 0, counter, 0]
            }
            Instruction::MvmBatch { slot, batch, src, dst } => {
                let (sa, sl) = pack_ref(src);
                let (da, dl) = pack_ref(dst);
                debug_assert!(sl < 1 << 16 && dl < 1 << 16, "batch too long for packed encoding");
                [17 | (u32::from(slot) << 8) | (u32::from(batch) << 16), (sl << 16) | dl, sa, da]
            }
        }
    }

    /// Decodes four words back into an instruction.
    ///
    /// Returns `None` for malformed encodings (unknown opcode or field).
    pub fn decode(words: [u32; 4]) -> Option<Self> {
        let op = words[0] & 0xFF;
        match op {
            0 => Some(Instruction::Nop),
            1 => Some(Instruction::Halt),
            2 => {
                let macro_id = ((words[0] >> 8) & 0xFF) as u8;
                let mode = MacroMode::from_opcode(((words[0] >> 16) & 0xFF) as u8)?;
                Some(Instruction::Configure { macro_id, mode })
            }
            3 | 4 => {
                let slot = ((words[0] >> 8) & 0xFF) as u8;
                let rows = (words[1] >> 16) as u16;
                let cols = (words[1] & 0xFFFF) as u16;
                let src = unpack_ref(words[2], words[3]);
                if op == 3 {
                    Some(Instruction::LoadMatrix { slot, rows, cols, src })
                } else {
                    Some(Instruction::LoadMatrixSliced { slot, rows, cols, src })
                }
            }
            5 => Some(Instruction::FreeMatrix { slot: ((words[0] >> 8) & 0xFF) as u8 }),
            6..=8 => {
                let slot = ((words[0] >> 8) & 0xFF) as u8;
                let sl = words[1] >> 16;
                let dl = words[1] & 0xFFFF;
                let src = unpack_ref(words[2], sl);
                let dst = unpack_ref(words[3], dl);
                match op {
                    6 => Some(Instruction::Mvm { slot, src, dst }),
                    7 => Some(Instruction::SolveInv { slot, src, dst }),
                    _ => Some(Instruction::SolvePinv { slot, src, dst }),
                }
            }
            9 => {
                let slot = ((words[0] >> 8) & 0xFF) as u8;
                let dst = unpack_ref(words[3], words[1]);
                Some(Instruction::SolveEgv { slot, dst })
            }
            10 => {
                let kind = pooling_from((words[0] >> 8) & 0xFF)?;
                let window = ((words[0] >> 16) & 0xFF) as u8;
                let h = (words[1] >> 16) as u16;
                let w = (words[1] & 0xFFFF) as u16;
                let src_len = u32::from(h) * u32::from(w);
                let win = u32::from(window).max(1);
                let dst_len = (u32::from(h) / win) * (u32::from(w) / win);
                let src = unpack_ref(words[2], src_len);
                let dst = unpack_ref(words[3], dst_len);
                Some(Instruction::Pool { kind, h, w, window, src, dst })
            }
            11 => {
                let kind = activation_from((words[0] >> 8) & 0xFF)?;
                let src = unpack_ref(words[2], words[1]);
                let dst = unpack_ref(words[3], words[1]);
                Some(Instruction::Activate { kind, src, dst })
            }
            12 => {
                let src = unpack_ref(words[2], words[1]);
                let dst = unpack_ref(words[3], words[1]);
                Some(Instruction::Softmax { src, dst })
            }
            13 => {
                let src = unpack_ref(words[2], words[1]);
                let dst = unpack_ref(words[3], words[1]);
                Some(Instruction::Copy { src, dst })
            }
            14 => Some(Instruction::Jump { target: (words[0] >> 16) as u16 }),
            15 => {
                let a = unpack_ref(words[2], 1);
                let b = unpack_ref(words[3], 1);
                Some(Instruction::BranchIfLess { a, b, target: (words[0] >> 16) as u16 })
            }
            16 => Some(Instruction::LoopDec { counter: words[2], target: (words[0] >> 16) as u16 }),
            17 => {
                let slot = ((words[0] >> 8) & 0xFF) as u8;
                let batch = (words[0] >> 16) as u16;
                let sl = words[1] >> 16;
                let dl = words[1] & 0xFFFF;
                let src = unpack_ref(words[2], sl);
                let dst = unpack_ref(words[3], dl);
                Some(Instruction::MvmBatch { slot, batch, src, dst })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        let enc = i.encode();
        let dec = Instruction::decode(enc).expect("decodable");
        assert_eq!(dec, i, "encoding {enc:?}");
    }

    #[test]
    fn all_instructions_roundtrip() {
        roundtrip(Instruction::Nop);
        roundtrip(Instruction::Halt);
        roundtrip(Instruction::Configure { macro_id: 7, mode: MacroMode::Pinv });
        roundtrip(Instruction::LoadMatrix {
            slot: 3,
            rows: 128,
            cols: 128,
            src: BufferRef::global(1024, 16384),
        });
        roundtrip(Instruction::LoadMatrixSliced {
            slot: 1,
            rows: 64,
            cols: 32,
            src: BufferRef::global(0, 2048),
        });
        roundtrip(Instruction::FreeMatrix { slot: 5 });
        roundtrip(Instruction::Mvm {
            slot: 2,
            src: BufferRef::global(100, 128),
            dst: BufferRef::output(0, 128),
        });
        roundtrip(Instruction::MvmBatch {
            slot: 4,
            batch: 576,
            src: BufferRef::global(2048, 14400),
            dst: BufferRef::output(0, 3456),
        });
        roundtrip(Instruction::SolveInv {
            slot: 0,
            src: BufferRef::global(7, 16),
            dst: BufferRef::output(3, 16),
        });
        roundtrip(Instruction::SolvePinv {
            slot: 0,
            src: BufferRef::global(7, 128),
            dst: BufferRef::output(3, 6),
        });
        roundtrip(Instruction::SolveEgv { slot: 9, dst: BufferRef::output(11, 128) });
        roundtrip(Instruction::Pool {
            kind: Pooling::Average,
            h: 24,
            w: 24,
            window: 2,
            src: BufferRef::output(0, 576),
            dst: BufferRef::output(576, 144),
        });
        roundtrip(Instruction::Activate {
            kind: Activation::Sigmoid,
            src: BufferRef::output(0, 10),
            dst: BufferRef::output(16, 10),
        });
        roundtrip(Instruction::Softmax {
            src: BufferRef::output(0, 10),
            dst: BufferRef::output(16, 10),
        });
        roundtrip(Instruction::Copy { src: BufferRef::output(5, 3), dst: BufferRef::global(9, 3) });
        roundtrip(Instruction::Jump { target: 42 });
        roundtrip(Instruction::BranchIfLess {
            a: BufferRef::global(1, 1),
            b: BufferRef::global(2, 1),
            target: 7,
        });
        roundtrip(Instruction::LoopDec { counter: 33, target: 2 });
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(Instruction::decode([200, 0, 0, 0]), None);
        assert_eq!(Instruction::decode([2 | (9 << 16), 0, 0, 0]), None); // bad mode
        assert_eq!(Instruction::decode([10 | (7 << 8), 0, 0, 0]), None); // bad pooling
    }

    #[test]
    fn space_bit_is_preserved() {
        let r = BufferRef::output(12345, 77);
        let (a, l) = super::pack_ref(r);
        assert_eq!(super::unpack_ref(a, l), r);
        let g = BufferRef::global(12345, 77);
        let (a2, l2) = super::pack_ref(g);
        assert_eq!(super::unpack_ref(a2, l2), g);
        assert_ne!(a, a2);
    }
}
