//! Counter-correctness of the hardware telemetry layer: a known
//! instruction sequence must produce exactly the hand-computed number of
//! DAC drives, ADC conversions, settle events, cell read cycles and write
//! pulses, attributed to the right instruction mnemonics.
//!
//! The counts below follow from the architecture, not from the
//! implementation: a differential 4-bit operator holds two conductance
//! planes, a scalar MVM drives every column DAC once and settles each
//! plane once, the batched path repeats that per driven input row, the
//! INV solve settles the feedback loop once per ranging attempt, and
//! direct programming issues one blind write pulse per cell.

#![cfg(feature = "telemetry")]

use gramc_core::isa::{BufferRef, Instruction};
use gramc_core::system::GramcSystem;
use gramc_core::{HwSnapshot, MacroConfig};

const N: usize = 8; // operator dimension
const B: usize = 3; // MvmBatch batch size

/// Builds the system, loads the fixture program and runs it to the halt.
fn run_fixture() -> GramcSystem {
    let mut sys = GramcSystem::new(2, MacroConfig::small_ideal(N), 5, 256);

    // Global buffer: A (identity, 64 words) | 3 MVM inputs | one RHS.
    let mut a = vec![0.0; N * N];
    for i in 0..N {
        a[i * N + i] = 1.0;
    }
    sys.write_global(0, &a).unwrap();
    let xs: Vec<f64> = (0..B * N).map(|k| 0.2 + 0.01 * k as f64).collect();
    sys.write_global(64, &xs).unwrap();
    let b: Vec<f64> = (0..N).map(|k| 0.1 + 0.02 * k as f64).collect();
    sys.write_global(88, &b).unwrap();

    sys.load_program(vec![
        Instruction::LoadMatrix { slot: 0, rows: 8, cols: 8, src: BufferRef::global(0, 64) },
        Instruction::MvmBatch {
            slot: 0,
            batch: 3,
            src: BufferRef::global(64, 24),
            dst: BufferRef::output(0, 24),
        },
        Instruction::Mvm { slot: 0, src: BufferRef::global(88, 8), dst: BufferRef::output(24, 8) },
        Instruction::SolveInv {
            slot: 0,
            src: BufferRef::global(88, 8),
            dst: BufferRef::output(32, 8),
        },
        Instruction::Halt,
    ]);
    sys.run(64).unwrap();
    sys
}

#[test]
fn instruction_sequence_produces_exact_counter_values() {
    let sys = run_fixture();
    let t = sys.instruction_telemetry();
    let planes = 2; // differential 4-bit mapping

    // LoadMatrix, direct programming: one blind write pulse per cell of
    // each plane, and nothing else — no converter or read activity.
    let load = &t["load_matrix"];
    assert_eq!(load.write_cycles, (planes * N * N) as u64);
    assert_eq!(load.write_pulses, (planes * N * N) as u64);
    assert_eq!(load.dac_drives, 0);
    assert_eq!(load.adc_conversions, 0);
    assert_eq!(load.settle_events, 0);
    assert_eq!(load.read_cycles_mvm + load.read_cycles_solve, 0);

    // MvmBatch of B nonzero inputs: per input, one DAC drive per column,
    // one settle per plane, one read cycle per cell of each plane, and
    // one ADC conversion per row per differential pair.
    let mvm_b = &t["mvm_batch"];
    assert_eq!(mvm_b.dac_drives, (B * N) as u64);
    assert_eq!(mvm_b.settle_events, (B * planes) as u64);
    assert_eq!(mvm_b.read_cycles_mvm, (B * planes * N * N) as u64);
    assert_eq!(mvm_b.adc_conversions, (B * N * (planes / 2)) as u64);
    assert_eq!(mvm_b.write_pulses, 0);
    assert_eq!(mvm_b.solve_settles, 0);

    // Scalar Mvm: exactly the B = 1 case of the batch accounting.
    let mvm = &t["mvm"];
    assert_eq!(mvm.dac_drives, N as u64);
    assert_eq!(mvm.settle_events, planes as u64);
    assert_eq!(mvm.read_cycles_mvm, (planes * N * N) as u64);
    assert_eq!(mvm.adc_conversions, (N * (planes / 2)) as u64);

    // SolveInv, one RHS, well-conditioned system: one DAC drive per
    // element of b, one feedback settle (the single ranging attempt reads
    // both planes of the whole array), one ADC capture per solution
    // element.
    let solve = &t["solve_inv"];
    assert_eq!(solve.dac_drives, N as u64);
    assert_eq!(solve.solve_settles, 1);
    assert_eq!(solve.read_cycles_solve, (planes * N * N) as u64);
    assert_eq!(solve.adc_conversions, N as u64);
    assert_eq!(solve.settle_events, 0);
    assert_eq!(solve.write_pulses, 0);
}

/// The per-instruction attribution must partition the group totals: every
/// hardware event the program caused lands under exactly one mnemonic.
#[test]
fn per_instruction_attribution_sums_to_group_totals() {
    let sys = run_fixture();
    let mut sum = HwSnapshot::default();
    for delta in sys.instruction_telemetry().values() {
        sum += delta;
    }
    assert_eq!(sum, sys.macro_group().hw_snapshot());
    assert!(sum.total() > 0, "the fixture program does real analog work");
}

/// Loading a new program clears the previous program's attribution.
#[test]
fn load_program_resets_instruction_telemetry() {
    let mut sys = run_fixture();
    assert!(!sys.instruction_telemetry().is_empty());
    sys.load_program(vec![Instruction::Halt]);
    assert!(sys.instruction_telemetry().is_empty());
}
