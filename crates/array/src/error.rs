//! Error type for crossbar-array operations.

use std::error::Error;
use std::fmt;

/// Errors produced by crossbar and mapping operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrayError {
    /// The requested active region does not fit inside the array.
    RegionOutOfBounds {
        /// Requested region as `(row0, col0, rows, cols)`.
        region: (usize, usize, usize, usize),
        /// Physical array shape.
        array: (usize, usize),
    },
    /// A level/target matrix has the wrong shape for the selected region.
    ShapeMismatch {
        /// Shape required by the operation.
        expected: (usize, usize),
        /// Shape that was supplied.
        found: (usize, usize),
    },
    /// A conductance level exceeds the quantizer's range.
    LevelOutOfRange {
        /// The offending level.
        level: usize,
        /// Highest representable level.
        max: usize,
    },
    /// Write-verify gave up on one or more cells.
    ProgrammingFailed {
        /// Number of cells that did not converge.
        failed_cells: usize,
        /// Total cells programmed.
        total_cells: usize,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument(&'static str),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::RegionOutOfBounds { region, array } => write!(
                f,
                "region (r0={}, c0={}, {}x{}) exceeds array {}x{}",
                region.0, region.1, region.2, region.3, array.0, array.1
            ),
            ArrayError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            ArrayError::LevelOutOfRange { level, max } => {
                write!(f, "conductance level {level} exceeds maximum {max}")
            }
            ArrayError::ProgrammingFailed { failed_cells, total_cells } => {
                write!(f, "write-verify failed on {failed_cells} of {total_cells} cells")
            }
            ArrayError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = ArrayError::RegionOutOfBounds { region: (120, 0, 16, 16), array: (128, 128) };
        assert!(e.to_string().contains("128x128"));
        let e = ArrayError::LevelOutOfRange { level: 17, max: 15 };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArrayError>();
    }
}
