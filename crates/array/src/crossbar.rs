//! The 1T1R crossbar array with its WL/BL/SL drivers.
//!
//! Per the paper's macro design (Fig. 2): "The size of RRAM array is
//! moderately set as 128 × 128. The 1T1R cells in the crosspoint array are
//! enabled by BL, WL, and source-line (SL) drivers, which allow to select the
//! active region in the array to fit different sizes of matrix problems."

use std::sync::{Arc, Mutex};

use gramc_device::{CellNoise, DeviceParams, LevelQuantizer, Nmos, OneTOneR};
use gramc_linalg::Matrix;
use rand::Rng;

use crate::error::ArrayError;
use crate::write_verify::ProgramOutcome;

#[cfg(feature = "fault-inject")]
use gramc_device::{FaultKind, FaultPlan};

#[cfg(feature = "telemetry")]
use gramc_telemetry::HwCounters;

/// The paper's array dimension.
pub const PAPER_ARRAY_SIZE: usize = 128;

/// Construction parameters for a crossbar array.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Number of rows (word lines).
    pub rows: usize,
    /// Number of columns (bit lines).
    pub cols: usize,
    /// RRAM compact-model parameters shared by all cells.
    pub device: DeviceParams,
    /// Access-transistor model shared by all cells.
    pub nmos: Nmos,
    /// Per-cell noise configuration.
    pub noise: CellNoise,
    /// Device-to-device relative sigma on the current prefactor `I0`.
    pub d2d_i0_sigma: f64,
    /// Device-to-device relative sigma on the gap length `g0`.
    pub d2d_g0_sigma: f64,
    /// Wire resistance per cell segment in ohms (0 disables IR-drop
    /// modelling; the paper's simulations neglect it, but the ablation
    /// benches sweep it).
    pub wire_resistance: f64,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            rows: PAPER_ARRAY_SIZE,
            cols: PAPER_ARRAY_SIZE,
            device: DeviceParams::default(),
            nmos: Nmos::default(),
            noise: CellNoise::default(),
            d2d_i0_sigma: 0.02,
            d2d_g0_sigma: 0.005,
            wire_resistance: 0.0,
        }
    }
}

impl ArrayConfig {
    /// A small array for fast unit tests.
    pub fn small(rows: usize, cols: usize) -> Self {
        Self { rows, cols, ..Self::default() }
    }

    /// A noiseless, variation-free configuration (deterministic tests).
    pub fn ideal(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            noise: CellNoise::none(),
            d2d_i0_sigma: 0.0,
            d2d_g0_sigma: 0.0,
            ..Self::default()
        }
    }
}

/// A rectangular active region selected by the WL/BL/SL drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveRegion {
    /// First active row.
    pub row0: usize,
    /// First active column.
    pub col0: usize,
    /// Active row count.
    pub rows: usize,
    /// Active column count.
    pub cols: usize,
}

impl ActiveRegion {
    /// Region covering an entire `rows × cols` array.
    pub fn full(rows: usize, cols: usize) -> Self {
        Self { row0: 0, col0: 0, rows, cols }
    }

    /// Region of the given size anchored at the array origin.
    pub fn at_origin(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols)
    }

    /// Shape of the region.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// One cached effective-conductance snapshot (see
/// [`CrossbarArray::effective_conductances`]). The squared and transposed
/// variants feed the batched MVM kernels and are derived lazily.
#[derive(Debug)]
struct Snapshot {
    region: ActiveRegion,
    g: Matrix,
    /// `gᵀ` (lazily built; shared by reference with
    /// [`CrossbarArray::row_currents_batch`] and
    /// [`CrossbarArray::transposed_effective_conductances`]).
    g_t: Option<Arc<Matrix>>,
}

/// Region-keyed snapshot cache, valid for one array generation.
#[derive(Debug, Default)]
struct ConductanceCache {
    entries: Vec<Snapshot>,
}

/// Cached regions kept per array. An operator occupies at most a few plane
/// regions on one array, so a handful of slots never thrashes.
const CACHE_SLOTS: usize = 8;

/// A crossbar of 1T1R cells with region-selectable drivers.
///
/// # Conductance cache and invalidation contract
///
/// Reconstructing the effective-conductance matrix of a region walks every
/// cell's compact model — by far the dominant cost of an analog read when
/// the array state has not changed. The array therefore keeps a
/// *generation-tagged snapshot cache*:
///
/// * every mutation ([`program_direct`](Self::program_direct) and every
///   [`cell_mut`](Self::cell_mut) borrow — the write-verify controller's
///   entry point) bumps [`generation`](Self::generation) and drops all
///   snapshots;
/// * [`effective_conductances`](Self::effective_conductances),
///   [`row_currents`](Self::row_currents) / [`col_currents`](Self::col_currents)
///   and the batched variants ([`row_currents_batch`](Self::row_currents_batch)
///   / [`col_currents_batch`](Self::col_currents_batch)) serve from the
///   snapshot of their region, rebuilding it only on the first read after a
///   mutation.
///
/// Noisy reads ([`conductances`](Self::conductances)) model a fresh ADC
/// sample per call and are deliberately never cached.
///
/// Under the `fault-inject` feature an installed
/// [`FaultPlan`](gramc_device::FaultPlan) participates in the same
/// contract: installing or clearing a plan and advancing the fault clock
/// ([`advance_fault_time`](Self::advance_fault_time), which moves every
/// drifting cell) all invalidate the cache, so snapshots never outlive a
/// change of the faulted state.
///
/// # Examples
///
/// ```
/// use gramc_array::{CrossbarArray, ArrayConfig, ActiveRegion};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut xbar = CrossbarArray::new(ArrayConfig::ideal(4, 4), &mut rng);
/// let region = ActiveRegion::full(4, 4);
/// let g = xbar.conductances(region, &mut rng).unwrap();
/// assert_eq!(g.shape(), (4, 4));
/// ```
#[derive(Debug)]
pub struct CrossbarArray {
    config: ArrayConfig,
    cells: Vec<OneTOneR>,
    /// Bumped on every mutation; snapshots from older generations are stale.
    generation: u64,
    /// Interior-mutable so `&self` read paths can populate it (a `Mutex`
    /// rather than `RefCell` keeps the array `Send + Sync`; reads are
    /// single-owner in practice, so the lock is uncontended).
    cache: Mutex<ConductanceCache>,
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultState>,
    /// Hardware event counters (observation only — never touches RNG or
    /// math). Fresh per array; [`set_telemetry`](Self::set_telemetry)
    /// installs a shared sink so a macro group aggregates its arrays.
    #[cfg(feature = "telemetry")]
    telemetry: Arc<HwCounters>,
}

/// Installed fault plan plus the array's fault clock and the precomputed
/// stuck-at conductance rails (from the array's device parameters).
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone)]
struct FaultState {
    plan: FaultPlan,
    /// Seconds since the plan was installed (drives drift).
    time: f64,
    g_on: f64,
    g_off: f64,
}

impl Clone for CrossbarArray {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            cells: self.cells.clone(),
            generation: self.generation,
            // Snapshots are derived data; the clone rebuilds on first read.
            cache: Mutex::new(ConductanceCache::default()),
            #[cfg(feature = "fault-inject")]
            faults: self.faults.clone(),
            // A clone counts independently; owners sharing a sink re-install
            // it via `set_telemetry`.
            #[cfg(feature = "telemetry")]
            telemetry: Arc::new(HwCounters::new()),
        }
    }
}

impl CrossbarArray {
    /// Builds the array, sampling device-to-device variation from `rng`.
    pub fn new<R: Rng + ?Sized>(config: ArrayConfig, rng: &mut R) -> Self {
        let mut cells = Vec::with_capacity(config.rows * config.cols);
        for _ in 0..config.rows * config.cols {
            cells.push(OneTOneR::with_variation(
                config.device.clone(),
                config.nmos,
                config.noise,
                rng,
                config.d2d_i0_sigma,
                config.d2d_g0_sigma,
            ));
        }
        Self {
            config,
            cells,
            generation: 0,
            cache: Mutex::new(ConductanceCache::default()),
            #[cfg(feature = "fault-inject")]
            faults: None,
            #[cfg(feature = "telemetry")]
            telemetry: Arc::new(HwCounters::new()),
        }
    }

    /// Installs a shared hardware-counter sink (e.g. one per macro group)
    /// so this array's events aggregate with its siblings'.
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(&mut self, counters: Arc<HwCounters>) {
        self.telemetry = counters;
    }

    /// The array's hardware event counters.
    #[cfg(feature = "telemetry")]
    pub fn telemetry(&self) -> &Arc<HwCounters> {
        &self.telemetry
    }

    /// Installs a fault plan: from now on reads are filtered through it
    /// (stuck cells read their rail, drifting cells decay with the fault
    /// clock, noisy reads may be disturbed). Invalidates the snapshot
    /// cache. Installing an [empty](FaultPlan::is_empty) plan leaves every
    /// read bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the plan's shape differs from the array's.
    #[cfg(feature = "fault-inject")]
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(plan.shape(), self.shape(), "fault plan shape must match the array");
        let g_on = self.config.device.conductance_at_gap(self.config.device.gap_min);
        let g_off = self.config.device.conductance_at_gap(self.config.device.gap_max);
        self.faults = Some(FaultState { plan, time: 0.0, g_on, g_off });
        self.invalidate_cache();
    }

    /// Removes the installed fault plan (if any) and invalidates the cache.
    #[cfg(feature = "fault-inject")]
    pub fn clear_fault_plan(&mut self) {
        if self.faults.take().is_some() {
            self.invalidate_cache();
        }
    }

    /// The installed fault plan, if any.
    #[cfg(feature = "fault-inject")]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Advances the fault clock by `dt` seconds — drifting cells relax
    /// toward `G_off` accordingly. Invalidates the snapshot cache (the
    /// effective conductances moved). No-op without an installed plan.
    #[cfg(feature = "fault-inject")]
    pub fn advance_fault_time(&mut self, dt: f64) {
        if let Some(fs) = &mut self.faults {
            fs.time += dt;
            self.invalidate_cache();
        }
    }

    /// Seconds on the fault clock since the plan was installed.
    #[cfg(feature = "fault-inject")]
    pub fn fault_time(&self) -> f64 {
        self.faults.as_ref().map_or(0.0, |f| f.time)
    }

    /// What a read of cell `(row, col)` returns given the fault state, for
    /// a fault-free read of `g`.
    #[cfg(feature = "fault-inject")]
    #[inline]
    fn fault_adjust(&self, g: f64, row: usize, col: usize) -> f64 {
        let Some(fs) = &self.faults else { return g };
        match fs.plan.fault_at(row, col) {
            None => g,
            Some(FaultKind::StuckAtOn) => fs.g_on,
            Some(FaultKind::StuckAtOff) => fs.g_off,
            Some(FaultKind::Drift) => {
                // Guard t == 0 so a freshly installed plan is bit-identical
                // (g_off + (g - g_off) need not round-trip exactly).
                if fs.time > 0.0 {
                    let tau = fs.plan.config().drift_tau_s.max(f64::MIN_POSITIVE);
                    fs.g_off + (g - fs.g_off) * (-fs.time / tau).exp()
                } else {
                    g
                }
            }
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    fn fault_adjust(&self, g: f64, _row: usize, _col: usize) -> f64 {
        g
    }

    /// The rail a stuck cell reads at, if `(row, col)` is stuck under the
    /// installed plan. Used by the programming paths to detect and report
    /// cells that cannot take their target.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn stuck_conductance_at(&self, row: usize, col: usize) -> Option<f64> {
        let fs = self.faults.as_ref()?;
        match fs.plan.fault_at(row, col)? {
            FaultKind::StuckAtOn => Some(fs.g_on),
            FaultKind::StuckAtOff => Some(fs.g_off),
            FaultKind::Drift => None,
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub(crate) fn stuck_conductance_at(&self, _row: usize, _col: usize) -> Option<f64> {
        None
    }

    /// Mutation counter: bumped whenever the array state may have changed
    /// (cell programming or a mutable cell borrow). Snapshot consumers can
    /// use it to detect staleness across reads.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drops all cached snapshots and bumps the generation. Called by every
    /// mutating entry point; public so external controllers driving cells
    /// directly can keep the contract.
    pub fn invalidate_cache(&mut self) {
        self.generation += 1;
        self.cache.get_mut().expect("cache lock poisoned").entries.clear();
    }

    /// Runs `f` on the (possibly freshly built) snapshot for `region`.
    fn with_snapshot<T>(
        &self,
        region: ActiveRegion,
        f: impl FnOnce(&mut Snapshot) -> T,
    ) -> Result<T, ArrayError> {
        self.check_region(region)?;
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        if let Some(pos) = cache.entries.iter().position(|s| s.region == region) {
            #[cfg(feature = "telemetry")]
            self.telemetry.add_snapshot_hits(1);
            // Move to the back (most recently used).
            let mut snap = cache.entries.remove(pos);
            let out = f(&mut snap);
            cache.entries.push(snap);
            return Ok(out);
        }
        #[cfg(feature = "telemetry")]
        self.telemetry.add_snapshot_misses(1);
        let g = self.build_effective_conductances(region)?;
        let mut snap = Snapshot { region, g, g_t: None };
        let out = f(&mut snap);
        if cache.entries.len() >= CACHE_SLOTS {
            cache.entries.remove(0);
        }
        cache.entries.push(snap);
        Ok(out)
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Physical shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.config.rows, self.config.cols)
    }

    /// Validates that a region fits in the array.
    pub fn check_region(&self, region: ActiveRegion) -> Result<(), ArrayError> {
        if region.row0 + region.rows > self.config.rows
            || region.col0 + region.cols > self.config.cols
            || region.rows == 0
            || region.cols == 0
        {
            return Err(ArrayError::RegionOutOfBounds {
                region: (region.row0, region.col0, region.rows, region.cols),
                array: (self.config.rows, self.config.cols),
            });
        }
        Ok(())
    }

    /// Immutable access to the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> &OneTOneR {
        assert!(row < self.config.rows && col < self.config.cols, "cell out of bounds");
        &self.cells[row * self.config.cols + col]
    }

    /// Mutable access to the cell at `(row, col)` (used by the write-verify
    /// controller).
    ///
    /// Conservatively invalidates the conductance cache: the borrow may be
    /// used to pulse or reprogram the cell, and a stale snapshot must never
    /// outlive a mutation (see the cache contract in the type docs).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut OneTOneR {
        assert!(row < self.config.rows && col < self.config.cols, "cell out of bounds");
        self.invalidate_cache();
        &mut self.cells[row * self.config.cols + col]
    }

    /// Reads the noisy conductance matrix of a region (one ADC read per
    /// cell, each with independent read noise).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn conductances<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        rng: &mut R,
    ) -> Result<Matrix, ArrayError> {
        self.check_region(region)?;
        let mut g = Matrix::zeros(region.rows, region.cols);
        for i in 0..region.rows {
            for j in 0..region.cols {
                let (row, col) = (region.row0 + i, region.col0 + j);
                g[(i, j)] = self.fault_adjust(self.cell(row, col).read(rng), row, col);
            }
        }
        self.apply_read_disturb(&mut g, region, rng);
        Ok(g)
    }

    /// Transient read disturb: with an installed plan whose disturb
    /// probability is positive, each noisy sample independently dips by the
    /// configured fraction. Never applied to noise-free (verify/snapshot)
    /// reads; consumes no RNG when the probability is zero.
    #[cfg(feature = "fault-inject")]
    fn apply_read_disturb<R: Rng + ?Sized>(
        &self,
        g: &mut Matrix,
        region: ActiveRegion,
        rng: &mut R,
    ) {
        let Some(fs) = &self.faults else { return };
        let p = fs.plan.config().read_disturb_prob;
        if p <= 0.0 {
            return;
        }
        let dip = 1.0 - fs.plan.config().read_disturb_frac;
        for i in 0..region.rows {
            for j in 0..region.cols {
                if rng.gen::<f64>() < p {
                    g[(i, j)] *= dip;
                }
            }
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    fn apply_read_disturb<R: Rng + ?Sized>(
        &self,
        _g: &mut Matrix,
        _region: ActiveRegion,
        _rng: &mut R,
    ) {
    }

    /// Reads the noise-free conductance matrix of a region.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn conductances_ideal(&self, region: ActiveRegion) -> Result<Matrix, ArrayError> {
        self.check_region(region)?;
        let mut g = Matrix::zeros(region.rows, region.cols);
        for i in 0..region.rows {
            for j in 0..region.cols {
                let (row, col) = (region.row0 + i, region.col0 + j);
                g[(i, j)] = self.fault_adjust(self.cell(row, col).read_ideal(), row, col);
            }
        }
        Ok(g)
    }

    /// Effective conductance matrix including the (optional) first-order
    /// IR-drop degradation from finite wire resistance: a cell at distance
    /// `d = i + j` segments from the drivers sees its conductance reduced to
    /// `G / (1 + G·R_wire·d)`.
    ///
    /// Served from the generation-tagged snapshot cache (see the type docs):
    /// the first call after a mutation rebuilds the snapshot, subsequent
    /// calls for the same region copy it out.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn effective_conductances(&self, region: ActiveRegion) -> Result<Matrix, ArrayError> {
        self.with_snapshot(region, |snap| snap.g.clone())
    }

    /// Transposed effective conductances of a region, shared by reference
    /// from the generation-tagged snapshot cache — the zero-copy feed of
    /// the batched MVM kernels. Only valid for noise-free reads (noisy
    /// reads model a fresh sample per call and are never cached).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn transposed_effective_conductances(
        &self,
        region: ActiveRegion,
    ) -> Result<Arc<Matrix>, ArrayError> {
        self.with_snapshot(region, |snap| {
            snap.g_t.get_or_insert_with(|| Arc::new(snap.g.transpose())).clone()
        })
    }

    /// One noisy effective-conductance read: per-cell read noise plus the
    /// IR-drop correction of [`effective_conductances`](Self::effective_conductances).
    /// Never cached (each call is a fresh sample).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn effective_conductances_noisy<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        rng: &mut R,
    ) -> Result<Matrix, ArrayError> {
        let mut g = self.conductances(region, rng)?;
        self.apply_ir_drop(&mut g, region);
        Ok(g)
    }

    /// First-order IR-drop degradation from finite wire resistance: a cell
    /// at distance `d = i + j` segments from the drivers sees its
    /// conductance reduced to `G / (1 + G·R_wire·d)`. No-op when
    /// `wire_resistance` is 0.
    fn apply_ir_drop(&self, g: &mut Matrix, region: ActiveRegion) {
        let r = self.config.wire_resistance;
        if r > 0.0 {
            for i in 0..region.rows {
                for j in 0..region.cols {
                    let d = (i + j) as f64;
                    let gij = g[(i, j)];
                    g[(i, j)] = gij / (1.0 + gij * r * d);
                }
            }
        }
    }

    /// Uncached snapshot construction (the pre-cache `effective_conductances`
    /// body). Also the bench baseline for the per-call reconstruction cost.
    fn build_effective_conductances(&self, region: ActiveRegion) -> Result<Matrix, ArrayError> {
        let mut g = self.conductances_ideal(region)?;
        self.apply_ir_drop(&mut g, region);
        Ok(g)
    }

    /// Public uncached reconstruction: reads every cell's compact model and
    /// applies the IR-drop correction, bypassing the snapshot cache. This is
    /// what every MVM paid before the cache existed; the perf benches time
    /// the cached fast path against it.
    pub fn effective_conductances_uncached(
        &self,
        region: ActiveRegion,
    ) -> Result<Matrix, ArrayError> {
        self.build_effective_conductances(region)
    }

    /// Analog MVM fast path: drives the region's columns with `v_cols` volts
    /// and returns the per-row currents `I = G·v` in amperes, with read
    /// noise aggregated per output.
    ///
    /// For independent multiplicative per-cell read noise of relative sigma
    /// σ, the output current noise is exactly Gaussian with standard
    /// deviation `σ·√(Σ_j (G_ij·v_j)²)`, so sampling per-output is
    /// distribution-exact and O(n) faster than per-cell sampling. (Validated
    /// against per-cell sampling in tests.)
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::ShapeMismatch`] if `v_cols.len() != region.cols`
    /// and [`ArrayError::RegionOutOfBounds`] for invalid regions.
    pub fn row_currents<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        v_cols: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, ArrayError> {
        self.check_region(region)?;
        if v_cols.len() != region.cols {
            return Err(ArrayError::ShapeMismatch {
                expected: (region.cols, 1),
                found: (v_cols.len(), 1),
            });
        }
        // One settle event biases every cell of the region once.
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_settle_events(1);
            self.telemetry.add_read_cycles_mvm((region.rows * region.cols) as u64);
        }
        let sigma = self.config.noise.read_rel_sigma;
        self.with_snapshot(region, |snap| {
            let g = &snap.g;
            let mut out = Vec::with_capacity(region.rows);
            for i in 0..region.rows {
                let mut sum = 0.0;
                let mut var = 0.0;
                for (j, &gij) in g.row(i).iter().enumerate() {
                    let term = gij * v_cols[j];
                    sum += term;
                    var += term * term;
                }
                let noise =
                    if sigma > 0.0 { sigma * var.sqrt() * standard_normal(rng) } else { 0.0 };
                out.push(sum + noise);
            }
            out
        })
    }

    /// Batched analog MVM: every row of `v_batch` is one column-voltage
    /// drive vector, and row `b` of the output holds the per-row currents
    /// `I_b = G·v_b`. The conductance snapshot is read **once** for the
    /// whole batch and the products run through the blocked
    /// [`Matrix::matmul`] kernel, so a batch of `B` vectors costs one
    /// snapshot plus one `(B×cols)·(cols×rows)` product instead of `B`
    /// matrix reconstructions.
    ///
    /// Per-output aggregated read noise is applied exactly as in
    /// [`row_currents`](Self::row_currents), drawing per output in batch-row
    /// major order — calling this with a batch of `B` vectors is
    /// bit-identical to `B` sequential `row_currents` calls with the same
    /// RNG.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::ShapeMismatch`] if `v_batch.cols() !=
    /// region.cols` and [`ArrayError::RegionOutOfBounds`] for invalid
    /// regions.
    pub fn row_currents_batch<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        v_batch: &Matrix,
        rng: &mut R,
    ) -> Result<Matrix, ArrayError> {
        self.check_region(region)?;
        if v_batch.cols() != region.cols {
            return Err(ArrayError::ShapeMismatch {
                expected: (v_batch.rows(), region.cols),
                found: v_batch.shape(),
            });
        }
        // One settle event per drive vector, each biasing the whole region.
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_settle_events(v_batch.rows() as u64);
            self.telemetry.add_read_cycles_mvm((v_batch.rows() * region.rows * region.cols) as u64);
        }
        let sigma = self.config.noise.read_rel_sigma;
        self.with_snapshot(region, |snap| {
            // Y = V · Gᵀ, with Gᵀ cached alongside the snapshot.
            let g_t = snap.g_t.get_or_insert_with(|| Arc::new(snap.g.transpose())).clone();
            let mut out = v_batch.matmul(&g_t);
            if sigma > 0.0 {
                // var_bi = Σ_j (G_ij·v_bj)² — accumulated term-by-term in
                // the scalar path's order so the noise scale (and hence the
                // whole output) stays bit-identical to sequential
                // `row_currents` calls.
                for b in 0..out.rows() {
                    let v = v_batch.row(b);
                    for i in 0..region.rows {
                        let mut var = 0.0;
                        for (j, &gij) in snap.g.row(i).iter().enumerate() {
                            let term = gij * v[j];
                            var += term * term;
                        }
                        out[(b, i)] += sigma * var.sqrt() * standard_normal(rng);
                    }
                }
            }
            out
        })
    }

    /// Transposed MVM fast path: drives the region's rows with `v_rows`
    /// volts and returns the per-column currents `I = Gᵀ·v`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`row_currents`](Self::row_currents).
    pub fn col_currents<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        v_rows: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, ArrayError> {
        self.check_region(region)?;
        if v_rows.len() != region.rows {
            return Err(ArrayError::ShapeMismatch {
                expected: (region.rows, 1),
                found: (v_rows.len(), 1),
            });
        }
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_settle_events(1);
            self.telemetry.add_read_cycles_mvm((region.rows * region.cols) as u64);
        }
        let sigma = self.config.noise.read_rel_sigma;
        self.with_snapshot(region, |snap| {
            let g = &snap.g;
            let mut out = Vec::with_capacity(region.cols);
            for j in 0..region.cols {
                let mut sum = 0.0;
                let mut var = 0.0;
                for i in 0..region.rows {
                    let term = g[(i, j)] * v_rows[i];
                    sum += term;
                    var += term * term;
                }
                let noise =
                    if sigma > 0.0 { sigma * var.sqrt() * standard_normal(rng) } else { 0.0 };
                out.push(sum + noise);
            }
            out
        })
    }

    /// Batched transposed MVM: every row of `v_batch` is one row-voltage
    /// drive vector, and row `b` of the output holds the per-column currents
    /// `I_b = Gᵀ·v_b`. One snapshot read plus one blocked
    /// `(B×rows)·(rows×cols)` product serves the whole batch; see
    /// [`row_currents_batch`](Self::row_currents_batch) for the caching and
    /// noise contract (noise here matches sequential
    /// [`col_currents`](Self::col_currents) calls).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::ShapeMismatch`] if `v_batch.cols() !=
    /// region.rows` and [`ArrayError::RegionOutOfBounds`] for invalid
    /// regions.
    pub fn col_currents_batch<R: Rng + ?Sized>(
        &self,
        region: ActiveRegion,
        v_batch: &Matrix,
        rng: &mut R,
    ) -> Result<Matrix, ArrayError> {
        self.check_region(region)?;
        if v_batch.cols() != region.rows {
            return Err(ArrayError::ShapeMismatch {
                expected: (v_batch.rows(), region.rows),
                found: v_batch.shape(),
            });
        }
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.add_settle_events(v_batch.rows() as u64);
            self.telemetry.add_read_cycles_mvm((v_batch.rows() * region.rows * region.cols) as u64);
        }
        let sigma = self.config.noise.read_rel_sigma;
        self.with_snapshot(region, |snap| {
            // Y = V · G (no transpose needed for the column direction).
            let mut out = v_batch.matmul(&snap.g);
            if sigma > 0.0 {
                for b in 0..out.rows() {
                    let v = v_batch.row(b);
                    for j in 0..region.cols {
                        let mut var = 0.0;
                        for i in 0..region.rows {
                            let term = snap.g[(i, j)] * v[i];
                            var += term * term;
                        }
                        out[(b, j)] += sigma * var.sqrt() * standard_normal(rng);
                    }
                }
            }
            out
        })
    }

    /// Directly programs a region to the given target conductances (in
    /// siemens) by setting each cell's filament gap, bypassing pulse-level
    /// simulation. `sigma_levels` adds Gaussian programming error in level
    /// units, emulating the residual error the write-verify loop leaves
    /// behind (its tolerance band).
    ///
    /// This is the fast path used by the LeNet pipeline; the full pulse-level
    /// path lives in [`crate::WriteVerifyController`].
    ///
    /// Returns a [`ProgramOutcome`]: without fault injection every cell
    /// takes its (clamped) target and `failures` is 0; under an installed
    /// fault plan, stuck cells that cannot land within half a level of
    /// their target are counted as failures — the same verify-readback
    /// signal the pulse path reports, surfaced instead of dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RegionOutOfBounds`] or
    /// [`ArrayError::ShapeMismatch`].
    pub fn program_direct<R: Rng + ?Sized>(
        &mut self,
        region: ActiveRegion,
        targets: &Matrix,
        quantizer: &LevelQuantizer,
        sigma_levels: f64,
        rng: &mut R,
    ) -> Result<ProgramOutcome, ArrayError> {
        self.check_region(region)?;
        if targets.shape() != region.shape() {
            return Err(ArrayError::ShapeMismatch {
                expected: region.shape(),
                found: targets.shape(),
            });
        }
        self.invalidate_cache();
        // Direct programming models one blind write pulse per cell (the
        // pulse-level path counts its measured pulse total instead).
        #[cfg(feature = "telemetry")]
        {
            let cells = (region.rows * region.cols) as u64;
            self.telemetry.add_write_cycles(cells);
            self.telemetry.add_write_pulses(cells);
        }
        let mut failures = 0;
        for i in 0..region.rows {
            for j in 0..region.cols {
                let mut g = targets[(i, j)];
                if sigma_levels > 0.0 {
                    g += sigma_levels * quantizer.step() * standard_normal(rng);
                }
                let g = g.clamp(quantizer.g_min(), quantizer.g_max());
                let (row, col) = (region.row0 + i, region.col0 + j);
                // Direct cell indexing: `cell_mut` would re-invalidate (and
                // re-bump the generation) once per cell.
                let idx = row * self.config.cols + col;
                self.cells[idx].program_conductance(g);
                // Verify readback against what the cell will actually read
                // as (a stuck cell ignores the seated state entirely).
                if let Some(g_stuck) = self.stuck_conductance_at(row, col) {
                    let err_levels = (g_stuck - g).abs() / quantizer.step();
                    if err_levels > 0.5 {
                        failures += 1;
                    }
                }
            }
        }
        Ok(ProgramOutcome { cells: region.rows * region.cols, failures })
    }
}

/// Local standard-normal sampler (Box–Muller).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_device::MICRO_SIEMENS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal_array(rows: usize, cols: usize, seed: u64) -> (CrossbarArray, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xbar = CrossbarArray::new(ArrayConfig::ideal(rows, cols), &mut rng);
        (xbar, rng)
    }

    #[test]
    fn fresh_array_is_high_resistance() {
        let (xbar, mut rng) = ideal_array(4, 4, 1);
        let g = xbar.conductances(ActiveRegion::full(4, 4), &mut rng).unwrap();
        assert!(g.max_abs() < 2.0 * MICRO_SIEMENS);
    }

    #[test]
    fn region_bounds_checked() {
        let (xbar, mut rng) = ideal_array(4, 4, 2);
        let bad = ActiveRegion { row0: 2, col0: 2, rows: 4, cols: 4 };
        assert!(matches!(
            xbar.conductances(bad, &mut rng),
            Err(ArrayError::RegionOutOfBounds { .. })
        ));
        let empty = ActiveRegion { row0: 0, col0: 0, rows: 0, cols: 1 };
        assert!(xbar.check_region(empty).is_err());
    }

    #[test]
    fn program_direct_hits_targets() {
        let (mut xbar, mut rng) = ideal_array(3, 3, 3);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(3, 3);
        let targets = Matrix::from_fn(3, 3, |i, j| q.conductance_of((i * 3 + j) % 16));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let g = xbar.conductances_ideal(region).unwrap();
        assert!(g.approx_eq(&targets, 1e-10), "{g:?} vs {targets:?}");
    }

    #[test]
    fn row_currents_match_g_times_v() {
        let (mut xbar, mut rng) = ideal_array(3, 2, 4);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(3, 2);
        let targets = Matrix::from_fn(3, 2, |i, j| q.conductance_of(2 * i + j + 1));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let v = [0.1, -0.2];
        let i = xbar.row_currents(region, &v, &mut rng).unwrap();
        let expected = targets.matvec(&v);
        for (a, b) in i.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-15, "{i:?} vs {expected:?}");
        }
    }

    #[test]
    fn col_currents_are_transposed_mvm() {
        let (mut xbar, mut rng) = ideal_array(2, 3, 5);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(2, 3);
        let targets = Matrix::from_fn(2, 3, |i, j| q.conductance_of(3 * i + j + 2));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let v = [0.15, -0.05];
        let i = xbar.col_currents(region, &v, &mut rng).unwrap();
        let expected = targets.tr_matvec(&v);
        for (a, b) in i.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn aggregated_noise_matches_per_cell_statistics() {
        // The per-output noise shortcut must match brute-force per-cell
        // sampling in mean and standard deviation.
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = ArrayConfig::ideal(4, 4);
        cfg.noise.read_rel_sigma = 0.05;
        let mut xbar = CrossbarArray::new(cfg, &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(4, 4);
        let targets = Matrix::from_fn(4, 4, |i, j| q.conductance_of((5 * i + j) % 16));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let v = [0.2, 0.1, -0.1, 0.05];

        let n = 4000;
        let mut agg_sum = 0.0;
        let mut agg_sq = 0.0;
        let mut cell_sum = 0.0;
        let mut cell_sq = 0.0;
        for _ in 0..n {
            let fast = xbar.row_currents(region, &v, &mut rng).unwrap()[0];
            agg_sum += fast;
            agg_sq += fast * fast;
            // Brute force: sample each cell independently.
            let mut slow = 0.0;
            for j in 0..4 {
                let g = xbar.cell(0, j).read(&mut rng);
                slow += g * v[j];
            }
            cell_sum += slow;
            cell_sq += slow * slow;
        }
        let (m1, m2) = (agg_sum / n as f64, cell_sum / n as f64);
        let s1 = (agg_sq / n as f64 - m1 * m1).sqrt();
        let s2 = (cell_sq / n as f64 - m2 * m2).sqrt();
        assert!((m1 - m2).abs() / m2.abs() < 0.02, "means {m1} vs {m2}");
        assert!((s1 - s2).abs() / s2 < 0.15, "stds {s1} vs {s2}");
    }

    #[test]
    fn wire_resistance_reduces_far_cell_conductance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = ArrayConfig::ideal(4, 4);
        cfg.wire_resistance = 100.0;
        let mut xbar = CrossbarArray::new(cfg, &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(4, 4);
        let targets = Matrix::filled(4, 4, 50.0 * MICRO_SIEMENS);
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let g = xbar.effective_conductances(region).unwrap();
        assert!(g[(0, 0)] > g[(3, 3)], "IR drop should penalize far cells");
        assert!((g[(0, 0)] - 50.0 * MICRO_SIEMENS).abs() < 1e-12);
    }

    #[test]
    fn batched_row_currents_bit_identical_to_single_loop() {
        // With read noise ON: the batch draws per output in batch-major
        // order, so one batched call must reproduce a loop of single calls
        // against the same seeded RNG, bit for bit.
        let mut rng = StdRng::seed_from_u64(40);
        let mut cfg = ArrayConfig::ideal(6, 5);
        cfg.noise.read_rel_sigma = 0.03;
        let mut xbar = CrossbarArray::new(cfg, &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(6, 5);
        let targets = Matrix::from_fn(6, 5, |i, j| q.conductance_of((3 * i + j) % 16));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();

        let batch = Matrix::from_fn(7, 5, |b, j| ((b * 5 + j) as f64 * 0.13).sin() * 0.2);
        let mut rng_batch = StdRng::seed_from_u64(99);
        let ys = xbar.row_currents_batch(region, &batch, &mut rng_batch).unwrap();
        let mut rng_loop = StdRng::seed_from_u64(99);
        for b in 0..batch.rows() {
            let y = xbar.row_currents(region, batch.row(b), &mut rng_loop).unwrap();
            for (i, yi) in y.iter().enumerate() {
                assert!(
                    ys[(b, i)].to_bits() == yi.to_bits(),
                    "batch row {b} output {i}: {} vs {yi}",
                    ys[(b, i)]
                );
            }
        }
    }

    #[test]
    fn batched_col_currents_bit_identical_to_single_loop() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut cfg = ArrayConfig::ideal(4, 6);
        cfg.noise.read_rel_sigma = 0.05;
        let mut xbar = CrossbarArray::new(cfg, &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(4, 6);
        let targets = Matrix::from_fn(4, 6, |i, j| q.conductance_of((i + 5 * j) % 16));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();

        let batch = Matrix::from_fn(5, 4, |b, i| ((b + i) as f64 * 0.21).cos() * 0.15);
        let mut rng_batch = StdRng::seed_from_u64(7);
        let ys = xbar.col_currents_batch(region, &batch, &mut rng_batch).unwrap();
        let mut rng_loop = StdRng::seed_from_u64(7);
        for b in 0..batch.rows() {
            let y = xbar.col_currents(region, batch.row(b), &mut rng_loop).unwrap();
            for (j, yj) in y.iter().enumerate() {
                assert!(
                    ys[(b, j)].to_bits() == yj.to_bits(),
                    "batch row {b} output {j}: {} vs {yj}",
                    ys[(b, j)]
                );
            }
        }
    }

    #[test]
    fn cache_is_invalidated_by_program_direct() {
        // Stale-cache regression: read (populating the cache), reprogram,
        // read again — the second read must see the new conductances.
        let (mut xbar, mut rng) = ideal_array(3, 3, 42);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(3, 3);
        let first = Matrix::filled(3, 3, 20.0 * MICRO_SIEMENS);
        xbar.program_direct(region, &first, &q, 0.0, &mut rng).unwrap();
        let gen0 = xbar.generation();
        let g1 = xbar.effective_conductances(region).unwrap();
        assert!(g1.approx_eq(&first, 1e-12));
        // Warm the snapshot again, then mutate.
        let _ = xbar.row_currents(region, &[0.1, 0.1, 0.1], &mut rng).unwrap();
        let second = Matrix::filled(3, 3, 80.0 * MICRO_SIEMENS);
        xbar.program_direct(region, &second, &q, 0.0, &mut rng).unwrap();
        assert!(xbar.generation() > gen0, "generation must advance on programming");
        let g2 = xbar.effective_conductances(region).unwrap();
        assert!(g2.approx_eq(&second, 1e-12), "stale cache served after program_direct");
        let i = xbar.row_currents(region, &[1.0, 0.0, 0.0], &mut rng).unwrap();
        assert!((i[0] - 80.0 * MICRO_SIEMENS).abs() < 1e-12, "stale current {i:?}");
    }

    #[test]
    fn cache_is_invalidated_by_cell_mut() {
        let (mut xbar, mut rng) = ideal_array(2, 2, 43);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(2, 2);
        let targets = Matrix::filled(2, 2, 10.0 * MICRO_SIEMENS);
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let _warm = xbar.effective_conductances(region).unwrap();
        let gen0 = xbar.generation();
        xbar.cell_mut(0, 0).program_conductance(90.0 * MICRO_SIEMENS);
        assert!(xbar.generation() > gen0);
        let g = xbar.effective_conductances(region).unwrap();
        assert!((g[(0, 0)] - 90.0 * MICRO_SIEMENS).abs() < 1e-12, "stale cache after cell_mut");
    }

    #[test]
    fn cached_reads_match_uncached_reconstruction() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut cfg = ArrayConfig::ideal(5, 4);
        cfg.wire_resistance = 250.0; // exercise the IR-drop branch too
        let mut xbar = CrossbarArray::new(cfg, &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(5, 4);
        let targets = Matrix::from_fn(5, 4, |i, j| q.conductance_of((2 * i + j) % 16));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let cached1 = xbar.effective_conductances(region).unwrap();
        let cached2 = xbar.effective_conductances(region).unwrap();
        let uncached = xbar.effective_conductances_uncached(region).unwrap();
        assert_eq!(cached1, cached2);
        assert_eq!(cached1, uncached);
        // Sub-regions get their own snapshots and stay consistent.
        let sub = ActiveRegion { row0: 1, col0: 1, rows: 3, cols: 2 };
        assert_eq!(
            xbar.effective_conductances(sub).unwrap(),
            xbar.effective_conductances_uncached(sub).unwrap()
        );
    }

    #[test]
    fn voltage_length_is_validated() {
        let (xbar, mut rng) = ideal_array(3, 2, 8);
        let region = ActiveRegion::full(3, 2);
        assert!(xbar.row_currents(region, &[0.1], &mut rng).is_err());
        assert!(xbar.col_currents(region, &[0.1, 0.1], &mut rng).is_err());
    }

    #[test]
    fn programming_error_sigma_spreads_conductance() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xbar = CrossbarArray::new(ArrayConfig::ideal(16, 16), &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(16, 16);
        let targets = Matrix::filled(16, 16, 50.0 * MICRO_SIEMENS);
        xbar.program_direct(region, &targets, &q, 0.4, &mut rng).unwrap();
        let g = xbar.conductances_ideal(region).unwrap();
        let mean: f64 = g.as_slice().iter().sum::<f64>() / 256.0;
        let std: f64 =
            (g.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 256.0).sqrt();
        let expected = 0.4 * q.step();
        assert!((std - expected).abs() / expected < 0.35, "std {std} vs {expected}");
    }

    #[test]
    fn direct_programming_reports_clean_outcome() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut xbar = CrossbarArray::new(ArrayConfig::ideal(4, 4), &mut rng);
        let q = LevelQuantizer::paper_default();
        let targets = Matrix::filled(4, 4, 40.0 * MICRO_SIEMENS);
        let outcome =
            xbar.program_direct(ActiveRegion::full(4, 4), &targets, &q, 0.0, &mut rng).unwrap();
        assert_eq!(outcome.cells, 16);
        assert!(outcome.converged());
        assert_eq!(outcome.failure_frac(), 0.0);
    }

    #[cfg(feature = "fault-inject")]
    mod fault_inject {
        use super::*;
        use gramc_device::{FaultConfig, FaultKind, FaultPlan};

        fn stuck_plan(rows: usize, cols: usize, faults: &[(usize, usize, FaultKind)]) -> FaultPlan {
            FaultPlan::from_faults(rows, cols, faults, FaultConfig::default())
        }

        #[test]
        fn stuck_cells_read_their_rail() {
            let (mut xbar, _) = ideal_array(4, 4, 50);
            let q = LevelQuantizer::paper_default();
            let dev = xbar.config().device.clone();
            xbar.install_fault_plan(stuck_plan(
                4,
                4,
                &[(0, 0, FaultKind::StuckAtOn), (1, 2, FaultKind::StuckAtOff)],
            ));
            let mut rng = StdRng::seed_from_u64(51);
            let targets = Matrix::filled(4, 4, q.conductance_of(8));
            let outcome =
                xbar.program_direct(ActiveRegion::full(4, 4), &targets, &q, 0.0, &mut rng).unwrap();
            assert_eq!(outcome.failures, 2, "both stuck cells miss a mid-range target");
            let g = xbar.conductances_ideal(ActiveRegion::full(4, 4)).unwrap();
            let g_on = dev.conductance_at_gap(dev.gap_min);
            let g_off = dev.conductance_at_gap(dev.gap_max);
            assert!((g[(0, 0)] - g_on).abs() < 1e-12);
            assert!((g[(1, 2)] - g_off).abs() < 1e-12);
            assert!((g[(3, 3)] - q.conductance_of(8)).abs() < 1e-12, "healthy cell unaffected");
        }

        #[test]
        fn installing_and_advancing_faults_invalidates_snapshots() {
            let (mut xbar, mut rng) = ideal_array(4, 4, 52);
            let q = LevelQuantizer::paper_default();
            let region = ActiveRegion::full(4, 4);
            let targets = Matrix::filled(4, 4, q.conductance_of(12));
            xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
            let clean = xbar.effective_conductances(region).unwrap();
            let gen0 = xbar.generation();
            let mut cfg = FaultConfig::default();
            cfg.drift_tau_s = 1.0;
            xbar.install_fault_plan(FaultPlan::from_faults(4, 4, &[(2, 2, FaultKind::Drift)], cfg));
            assert!(xbar.generation() > gen0, "install must bump the generation");
            // Fresh install, t = 0: bit-identical readback.
            assert_eq!(xbar.effective_conductances(region).unwrap(), clean);
            // Advancing the clock must drop the snapshot and move the cell.
            xbar.advance_fault_time(2.0);
            let drifted = xbar.effective_conductances(region).unwrap();
            assert!(drifted[(2, 2)] < clean[(2, 2)], "drifting cell relaxes toward G_off");
            assert_eq!(drifted[(0, 0)], clean[(0, 0)], "healthy cells untouched");
        }

        #[test]
        fn empty_plan_is_bit_identical() {
            let (mut a, mut rng_a) = ideal_array(4, 4, 53);
            let (mut b, mut rng_b) = ideal_array(4, 4, 53);
            let q = LevelQuantizer::paper_default();
            let region = ActiveRegion::full(4, 4);
            let targets = Matrix::filled(4, 4, q.conductance_of(5));
            b.install_fault_plan(FaultPlan::sample(4, 4, &FaultConfig::default(), 99));
            let oa = a.program_direct(region, &targets, &q, 0.3, &mut rng_a).unwrap();
            let ob = b.program_direct(region, &targets, &q, 0.3, &mut rng_b).unwrap();
            assert_eq!(oa, ob);
            assert_eq!(
                a.conductances(region, &mut rng_a).unwrap(),
                b.conductances(region, &mut rng_b).unwrap(),
                "zero-rate plan must not perturb reads or the RNG stream"
            );
        }

        #[test]
        fn read_disturb_only_touches_noisy_reads() {
            let (mut xbar, mut rng) = ideal_array(8, 8, 54);
            let q = LevelQuantizer::paper_default();
            let region = ActiveRegion::full(8, 8);
            let targets = Matrix::filled(8, 8, q.conductance_of(10));
            xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
            let clean_ideal = xbar.conductances_ideal(region).unwrap();
            let mut cfg = FaultConfig::default();
            cfg.read_disturb_prob = 1.0;
            cfg.read_disturb_frac = 0.5;
            xbar.install_fault_plan(FaultPlan::from_faults(8, 8, &[], cfg));
            assert_eq!(xbar.conductances_ideal(region).unwrap(), clean_ideal);
            let noisy = xbar.conductances(region, &mut rng).unwrap();
            let expected = q.conductance_of(10) * 0.5;
            for v in noisy.as_slice() {
                assert!((v - expected).abs() < 1e-12, "every sample disturbed: {v}");
            }
        }
    }
}
