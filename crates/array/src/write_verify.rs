//! On-chip write-verify scheme (paper Section II-A, Fig. 1, and the blue
//! data path of Fig. 3).
//!
//! "During SET process, only V_g is increased step by step, V_SL is grounded
//! and V_BL is applied as V_set. By contrast, the RESET process is controlled
//! by increasing V_SL. […] Until all the conductance states satisfy the error
//! range or write pulse number is larger than the maximum pulse number, the
//! write-verify process stops."

use gramc_device::{LevelQuantizer, OneTOneR};
use gramc_linalg::Matrix;
use rand::Rng;

use crate::crossbar::{ActiveRegion, CrossbarArray};
use crate::error::ArrayError;

/// Tunable parameters of the write-verify state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteVerifyConfig {
    /// Bit-line voltage applied during SET (the paper's `V_set`).
    pub v_set: f64,
    /// Initial gate voltage of a SET ramp.
    pub vg_start: f64,
    /// Gate-voltage increment per SET pulse (Fig. 1b sweeps this).
    pub vg_step: f64,
    /// Gate-voltage ceiling for SET ramps.
    pub vg_max: f64,
    /// Gate voltage during RESET (transistor fully on).
    pub vg_reset: f64,
    /// Initial source-line voltage of a RESET ramp.
    pub vsl_start: f64,
    /// Source-line increment per RESET pulse (Fig. 1c sweeps this).
    pub vsl_step: f64,
    /// Source-line ceiling for RESET ramps.
    pub vsl_max: f64,
    /// Pulse width in seconds (paper: 30 ns).
    pub pulse_width: f64,
    /// Acceptance band around the target, in level units (the paper's
    /// "error range").
    pub tolerance_levels: f64,
    /// Abort threshold on the pulse counter (the paper's "maximum pulse
    /// number").
    pub max_pulses: usize,
}

impl Default for WriteVerifyConfig {
    fn default() -> Self {
        Self {
            v_set: 2.0,
            vg_start: 0.72,
            vg_step: 0.02,
            vg_max: 1.6,
            vg_reset: 3.2,
            vsl_start: 0.8,
            vsl_step: 0.03,
            vsl_max: 3.0,
            pulse_width: 30e-9,
            tolerance_levels: 0.4,
            max_pulses: 200,
        }
    }
}

/// Outcome of programming one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellReport {
    /// Total pulses spent (SET + RESET).
    pub pulses: usize,
    /// Fractional level actually reached.
    pub achieved_level: f64,
    /// Whether the final state is inside the tolerance band.
    pub converged: bool,
}

/// Aggregate statistics for programming a region.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReport {
    /// Per-cell reports in row-major region order.
    pub cells: Vec<CellReport>,
    /// Total pulses across the region.
    pub total_pulses: usize,
    /// Number of cells that failed to converge.
    pub failures: usize,
}

/// Typed verify outcome of one programming pass — the summary every load
/// path propagates upward instead of dropping the report. Produced by both
/// the pulse path ([`ProgramReport::outcome`]) and the direct path
/// ([`CrossbarArray::program_direct`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramOutcome {
    /// Cells programmed.
    pub cells: usize,
    /// Cells whose verify readback missed the tolerance band.
    pub failures: usize,
}

impl ProgramOutcome {
    /// Fraction of cells that failed verify (0 for an empty outcome).
    pub fn failure_frac(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.failures as f64 / self.cells as f64
        }
    }

    /// Whether every cell converged.
    pub fn converged(&self) -> bool {
        self.failures == 0
    }

    /// Accumulates another outcome (multi-plane loads).
    pub fn merge(&mut self, other: ProgramOutcome) {
        self.cells += other.cells;
        self.failures += other.failures;
    }
}

impl ProgramReport {
    /// Mean pulses per cell.
    pub fn mean_pulses(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.total_pulses as f64 / self.cells.len() as f64
        }
    }

    /// Maximum pulses spent on any single cell.
    pub fn max_pulses(&self) -> usize {
        self.cells.iter().map(|c| c.pulses).max().unwrap_or(0)
    }

    /// The typed verify summary of this report.
    pub fn outcome(&self) -> ProgramOutcome {
        ProgramOutcome { cells: self.cells.len(), failures: self.failures }
    }

    /// RMS programming error across converged cells, in level units.
    pub fn rms_level_error(&self, targets: &[usize]) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .cells
            .iter()
            .zip(targets)
            .map(|(c, &t)| {
                let e = c.achieved_level - t as f64;
                e * e
            })
            .sum();
        (sum / self.cells.len() as f64).sqrt()
    }
}

/// The write-verify state machine.
///
/// # Examples
///
/// ```
/// use gramc_array::{WriteVerifyController, WriteVerifyConfig};
/// use gramc_device::{OneTOneR, DeviceParams, Nmos, CellNoise, LevelQuantizer};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none());
/// let wv = WriteVerifyController::new(WriteVerifyConfig::default(), LevelQuantizer::paper_default());
/// let report = wv.program_cell(&mut cell, 9, &mut rng).unwrap();
/// assert!(report.converged);
/// assert!((report.achieved_level - 9.0).abs() <= 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct WriteVerifyController {
    config: WriteVerifyConfig,
    quantizer: LevelQuantizer,
}

impl WriteVerifyController {
    /// Creates a controller with the given configuration and level grid.
    pub fn new(config: WriteVerifyConfig, quantizer: LevelQuantizer) -> Self {
        Self { config, quantizer }
    }

    /// Controller with the paper's defaults (4-bit levels over 1–100 µS,
    /// 30 ns pulses).
    pub fn paper_default() -> Self {
        Self::new(WriteVerifyConfig::default(), LevelQuantizer::paper_default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WriteVerifyConfig {
        &self.config
    }

    /// The level grid in use.
    pub fn quantizer(&self) -> &LevelQuantizer {
        &self.quantizer
    }

    /// Programs a single cell to `target_level` with verify-after-every-pulse.
    ///
    /// The loop alternates ramped SET and RESET phases: a SET ramp runs while
    /// the cell reads below the band, a RESET ramp while above. Every
    /// direction reversal restarts the ramp from its base voltage, which
    /// converges because the first pulses of a fresh ramp move the state only
    /// slightly.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::LevelOutOfRange`] if `target_level` exceeds the
    /// quantizer's maximum.
    pub fn program_cell<R: Rng + ?Sized>(
        &self,
        cell: &mut OneTOneR,
        target_level: usize,
        rng: &mut R,
    ) -> Result<CellReport, ArrayError> {
        if target_level > self.quantizer.max_level() {
            return Err(ArrayError::LevelOutOfRange {
                level: target_level,
                max: self.quantizer.max_level(),
            });
        }
        let cfg = &self.config;
        let target = target_level as f64;
        let mut vg = cfg.vg_start;
        let mut vsl = cfg.vsl_start;
        let mut pulses = 0;

        loop {
            let level = self.quantizer.fractional_level(cell.read(rng));
            let err = level - target;
            if err.abs() <= cfg.tolerance_levels {
                return Ok(CellReport { pulses, achieved_level: level, converged: true });
            }
            if pulses >= cfg.max_pulses {
                return Ok(CellReport { pulses, achieved_level: level, converged: false });
            }
            if err < 0.0 {
                // Under target: one SET pulse, then advance the V_g ramp.
                cell.set_pulse(vg, cfg.v_set, cfg.pulse_width, rng);
                vg = (vg + cfg.vg_step).min(cfg.vg_max);
                // Any SET restarts the RESET ramp.
                vsl = cfg.vsl_start;
            } else {
                // Over target: one RESET pulse, then advance the V_SL ramp.
                cell.reset_pulse(cfg.vg_reset, vsl, cfg.pulse_width, rng);
                vsl = (vsl + cfg.vsl_step).min(cfg.vsl_max);
                vg = cfg.vg_start;
            }
            pulses += 1;
        }
    }

    /// Programs a whole region of a crossbar to the given level targets.
    ///
    /// # Errors
    ///
    /// * Bounds/shape errors from the region or target matrix.
    /// * [`ArrayError::ProgrammingFailed`] if any cell fails to converge
    ///   (the report is still embedded in the error via a second call with
    ///   a higher budget if needed — callers who tolerate failures should
    ///   call [`program_region_lossy`](Self::program_region_lossy)).
    pub fn program_region<R: Rng + ?Sized>(
        &self,
        array: &mut CrossbarArray,
        region: ActiveRegion,
        target_levels: &[usize],
        rng: &mut R,
    ) -> Result<ProgramReport, ArrayError> {
        let report = self.program_region_lossy(array, region, target_levels, rng)?;
        if report.failures > 0 {
            return Err(ArrayError::ProgrammingFailed {
                failed_cells: report.failures,
                total_cells: report.cells.len(),
            });
        }
        Ok(report)
    }

    /// Like [`program_region`](Self::program_region) but returns the report
    /// even when cells failed to converge.
    ///
    /// # Errors
    ///
    /// Bounds/shape errors only.
    pub fn program_region_lossy<R: Rng + ?Sized>(
        &self,
        array: &mut CrossbarArray,
        region: ActiveRegion,
        target_levels: &[usize],
        rng: &mut R,
    ) -> Result<ProgramReport, ArrayError> {
        array.check_region(region)?;
        if target_levels.len() != region.rows * region.cols {
            return Err(ArrayError::ShapeMismatch {
                expected: (region.rows, region.cols),
                found: (target_levels.len(), 1),
            });
        }
        let mut cells = Vec::with_capacity(target_levels.len());
        let mut total_pulses = 0;
        let mut failures = 0;
        for i in 0..region.rows {
            for j in 0..region.cols {
                let target = target_levels[i * region.cols + j];
                let (row, col) = (region.row0 + i, region.col0 + j);
                // A stuck cell (fault injection) reads its rail no matter
                // how it is pulsed: verify can never close the loop, so
                // report the non-convergence directly instead of burning
                // the full pulse budget. Consumes no RNG, keeping healthy
                // cells' pulse streams identical to the fault-free run.
                if let Some(g_stuck) = array.stuck_conductance_at(row, col) {
                    if target > self.quantizer.max_level() {
                        return Err(ArrayError::LevelOutOfRange {
                            level: target,
                            max: self.quantizer.max_level(),
                        });
                    }
                    let achieved_level = self.quantizer.fractional_level(g_stuck);
                    let converged =
                        (achieved_level - target as f64).abs() <= self.config.tolerance_levels;
                    if !converged {
                        failures += 1;
                    }
                    cells.push(CellReport { pulses: 0, achieved_level, converged });
                    continue;
                }
                let cell = array.cell_mut(row, col);
                let rep = self.program_cell(cell, target, rng)?;
                total_pulses += rep.pulses;
                if !rep.converged {
                    failures += 1;
                }
                cells.push(rep);
            }
        }
        #[cfg(feature = "telemetry")]
        {
            array.telemetry().add_write_cycles(cells.len() as u64);
            array.telemetry().add_write_pulses(total_pulses as u64);
        }
        Ok(ProgramReport { cells, total_pulses, failures })
    }

    /// Programs a region to target *conductances* (siemens) by quantizing to
    /// the nearest level first. Shape must match the region.
    ///
    /// # Errors
    ///
    /// Same conditions as [`program_region`](Self::program_region).
    pub fn program_conductances<R: Rng + ?Sized>(
        &self,
        array: &mut CrossbarArray,
        region: ActiveRegion,
        targets: &Matrix,
        rng: &mut R,
    ) -> Result<ProgramReport, ArrayError> {
        if targets.shape() != region.shape() {
            return Err(ArrayError::ShapeMismatch {
                expected: region.shape(),
                found: targets.shape(),
            });
        }
        let levels: Vec<usize> =
            targets.as_slice().iter().map(|&g| self.quantizer.level_of(g)).collect();
        self.program_region(array, region, &levels, rng)
    }
}

/// One point of a Fig. 1 staircase: `(pulse_number, fractional_level)`.
pub type StaircasePoint = (usize, f64);

/// Runs the Fig. 1(b) experiment: a blind SET ramp (no verify) with the given
/// `vg_step`, recording the level after each pulse.
///
/// `initial_level` reproduces the paper's "different initial states".
pub fn set_staircase<R: Rng + ?Sized>(
    cell: &mut OneTOneR,
    config: &WriteVerifyConfig,
    quantizer: &LevelQuantizer,
    vg_step: f64,
    initial_level: usize,
    pulses: usize,
    rng: &mut R,
) -> Vec<StaircasePoint> {
    cell.program_conductance(quantizer.conductance_of(initial_level));
    let mut vg = config.vg_start;
    let mut out = Vec::with_capacity(pulses);
    for p in 0..pulses {
        cell.set_pulse(vg, config.v_set, config.pulse_width, rng);
        vg = (vg + vg_step).min(config.vg_max);
        out.push((p + 1, quantizer.fractional_level(cell.read(rng))));
    }
    out
}

/// Runs the Fig. 1(c) experiment: a blind RESET ramp with the given
/// `vsl_step` starting from `initial_level` (the paper starts at level 15).
pub fn reset_staircase<R: Rng + ?Sized>(
    cell: &mut OneTOneR,
    config: &WriteVerifyConfig,
    quantizer: &LevelQuantizer,
    vsl_step: f64,
    initial_level: usize,
    pulses: usize,
    rng: &mut R,
) -> Vec<StaircasePoint> {
    cell.program_conductance(quantizer.conductance_of(initial_level));
    let mut vsl = config.vsl_start;
    let mut out = Vec::with_capacity(pulses);
    for p in 0..pulses {
        cell.reset_pulse(config.vg_reset, vsl, config.pulse_width, rng);
        vsl = (vsl + vsl_step).min(config.vsl_max);
        out.push((p + 1, quantizer.fractional_level(cell.read(rng))));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::ArrayConfig;
    use gramc_device::{CellNoise, DeviceParams, Nmos};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quiet_cell() -> OneTOneR {
        OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none())
    }

    #[test]
    fn programs_every_level() {
        let mut rng = StdRng::seed_from_u64(21);
        let wv = WriteVerifyController::paper_default();
        for target in 0..16 {
            let mut cell = quiet_cell();
            let rep = wv.program_cell(&mut cell, target, &mut rng).unwrap();
            assert!(rep.converged, "level {target} did not converge: {rep:?}");
            assert!(
                (rep.achieved_level - target as f64).abs() <= wv.config().tolerance_levels + 1e-9,
                "level {target}: achieved {:.2}",
                rep.achieved_level
            );
        }
    }

    #[test]
    fn programs_with_noise_enabled() {
        let mut rng = StdRng::seed_from_u64(22);
        let wv = WriteVerifyController::paper_default();
        for target in [0usize, 5, 10, 15] {
            let mut cell =
                OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
            let rep = wv.program_cell(&mut cell, target, &mut rng).unwrap();
            assert!(rep.converged, "noisy level {target}: {rep:?}");
        }
    }

    #[test]
    fn reprogramming_downward_uses_reset() {
        let mut rng = StdRng::seed_from_u64(23);
        let wv = WriteVerifyController::paper_default();
        let mut cell = quiet_cell();
        wv.program_cell(&mut cell, 14, &mut rng).unwrap();
        let rep = wv.program_cell(&mut cell, 3, &mut rng).unwrap();
        assert!(rep.converged, "{rep:?}");
        assert!((rep.achieved_level - 3.0).abs() <= 0.4 + 1e-9);
    }

    #[test]
    fn rejects_out_of_range_level() {
        let mut rng = StdRng::seed_from_u64(24);
        let wv = WriteVerifyController::paper_default();
        let mut cell = quiet_cell();
        assert!(matches!(
            wv.program_cell(&mut cell, 16, &mut rng),
            Err(ArrayError::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn pulse_budget_is_enforced() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut cfg = WriteVerifyConfig::default();
        cfg.max_pulses = 2; // absurdly small
        let wv = WriteVerifyController::new(cfg, LevelQuantizer::paper_default());
        let mut cell = quiet_cell();
        let rep = wv.program_cell(&mut cell, 15, &mut rng).unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.pulses, 2);
    }

    #[test]
    fn program_region_reports_statistics() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut array = CrossbarArray::new(ArrayConfig::ideal(2, 3), &mut rng);
        let wv = WriteVerifyController::paper_default();
        let region = ActiveRegion::full(2, 3);
        let targets = vec![0, 3, 6, 9, 12, 15];
        let report = wv.program_region(&mut array, region, &targets, &mut rng).unwrap();
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.failures, 0);
        assert!(report.mean_pulses() > 0.0);
        assert!(report.rms_level_error(&targets) <= 0.4 + 1e-9);
        // And the conductances actually landed on the targets.
        let g = array.conductances_ideal(region).unwrap();
        let q = wv.quantizer();
        for (k, &t) in targets.iter().enumerate() {
            let lvl = q.fractional_level(g[(k / 3, k % 3)]);
            assert!((lvl - t as f64).abs() <= 0.4 + 1e-9, "cell {k}: {lvl}");
        }
    }

    #[test]
    fn target_length_is_validated() {
        let mut rng = StdRng::seed_from_u64(27);
        let mut array = CrossbarArray::new(ArrayConfig::ideal(2, 2), &mut rng);
        let wv = WriteVerifyController::paper_default();
        let region = ActiveRegion::full(2, 2);
        assert!(matches!(
            wv.program_region(&mut array, region, &[1, 2, 3], &mut rng),
            Err(ArrayError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn set_staircase_is_monotone_and_reaches_top() {
        let mut rng = StdRng::seed_from_u64(28);
        let wv = WriteVerifyController::paper_default();
        let mut cell = quiet_cell();
        let pts = set_staircase(&mut cell, wv.config(), wv.quantizer(), 0.02, 0, 30, &mut rng);
        assert_eq!(pts.len(), 30);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.3, "staircase dipped: {:?}", w);
        }
        assert!(pts.last().unwrap().1 >= 14.0, "top level {:?}", pts.last());
    }

    #[test]
    fn smaller_vg_step_climbs_slower() {
        let mut rng = StdRng::seed_from_u64(29);
        let wv = WriteVerifyController::paper_default();
        let mut c1 = quiet_cell();
        let slow = set_staircase(&mut c1, wv.config(), wv.quantizer(), 0.01, 0, 25, &mut rng);
        let mut c2 = quiet_cell();
        let fast = set_staircase(&mut c2, wv.config(), wv.quantizer(), 0.02, 0, 25, &mut rng);
        assert!(
            fast.last().unwrap().1 > slow.last().unwrap().1 + 2.0,
            "fast {:?} vs slow {:?}",
            fast.last(),
            slow.last()
        );
    }

    #[test]
    fn reset_staircase_descends_and_larger_step_is_faster() {
        let mut rng = StdRng::seed_from_u64(30);
        let wv = WriteVerifyController::paper_default();
        let mut c1 = quiet_cell();
        let slow = reset_staircase(&mut c1, wv.config(), wv.quantizer(), 0.02, 15, 30, &mut rng);
        let mut c2 = quiet_cell();
        let fast = reset_staircase(&mut c2, wv.config(), wv.quantizer(), 0.03, 15, 30, &mut rng);
        for w in slow.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.3, "reset staircase rose: {:?}", w);
        }
        assert!(fast.last().unwrap().1 < slow.last().unwrap().1 + 1.0);
        assert!(fast.last().unwrap().1 <= 1.5, "did not reach bottom: {:?}", fast.last());
    }
}
