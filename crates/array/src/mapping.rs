//! Matrix → conductance mapping.
//!
//! The paper maps signed real matrices onto 4-bit conductance levels
//! ("all matrices were mapped to one or two RRAM arrays with 4-bit
//! quantization"), and improves MVM precision by bit slicing: "two RRAM
//! arrays are used to store the most significant 4 bits and the least
//! significant 4 bits of a weight matrix, respectively".
//!
//! Two signed encodings are provided:
//!
//! * [`SignedEncoding::Differential`] — each entry is the difference of a
//!   positive-array and a negative-array conductance. The level-0 baseline
//!   (1 µS) cancels exactly in the difference.
//! * [`SignedEncoding::Offset`] — a single array stores `a + a_max` shifted
//!   into the positive range; the offset is subtracted digitally. Used by
//!   the ablation study.

use gramc_device::LevelQuantizer;
use gramc_linalg::Matrix;

use crate::error::ArrayError;

/// How signed matrix entries are represented on unipolar conductances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignedEncoding {
    /// Two arrays (or two column groups): `a ∝ G⁺ − G⁻`.
    #[default]
    Differential,
    /// One array with a digital offset: `a ∝ G − G_offset`.
    Offset,
}

/// A matrix of discrete conductance levels (what actually gets programmed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl LevelMatrix {
    /// Creates a level matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), rows * cols, "level buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Level at `(i, j)`.
    pub fn level(&self, i: usize, j: usize) -> u8 {
        self.data[i * self.cols + j]
    }

    /// Row-major level buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Levels as `usize` targets for the write-verify controller.
    pub fn to_targets(&self) -> Vec<usize> {
        self.data.iter().map(|&l| l as usize).collect()
    }

    /// Converts levels to target conductances on the given grid.
    pub fn to_conductances(&self, quantizer: &LevelQuantizer) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            quantizer.conductance_of(self.level(i, j) as usize)
        })
    }
}

/// A signed matrix mapped to conductance levels, with everything needed to
/// decode analog currents back to matrix units.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedMatrix {
    /// Positive-part levels (or the offset-encoded levels).
    pub positive: LevelMatrix,
    /// Negative-part levels (`None` for offset encoding).
    pub negative: Option<LevelMatrix>,
    /// Matrix units per level: `a ≈ (level⁺ − level⁻) · scale`.
    pub scale: f64,
    /// Level subtracted digitally for offset encoding (half the level range).
    pub offset_levels: f64,
    /// Encoding used.
    pub encoding: SignedEncoding,
}

impl MappedMatrix {
    /// Shape of the encoded matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.positive.shape()
    }

    /// Reconstructs the quantized matrix (what the analog computation
    /// effectively uses). The difference to the original is the quantization
    /// error that dominates the paper's ~10 % Fig. 4 accuracy budget.
    pub fn dequantize(&self) -> Matrix {
        let (rows, cols) = self.shape();
        match self.encoding {
            SignedEncoding::Differential => {
                let neg = self.negative.as_ref().expect("differential mapping has two arrays");
                Matrix::from_fn(rows, cols, |i, j| {
                    (self.positive.level(i, j) as f64 - neg.level(i, j) as f64) * self.scale
                })
            }
            SignedEncoding::Offset => Matrix::from_fn(rows, cols, |i, j| {
                (self.positive.level(i, j) as f64 - self.offset_levels) * self.scale
            }),
        }
    }
}

/// Maps real matrices to conductance levels and decodes analog currents.
///
/// # Examples
///
/// ```
/// use gramc_array::{ConductanceMapper, SignedEncoding};
/// use gramc_device::LevelQuantizer;
/// use gramc_linalg::Matrix;
///
/// let mapper = ConductanceMapper::new(LevelQuantizer::paper_default(), SignedEncoding::Differential);
/// let a = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 0.0]]);
/// let mapped = mapper.map(&a).unwrap();
/// let a_hat = mapped.dequantize();
/// // 4-bit quantization: worst-case error is half a level.
/// assert!((&a_hat - &a).max_abs() <= mapped.scale * 0.5 + 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ConductanceMapper {
    quantizer: LevelQuantizer,
    encoding: SignedEncoding,
}

impl ConductanceMapper {
    /// Creates a mapper for the given level grid and signed encoding.
    pub fn new(quantizer: LevelQuantizer, encoding: SignedEncoding) -> Self {
        Self { quantizer, encoding }
    }

    /// The paper's default: 4-bit differential mapping on 1–100 µS.
    pub fn paper_default() -> Self {
        Self::new(LevelQuantizer::paper_default(), SignedEncoding::Differential)
    }

    /// The level grid.
    pub fn quantizer(&self) -> &LevelQuantizer {
        &self.quantizer
    }

    /// The signed encoding.
    pub fn encoding(&self) -> SignedEncoding {
        self.encoding
    }

    /// Maps matrix `a` to conductance levels.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidArgument`] if `a` is empty or all-zero
    /// (no scale can be defined).
    pub fn map(&self, a: &Matrix) -> Result<MappedMatrix, ArrayError> {
        let (rows, cols) = a.shape();
        if rows == 0 || cols == 0 {
            return Err(ArrayError::InvalidArgument("cannot map an empty matrix"));
        }
        let a_max = a.max_abs();
        if a_max == 0.0 {
            return Err(ArrayError::InvalidArgument("cannot map an all-zero matrix"));
        }
        let max_level = self.quantizer.max_level() as f64;
        match self.encoding {
            SignedEncoding::Differential => {
                let scale = a_max / max_level;
                let mut pos = Vec::with_capacity(rows * cols);
                let mut neg = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let v = a[(i, j)] / scale; // in [-max_level, max_level]
                        let lvl = v.abs().round().min(max_level) as u8;
                        if a[(i, j)] >= 0.0 {
                            pos.push(lvl);
                            neg.push(0);
                        } else {
                            pos.push(0);
                            neg.push(lvl);
                        }
                    }
                }
                Ok(MappedMatrix {
                    positive: LevelMatrix::from_vec(rows, cols, pos),
                    negative: Some(LevelMatrix::from_vec(rows, cols, neg)),
                    scale,
                    offset_levels: 0.0,
                    encoding: self.encoding,
                })
            }
            SignedEncoding::Offset => {
                // a ∈ [−a_max, a_max] shifted to [0, max_level].
                let offset_levels = max_level / 2.0;
                let scale = a_max / offset_levels;
                let mut levels = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let v = a[(i, j)] / scale + offset_levels;
                        levels.push(v.round().clamp(0.0, max_level) as u8);
                    }
                }
                Ok(MappedMatrix {
                    positive: LevelMatrix::from_vec(rows, cols, levels),
                    negative: None,
                    scale,
                    offset_levels,
                    encoding: self.encoding,
                })
            }
        }
    }

    /// Decodes differential analog currents back to matrix units:
    /// `y = (I⁺ − I⁻) / (ΔG·scale⁻¹·V)` — concretely, given currents from
    /// the positive and negative arrays driven by the *same* voltages,
    /// returns the equivalent `A·v` in matrix units, where the drive encoded
    /// `v` in volts-per-unit `v_scale`.
    ///
    /// For offset encoding, pass the offset current `I_off = G_off·Σv` via
    /// `i_neg` (computed digitally from the voltage sum).
    pub fn decode_currents(
        &self,
        mapped: &MappedMatrix,
        i_pos: &[f64],
        i_neg: &[f64],
        v_scale: f64,
    ) -> Vec<f64> {
        let conv = mapped.scale / (self.quantizer.step() * v_scale);
        i_pos.iter().zip(i_neg).map(|(p, n)| (p - n) * conv).collect()
    }
}

/// An 8-bit weight matrix sliced into MSB/LSB nibbles (paper Fig. 5's INT8
/// path): `|a| ≈ (16·hi + lo) · scale`, with the sign handled by the
/// differential pair of each nibble array.
#[derive(Debug, Clone, PartialEq)]
pub struct BitSlicedMatrix {
    /// MSB nibble, positive part.
    pub hi_pos: LevelMatrix,
    /// MSB nibble, negative part.
    pub hi_neg: LevelMatrix,
    /// LSB nibble, positive part.
    pub lo_pos: LevelMatrix,
    /// LSB nibble, negative part.
    pub lo_neg: LevelMatrix,
    /// Matrix units per integer unit: `a ≈ int8 · scale`, `int8 ∈ [−255, 255]`.
    pub scale: f64,
}

impl BitSlicedMatrix {
    /// Slices `a` into two 4-bit nibble planes with differential sign
    /// encoding (8-bit magnitude in total).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidArgument`] if `a` is empty or all-zero.
    pub fn map(a: &Matrix) -> Result<Self, ArrayError> {
        let (rows, cols) = a.shape();
        if rows == 0 || cols == 0 {
            return Err(ArrayError::InvalidArgument("cannot map an empty matrix"));
        }
        let a_max = a.max_abs();
        if a_max == 0.0 {
            return Err(ArrayError::InvalidArgument("cannot map an all-zero matrix"));
        }
        let scale = a_max / 255.0;
        let n = rows * cols;
        let (mut hp, mut hn, mut lp, mut ln_) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        for i in 0..rows {
            for j in 0..cols {
                let v = a[(i, j)];
                let mag = (v.abs() / scale).round().min(255.0) as u16;
                let hi = (mag >> 4) as u8;
                let lo = (mag & 0xF) as u8;
                if v >= 0.0 {
                    hp.push(hi);
                    lp.push(lo);
                    hn.push(0);
                    ln_.push(0);
                } else {
                    hp.push(0);
                    lp.push(0);
                    hn.push(hi);
                    ln_.push(lo);
                }
            }
        }
        Ok(Self {
            hi_pos: LevelMatrix::from_vec(rows, cols, hp),
            hi_neg: LevelMatrix::from_vec(rows, cols, hn),
            lo_pos: LevelMatrix::from_vec(rows, cols, lp),
            lo_neg: LevelMatrix::from_vec(rows, cols, ln_),
            scale,
        })
    }

    /// Shape of the encoded matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.hi_pos.shape()
    }

    /// Reconstructs the 8-bit-quantized matrix.
    pub fn dequantize(&self) -> Matrix {
        let (rows, cols) = self.shape();
        Matrix::from_fn(rows, cols, |i, j| {
            let pos = 16.0 * self.hi_pos.level(i, j) as f64 + self.lo_pos.level(i, j) as f64;
            let neg = 16.0 * self.hi_neg.level(i, j) as f64 + self.lo_neg.level(i, j) as f64;
            (pos - neg) * self.scale
        })
    }

    /// Recombines nibble-plane currents digitally:
    /// `y = (16·(I_hi⁺ − I_hi⁻) + (I_lo⁺ − I_lo⁻)) · scale / (ΔG·v_scale)`.
    pub fn decode_currents(
        &self,
        quantizer: &LevelQuantizer,
        i_hi_pos: &[f64],
        i_hi_neg: &[f64],
        i_lo_pos: &[f64],
        i_lo_neg: &[f64],
        v_scale: f64,
    ) -> Vec<f64> {
        let conv = self.scale / (quantizer.step() * v_scale);
        i_hi_pos
            .iter()
            .zip(i_hi_neg)
            .zip(i_lo_pos.iter().zip(i_lo_neg))
            .map(|((hp, hn), (lp, ln_))| (16.0 * (hp - hn) + (lp - ln_)) * conv)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::random::{gaussian_matrix, seeded_rng};

    #[test]
    fn differential_quantization_error_is_half_level() {
        let mut rng = seeded_rng(31);
        let a = gaussian_matrix(&mut rng, 10, 10);
        let mapper = ConductanceMapper::paper_default();
        let mapped = mapper.map(&a).unwrap();
        let err = (&mapped.dequantize() - &a).max_abs();
        assert!(err <= 0.5 * mapped.scale + 1e-12, "err {err}");
    }

    #[test]
    fn differential_preserves_signs() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[-0.5, 0.5]]);
        let mapped = ConductanceMapper::paper_default().map(&a).unwrap();
        let neg = mapped.negative.as_ref().unwrap();
        assert_eq!(mapped.positive.level(0, 0), 15);
        assert_eq!(neg.level(0, 0), 0);
        assert_eq!(mapped.positive.level(0, 1), 0);
        assert_eq!(neg.level(0, 1), 15);
    }

    #[test]
    fn offset_encoding_roundtrips_within_one_level() {
        let mut rng = seeded_rng(32);
        let a = gaussian_matrix(&mut rng, 8, 8);
        let mapper =
            ConductanceMapper::new(LevelQuantizer::paper_default(), SignedEncoding::Offset);
        let mapped = mapper.map(&a).unwrap();
        assert!(mapped.negative.is_none());
        let err = (&mapped.dequantize() - &a).max_abs();
        // Offset encoding halves the usable dynamic range: one full level.
        assert!(err <= 1.0 * mapped.scale + 1e-12, "err {err}");
    }

    #[test]
    fn offset_resolution_is_coarser_than_differential() {
        let mut rng = seeded_rng(33);
        let a = gaussian_matrix(&mut rng, 12, 12);
        let q = LevelQuantizer::paper_default();
        let d = ConductanceMapper::new(q.clone(), SignedEncoding::Differential).map(&a).unwrap();
        let o = ConductanceMapper::new(q, SignedEncoding::Offset).map(&a).unwrap();
        let err_d = (&d.dequantize() - &a).fro_norm();
        let err_o = (&o.dequantize() - &a).fro_norm();
        assert!(err_o > err_d, "offset {err_o} should be worse than differential {err_d}");
    }

    #[test]
    fn bit_sliced_roundtrip_is_8_bit_accurate() {
        let mut rng = seeded_rng(34);
        let a = gaussian_matrix(&mut rng, 10, 10);
        let sliced = BitSlicedMatrix::map(&a).unwrap();
        let err = (&sliced.dequantize() - &a).max_abs();
        assert!(err <= 0.5 * sliced.scale + 1e-12, "err {err}, scale {}", sliced.scale);
        // 8-bit is 16× finer than 4-bit.
        let four_bit = ConductanceMapper::paper_default().map(&a).unwrap();
        assert!(sliced.scale < four_bit.scale / 15.0);
    }

    #[test]
    fn nibbles_stay_within_4_bits() {
        let mut rng = seeded_rng(35);
        let a = gaussian_matrix(&mut rng, 6, 6);
        let sliced = BitSlicedMatrix::map(&a).unwrap();
        for plane in [&sliced.hi_pos, &sliced.hi_neg, &sliced.lo_pos, &sliced.lo_neg] {
            assert!(plane.as_slice().iter().all(|&l| l <= 15));
        }
    }

    #[test]
    fn decode_currents_inverts_ideal_mvm() {
        // Ideal conductances + ideal currents must decode to A·v exactly
        // (up to quantization of A).
        let a = Matrix::from_rows(&[&[0.8, -0.4], &[0.2, 0.6]]);
        let mapper = ConductanceMapper::paper_default();
        let mapped = mapper.map(&a).unwrap();
        let q = mapper.quantizer();
        let g_pos = mapped.positive.to_conductances(q);
        let g_neg = mapped.negative.as_ref().unwrap().to_conductances(q);
        let v_scale = 0.2; // volts per matrix unit of input
        let x = [0.5, -1.0];
        let v: Vec<f64> = x.iter().map(|u| u * v_scale).collect();
        let i_pos = g_pos.matvec(&v);
        let i_neg = g_neg.matvec(&v);
        let y = mapper.decode_currents(&mapped, &i_pos, &i_neg, v_scale);
        let expected = mapped.dequantize().matvec(&x);
        for (u, w) in y.iter().zip(&expected) {
            assert!((u - w).abs() < 1e-9, "{y:?} vs {expected:?}");
        }
    }

    #[test]
    fn bit_sliced_decode_inverts_ideal_mvm() {
        let a = Matrix::from_rows(&[&[0.7, -0.3], &[-0.9, 0.1]]);
        let sliced = BitSlicedMatrix::map(&a).unwrap();
        let q = LevelQuantizer::paper_default();
        let v_scale = 0.1;
        let x = [1.0, 0.5];
        let v: Vec<f64> = x.iter().map(|u| u * v_scale).collect();
        let i_hp = sliced.hi_pos.to_conductances(&q).matvec(&v);
        let i_hn = sliced.hi_neg.to_conductances(&q).matvec(&v);
        let i_lp = sliced.lo_pos.to_conductances(&q).matvec(&v);
        let i_ln = sliced.lo_neg.to_conductances(&q).matvec(&v);
        let y = sliced.decode_currents(&q, &i_hp, &i_hn, &i_lp, &i_ln, v_scale);
        let expected = sliced.dequantize().matvec(&x);
        for (u, w) in y.iter().zip(&expected) {
            assert!((u - w).abs() < 1e-9, "{y:?} vs {expected:?}");
        }
    }

    #[test]
    fn empty_and_zero_rejected() {
        let mapper = ConductanceMapper::paper_default();
        assert!(mapper.map(&Matrix::zeros(0, 0)).is_err());
        assert!(mapper.map(&Matrix::zeros(3, 3)).is_err());
        assert!(BitSlicedMatrix::map(&Matrix::zeros(2, 2)).is_err());
    }
}
