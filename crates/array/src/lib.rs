//! # gramc-array
//!
//! Crossbar-array substrate for GRAMC: the 128×128 1T1R array with its
//! region-selecting drivers, the paper's on-chip write-verify scheme
//! (Fig. 1 / blue path of Fig. 3), and the signed/bit-sliced conductance
//! mapping used by all four analog matrix primitives.
//!
//! Layering:
//!
//! * [`CrossbarArray`] — cells + drivers + analog read/MVM fast paths,
//! * [`WriteVerifyController`] — pulse-level program-and-verify, plus the
//!   Fig. 1(b)/(c) staircase experiments ([`set_staircase`] /
//!   [`reset_staircase`]),
//! * [`ConductanceMapper`] / [`BitSlicedMatrix`] — signed 4-bit and sliced
//!   8-bit matrix encodings with current decoders.
//!
//! # Examples
//!
//! ```
//! use gramc_array::{CrossbarArray, ArrayConfig, ActiveRegion, WriteVerifyController};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), gramc_array::ArrayError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut xbar = CrossbarArray::new(ArrayConfig::ideal(2, 2), &mut rng);
//! let wv = WriteVerifyController::paper_default();
//! let region = ActiveRegion::full(2, 2);
//! let report = wv.program_region(&mut xbar, region, &[3, 7, 11, 15], &mut rng)?;
//! assert_eq!(report.failures, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod crossbar;
mod error;
mod mapping;
mod write_verify;

pub use crossbar::{ActiveRegion, ArrayConfig, CrossbarArray, PAPER_ARRAY_SIZE};
pub use error::ArrayError;
pub use mapping::{BitSlicedMatrix, ConductanceMapper, LevelMatrix, MappedMatrix, SignedEncoding};
pub use write_verify::{
    reset_staircase, set_staircase, CellReport, ProgramReport, StaircasePoint,
    WriteVerifyConfig, WriteVerifyController,
};
