//! # gramc-array
//!
//! Crossbar-array substrate for GRAMC: the 128×128 1T1R array with its
//! region-selecting drivers, the paper's on-chip write-verify scheme
//! (Fig. 1 / blue path of Fig. 3), and the signed/bit-sliced conductance
//! mapping used by all four analog matrix primitives.
//!
//! Layering:
//!
//! * [`CrossbarArray`] — cells + drivers + analog read/MVM fast paths,
//! * [`WriteVerifyController`] — pulse-level program-and-verify, plus the
//!   Fig. 1(b)/(c) staircase experiments ([`set_staircase`] /
//!   [`reset_staircase`]),
//! * [`ConductanceMapper`] / [`BitSlicedMatrix`] — signed 4-bit and sliced
//!   8-bit matrix encodings with current decoders.
//!
//! # Conductance cache and the batched fast path
//!
//! A crosspoint array performs an MVM in a single analog step; what costs
//! the *simulator* is reconstructing the effective-conductance matrix from
//! the per-cell compact models. [`CrossbarArray`] therefore keeps a
//! **generation-tagged snapshot cache** with a strict invalidation
//! contract:
//!
//! * **Reads are cached.** [`CrossbarArray::effective_conductances`],
//!   [`CrossbarArray::row_currents`] / [`CrossbarArray::col_currents`] and
//!   the batched [`CrossbarArray::row_currents_batch`] /
//!   [`CrossbarArray::col_currents_batch`] all serve from a per-region
//!   snapshot, rebuilding it only on the first read after a mutation.
//! * **Mutations invalidate.** [`CrossbarArray::program_direct`] and every
//!   [`CrossbarArray::cell_mut`] borrow (the write-verify controller's
//!   entry point) bump [`CrossbarArray::generation`] and drop all
//!   snapshots. External controllers driving cells through other means
//!   must call [`CrossbarArray::invalidate_cache`] themselves.
//! * **Noisy reads stay fresh.** [`CrossbarArray::conductances`] models an
//!   ADC sample with per-cell read noise and is never cached.
//! * **Faults invalidate too.** Under the `fault-inject` feature,
//!   installing/clearing a [`gramc_device::FaultPlan`] and advancing the
//!   fault clock (conductance drift) invalidate the cache the same way a
//!   programming pass does, so snapshots never serve a stale fault state.
//!
//! The batched entry points take a `Matrix` whose rows are drive vectors,
//! amortize one snapshot (plus one transpose) over the whole batch, and
//! run the products through `gramc_linalg`'s blocked matmul. Their outputs
//! are bit-identical to looping the scalar calls with the same RNG — the
//! regression tests in `crossbar.rs` pin both properties (bit-equality and
//! stale-cache invalidation).
//!
//! # Examples
//!
//! ```
//! use gramc_array::{CrossbarArray, ArrayConfig, ActiveRegion, WriteVerifyController};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), gramc_array::ArrayError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut xbar = CrossbarArray::new(ArrayConfig::ideal(2, 2), &mut rng);
//! let wv = WriteVerifyController::paper_default();
//! let region = ActiveRegion::full(2, 2);
//! let report = wv.program_region(&mut xbar, region, &[3, 7, 11, 15], &mut rng)?;
//! assert_eq!(report.failures, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod crossbar;
mod error;
mod mapping;
mod write_verify;

pub use crossbar::{ActiveRegion, ArrayConfig, CrossbarArray, PAPER_ARRAY_SIZE};
pub use error::ArrayError;
pub use mapping::{BitSlicedMatrix, ConductanceMapper, LevelMatrix, MappedMatrix, SignedEncoding};
pub use write_verify::{
    reset_staircase, set_staircase, CellReport, ProgramOutcome, ProgramReport, StaircasePoint,
    WriteVerifyConfig, WriteVerifyController,
};

#[cfg(feature = "fault-inject")]
pub use gramc_device::{FaultConfig, FaultKind, FaultPlan};
