//! Synthetic air-quality regression set — the offline substitute for the
//! PM2.5 dataset of Fig. 4(c) (substitution documented in DESIGN.md §2).
//!
//! The paper's PINV experiment solves a 128-sample × 6-feature linear
//! regression. This generator produces a design matrix with realistic
//! meteorological correlations (temperature and dew point co-vary; pressure
//! anti-correlates with temperature; wind and precipitation are skewed) and
//! a positive ground-truth weight vector, matching the shape and the output
//! range (~0–0.15) of the paper's figure.

use rand::Rng;

use gramc_linalg::Matrix;

/// A synthetic regression problem `y ≈ X·w`.
#[derive(Debug, Clone)]
pub struct Pm25Dataset {
    /// Design matrix, `samples × 6`, feature-normalized to `[-1, 1]`-ish.
    pub design: Matrix,
    /// Observed responses with noise, length `samples`.
    pub response: Vec<f64>,
    /// Ground-truth weights used to generate the responses.
    pub true_weights: Vec<f64>,
}

/// Feature names, for reports.
pub const FEATURE_NAMES: [&str; 6] =
    ["temperature", "dew_point", "pressure", "wind_speed", "precip_hours", "season_index"];

fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Pm25Dataset {
    /// Generates `samples` observations (the paper uses 128) with relative
    /// observation noise `noise` (e.g. 0.05).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, samples: usize, noise: f64) -> Self {
        assert!(samples > 6, "need more samples than features");
        // Ground truth: positive weights in a range that puts X·w in the
        // paper's ~0–0.15 output window.
        let true_weights = vec![0.055, 0.040, 0.020, 0.035, 0.015, 0.025];
        let mut design = Matrix::zeros(samples, 6);
        let mut response = Vec::with_capacity(samples);
        for i in 0..samples {
            // Latent season phase drives the correlated block.
            let season = (i as f64 / samples as f64) * std::f64::consts::TAU;
            let temp = 0.6 * season.sin() + 0.25 * std_normal(rng);
            let dew = 0.8 * temp + 0.2 * std_normal(rng);
            let pressure = -0.5 * temp + 0.3 * std_normal(rng);
            // Skewed positive variables, normalized to ~[0, 1].
            let wind = (std_normal(rng).abs() * 0.5).min(1.5) / 1.5;
            let precip = (std_normal(rng).abs() * 0.4).min(1.2) / 1.2;
            let season_idx = season.cos() * 0.5 + 0.5;
            let row = [temp, dew, pressure, wind, precip, season_idx];
            for (j, v) in row.iter().enumerate() {
                design[(i, j)] = *v;
            }
            let clean: f64 = row.iter().zip(&true_weights).map(|(x, w)| x * w).sum();
            response.push(clean * (1.0 + noise * std_normal(rng)) + 0.01 * noise * std_normal(rng));
        }
        Self { design, response, true_weights }
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.design.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::{qr, vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_matches_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = Pm25Dataset::generate(&mut rng, 128, 0.05);
        assert_eq!(ds.design.shape(), (128, 6));
        assert_eq!(ds.response.len(), 128);
        assert_eq!(ds.samples(), 128);
    }

    #[test]
    fn least_squares_recovers_true_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = Pm25Dataset::generate(&mut rng, 512, 0.02);
        let w = qr::least_squares(&ds.design, &ds.response).unwrap();
        let err = vector::rel_error(&w, &ds.true_weights);
        assert!(err < 0.15, "recovered {w:?} vs {:?} (err {err})", ds.true_weights);
    }

    #[test]
    fn features_are_correlated_as_designed() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = Pm25Dataset::generate(&mut rng, 1000, 0.05);
        let col = |j: usize| -> Vec<f64> { ds.design.col(j) };
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let ma = a.iter().sum::<f64>() / n;
            let mb = b.iter().sum::<f64>() / n;
            let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
            let sa = (a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n).sqrt();
            let sb = (b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / n).sqrt();
            cov / (sa * sb)
        };
        let temp = col(0);
        let dew = col(1);
        let pressure = col(2);
        assert!(corr(&temp, &dew) > 0.7, "temp/dew corr {}", corr(&temp, &dew));
        assert!(corr(&temp, &pressure) < -0.3, "temp/pressure corr {}", corr(&temp, &pressure));
    }

    #[test]
    fn deterministic_with_seed() {
        let a = Pm25Dataset::generate(&mut StdRng::seed_from_u64(4), 64, 0.05);
        let b = Pm25Dataset::generate(&mut StdRng::seed_from_u64(4), 64, 0.05);
        assert_eq!(a.design, b.design);
        assert_eq!(a.response, b.response);
    }

    #[test]
    #[should_panic(expected = "more samples")]
    fn too_few_samples_panics() {
        let _ = Pm25Dataset::generate(&mut StdRng::seed_from_u64(5), 4, 0.05);
    }
}
