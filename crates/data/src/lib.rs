//! # gramc-data
//!
//! Workload generators for the paper's experiments:
//!
//! * [`digits`] — procedural 28×28 digit images (the offline MNIST
//!   substitute for Fig. 5; see DESIGN.md §2),
//! * [`pm25`] — synthetic 128×6 air-quality regression (the PM2.5
//!   substitute for Fig. 4c),
//! * graph utilities for the PageRank-style EGV example.
//!
//! Random *matrix* ensembles (Wishart, Gram) live in
//! [`gramc_linalg::random`].

#![warn(missing_docs)]

pub mod digits;
pub mod pm25;

pub use digits::{render_digit, DigitImage, DigitsDataset};
pub use pm25::{Pm25Dataset, FEATURE_NAMES};

use gramc_linalg::Matrix;
use rand::Rng;

/// A spiked Gram matrix: `G = (Xᵀ·X)/m` of `m` feature vectors sharing a
/// strong common component, giving a well-separated dominant eigenvalue —
/// representative of the data Gram matrices the paper's EGV experiment
/// targets (Fig. 4d), where a spectral gap is what makes the dominant
/// eigenvector meaningful.
pub fn spiked_gram<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize, spike: f64) -> Matrix {
    assert!(m > 0 && n > 0, "need positive dimensions");
    let common: Vec<f64> = (0..n).map(|_| gramc_linalg::random::standard_normal(rng)).collect();
    let norm: f64 = common.iter().map(|v| v * v).sum::<f64>().sqrt();
    let x = Matrix::from_fn(m, n, |_, j| {
        spike * common[j] / norm + gramc_linalg::random::standard_normal(rng)
    });
    x.transpose().matmul(&x).scale(1.0 / m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::SymmetricEigen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spiked_gram_has_spectral_gap() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = spiked_gram(&mut rng, 16, 64, 4.0);
        assert!(g.is_symmetric(1e-10));
        let eig = SymmetricEigen::new(&g).unwrap();
        assert!(
            eig.eigenvalues[0] > 2.0 * eig.eigenvalues[1],
            "gap too small: {:?}",
            &eig.eigenvalues[..3]
        );
    }
}
