//! Procedural 28×28 digit dataset — the offline substitute for MNIST
//! (substitution documented in DESIGN.md §2).
//!
//! Each digit class is a polyline skeleton on a 28×28 canvas; samples are
//! produced by applying a random affine transform (rotation, scale,
//! translation), rasterizing the strokes with a soft Gaussian pen of
//! randomized width, and adding pixel noise. The task exercises exactly the
//! code path of the paper's Fig. 5 experiment — quantized-weight convnet
//! inference through the analog MVM pipeline — with comparable class
//! structure to handwritten digits.

use rand::Rng;

/// One labelled 28×28 grayscale image (pixels in `[0, 1]`, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct DigitImage {
    /// Pixels, length 784, row-major.
    pub pixels: Vec<f64>,
    /// Class label, 0–9.
    pub label: usize,
}

/// A train/test split of synthetic digits.
#[derive(Debug, Clone)]
pub struct DigitsDataset {
    /// Training images.
    pub train: Vec<DigitImage>,
    /// Held-out test images.
    pub test: Vec<DigitImage>,
}

/// Stroke skeletons for the ten digits, as polylines in a 0–27 coordinate
/// frame (y, x). Hand-drawn to be mutually distinguishable under the
/// augmentations.
fn skeleton(digit: usize) -> Vec<Vec<(f64, f64)>> {
    let p = |y: f64, x: f64| (y, x);
    match digit {
        0 => vec![vec![
            p(6.0, 10.0),
            p(4.0, 14.0),
            p(6.0, 18.0),
            p(14.0, 20.0),
            p(22.0, 18.0),
            p(24.0, 14.0),
            p(22.0, 10.0),
            p(14.0, 8.0),
            p(6.0, 10.0),
        ]],
        1 => vec![
            vec![p(6.0, 11.0), p(4.0, 14.0), p(24.0, 14.0)],
            vec![p(24.0, 10.0), p(24.0, 18.0)],
        ],
        2 => vec![vec![
            p(7.0, 9.0),
            p(4.0, 14.0),
            p(7.0, 19.0),
            p(12.0, 18.0),
            p(20.0, 11.0),
            p(24.0, 9.0),
            p(24.0, 19.0),
        ]],
        3 => vec![vec![
            p(5.0, 9.0),
            p(4.0, 14.0),
            p(7.0, 18.0),
            p(12.0, 15.0),
            p(14.0, 13.0),
            p(12.0, 15.0),
            p(17.0, 18.0),
            p(22.0, 17.0),
            p(24.0, 12.0),
            p(22.0, 9.0),
        ]],
        4 => {
            vec![vec![p(4.0, 16.0), p(16.0, 8.0), p(16.0, 20.0)], vec![p(4.0, 16.0), p(24.0, 16.0)]]
        }
        5 => vec![vec![
            p(4.0, 19.0),
            p(4.0, 9.0),
            p(13.0, 9.0),
            p(12.0, 17.0),
            p(18.0, 19.0),
            p(23.0, 16.0),
            p(24.0, 11.0),
            p(22.0, 9.0),
        ]],
        6 => vec![vec![
            p(5.0, 17.0),
            p(8.0, 11.0),
            p(14.0, 8.0),
            p(22.0, 10.0),
            p(24.0, 15.0),
            p(21.0, 19.0),
            p(16.0, 18.0),
            p(14.0, 14.0),
            p(15.0, 10.0),
        ]],
        7 => vec![vec![p(4.0, 8.0), p(4.0, 20.0), p(14.0, 14.0), p(24.0, 11.0)]],
        8 => vec![vec![
            p(8.0, 14.0),
            p(5.0, 11.0),
            p(7.0, 8.5),
            p(11.0, 10.0),
            p(13.0, 14.0),
            p(11.0, 10.0),
            p(7.0, 8.5),
            p(5.0, 11.0),
            p(8.0, 14.0),
            p(13.0, 14.0),
            p(20.0, 11.0),
            p(24.0, 13.5),
            p(22.0, 17.5),
            p(16.0, 17.0),
            p(13.0, 14.0),
        ]],
        9 => vec![vec![
            p(12.0, 18.0),
            p(6.0, 19.0),
            p(4.0, 14.0),
            p(6.0, 10.0),
            p(11.0, 9.0),
            p(13.0, 13.0),
            p(12.0, 18.0),
            p(17.0, 19.0),
            p(24.0, 16.0),
        ]],
        _ => panic!("digit must be 0..=9"),
    }
}

/// Renders one randomized sample of `digit`.
pub fn render_digit<R: Rng + ?Sized>(rng: &mut R, digit: usize) -> DigitImage {
    let strokes = skeleton(digit);
    // Random affine: rotation, per-axis scale, translation.
    let theta: f64 = rng.gen_range(-0.38..0.38);
    let (s, c) = theta.sin_cos();
    let sy: f64 = rng.gen_range(0.70..1.25);
    let sx: f64 = rng.gen_range(0.70..1.25);
    let ty: f64 = rng.gen_range(-3.5..3.5);
    let tx: f64 = rng.gen_range(-3.5..3.5);
    let cy = 14.0;
    let cx = 14.0;
    let pen: f64 = rng.gen_range(0.9..1.6); // Gaussian pen width (sigma)
    let ink: f64 = rng.gen_range(0.85..1.0);

    let transform = |(y, x): (f64, f64)| -> (f64, f64) {
        let (dy, dx) = ((y - cy) * sy, (x - cx) * sx);
        (cy + c * dy - s * dx + ty, cx + s * dy + c * dx + tx)
    };

    let mut pixels = vec![0.0_f64; 28 * 28];
    for stroke in &strokes {
        for seg in stroke.windows(2) {
            let a = transform(seg[0]);
            let b = transform(seg[1]);
            let len = ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt();
            let steps = (len * 3.0).ceil().max(1.0) as usize;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let py = a.0 + t * (b.0 - a.0);
                let px = a.1 + t * (b.1 - a.1);
                // Soft pen: splat a small Gaussian around the point.
                let y0 = (py - 3.0).floor().max(0.0) as usize;
                let y1 = (py + 3.0).ceil().min(27.0) as usize;
                let x0 = (px - 3.0).floor().max(0.0) as usize;
                let x1 = (px + 3.0).ceil().min(27.0) as usize;
                for yy in y0..=y1 {
                    for xx in x0..=x1 {
                        let d2 = (yy as f64 - py).powi(2) + (xx as f64 - px).powi(2);
                        let v = ink * (-d2 / (2.0 * pen * pen)).exp();
                        let cell = &mut pixels[yy * 28 + xx];
                        *cell = cell.max(v);
                    }
                }
            }
        }
    }
    // Pixel noise and clamp.
    for v in pixels.iter_mut() {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        *v = (*v + 0.09 * n).clamp(0.0, 1.0);
    }
    DigitImage { pixels, label: digit }
}

impl DigitsDataset {
    /// Generates a balanced dataset with `n_train` training and `n_test`
    /// test images. Class counts stay balanced but the *order* is shuffled —
    /// per-sample SGD with momentum degenerates on cyclically ordered
    /// labels.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, n_train: usize, n_test: usize) -> Self {
        let make = |rng: &mut R, n: usize| -> Vec<DigitImage> {
            let mut images: Vec<DigitImage> = (0..n).map(|i| render_digit(rng, i % 10)).collect();
            // Fisher–Yates shuffle.
            for i in (1..images.len()).rev() {
                let j = rng.gen_range(0..=i);
                images.swap(i, j);
            }
            images
        };
        let train = make(rng, n_train);
        let test = make(rng, n_test);
        Self { train, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn images_are_normalized_and_labelled() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in 0..10 {
            let img = render_digit(&mut rng, d);
            assert_eq!(img.pixels.len(), 784);
            assert_eq!(img.label, d);
            assert!(img.pixels.iter().all(|&v| (0.0..=1.0).contains(&v)));
            // There must be actual ink.
            let ink: f64 = img.pixels.iter().sum();
            assert!(ink > 10.0, "digit {d} has too little ink: {ink}");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean-image cosine similarity between different classes must stay
        // below the within-class similarity.
        let mut rng = StdRng::seed_from_u64(2);
        let mean_img = |d: usize, rng: &mut StdRng| -> Vec<f64> {
            let mut acc = vec![0.0; 784];
            for _ in 0..20 {
                let img = render_digit(rng, d);
                for (a, p) in acc.iter_mut().zip(&img.pixels) {
                    *a += p;
                }
            }
            acc
        };
        let cos = |a: &[f64], b: &[f64]| -> f64 {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let m0 = mean_img(0, &mut rng);
        let m1 = mean_img(1, &mut rng);
        let m7 = mean_img(7, &mut rng);
        // Remove the shared noise floor before comparing: class identity
        // lives in the deviation from the across-class mean.
        let global: Vec<f64> = (0..784).map(|i| (m0[i] + m1[i] + m7[i]) / 3.0).collect();
        let center =
            |m: &[f64]| -> Vec<f64> { m.iter().zip(&global).map(|(a, g)| a - g).collect() };
        let (c0, c1, c7) = (center(&m0), center(&m1), center(&m7));
        assert!(cos(&c0, &c1) < 0.5, "0 vs 1 too similar: {}", cos(&c0, &c1));
        assert!(cos(&c1, &c7) < 0.5, "1 vs 7 too similar: {}", cos(&c1, &c7));
    }

    #[test]
    fn dataset_is_balanced_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = DigitsDataset::generate(&mut rng, 50, 20);
        assert_eq!(ds.train.len(), 50);
        assert_eq!(ds.test.len(), 20);
        let mut counts = [0usize; 10];
        for img in &ds.train {
            counts[img.label] += 1;
        }
        assert_eq!(counts, [5; 10]);

        let mut rng2 = StdRng::seed_from_u64(3);
        let ds2 = DigitsDataset::generate(&mut rng2, 50, 20);
        assert_eq!(ds.train[7], ds2.train[7]);
    }

    #[test]
    #[should_panic(expected = "0..=9")]
    fn bad_digit_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = render_digit(&mut rng, 10);
    }
}
