//! LeNet-5 exactly as the paper maps it (Fig. 5):
//!
//! ```text
//! input [1,28,28] → conv1 (6@5×5) → [6,24,24] → ReLU → pool2 → [6,12,12]
//!                 → conv2 (16@5×5) → [16,8,8]  → ReLU → pool2 → [16,4,4]
//!                 → flatten 256 → FC 120 → ReLU → FC 84 → ReLU → FC 10
//! ```

use gramc_core::functional::{argmax, softmax};
use rand::Rng;

use crate::layers::{
    relu_backward, relu_forward, relu_vec_backward, relu_vec_forward, Conv2d, Dense, MaxPool,
};
use crate::tensor::Tensor3;

/// The LeNet-5 network of the paper's Fig. 5.
#[derive(Debug, Clone)]
pub struct LeNet5 {
    /// First convolution, 1→6 channels, 5×5.
    pub conv1: Conv2d,
    /// Second convolution, 6→16 channels, 5×5.
    pub conv2: Conv2d,
    /// 256 → 120.
    pub fc1: Dense,
    /// 120 → 84.
    pub fc2: Dense,
    /// 84 → 10 (logits).
    pub fc3: Dense,
    pool1: MaxPool,
    pool2: MaxPool,
}

/// Loss/accuracy summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Training accuracy.
    pub accuracy: f64,
}

impl LeNet5 {
    /// Creates a LeNet-5 with He-initialized weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            conv1: Conv2d::new(rng, 1, 6, 5),
            conv2: Conv2d::new(rng, 6, 16, 5),
            fc1: Dense::new(rng, 256, 120),
            fc2: Dense::new(rng, 120, 84),
            fc3: Dense::new(rng, 84, 10),
            pool1: MaxPool::new(2),
            pool2: MaxPool::new(2),
        }
    }

    /// Forward pass returning the 10 logits (mutates layer caches).
    pub fn forward(&mut self, image: &Tensor3) -> Vec<f64> {
        let (logits, _) = self.forward_cached(image);
        logits
    }

    /// Forward pass keeping the ReLU masks for backward.
    #[allow(clippy::type_complexity)]
    fn forward_cached(
        &mut self,
        image: &Tensor3,
    ) -> (Vec<f64>, (Vec<bool>, Vec<bool>, Vec<bool>, Vec<bool>)) {
        let c1 = self.conv1.forward(image);
        let (r1, m1) = relu_forward(&c1);
        let p1 = self.pool1.forward(&r1);
        let c2 = self.conv2.forward(&p1);
        let (r2, m2) = relu_forward(&c2);
        let p2 = self.pool2.forward(&r2);
        let flat = p2.into_vec();
        let f1 = self.fc1.forward(&flat);
        let (a1, m3) = relu_vec_forward(&f1);
        let f2 = self.fc2.forward(&a1);
        let (a2, m4) = relu_vec_forward(&f2);
        let logits = self.fc3.forward(&a2);
        (logits, (m1, m2, m3, m4))
    }

    /// Predicted class for an image.
    pub fn predict(&mut self, image: &Tensor3) -> usize {
        argmax(&self.forward(image))
    }

    /// One SGD training step on a single example. Returns the cross-entropy
    /// loss before the update.
    pub fn train_step(&mut self, image: &Tensor3, label: usize, lr: f64, momentum: f64) -> f64 {
        let (logits, (m1, m2, m3, m4)) = self.forward_cached(image);
        let probs = softmax(&logits);
        let loss = -(probs[label].max(1e-12)).ln();
        // dL/dlogits = probs - onehot.
        let mut grad: Vec<f64> = probs;
        grad[label] -= 1.0;

        let g2 = self.fc3.backward(&grad);
        let g2 = relu_vec_backward(&g2, &m4);
        let g1 = self.fc2.backward(&g2);
        let g1 = relu_vec_backward(&g1, &m3);
        let g0 = self.fc1.backward(&g1);
        let g_pool2 = Tensor3::from_vec(16, 4, 4, g0);
        let g_r2 = self.pool2.backward(&g_pool2);
        let g_c2 = relu_backward(&g_r2, &m2);
        let g_p1 = self.conv2.backward(&g_c2);
        let g_r1 = self.pool1.backward(&g_p1);
        let g_c1 = relu_backward(&g_r1, &m1);
        let _ = self.conv1.backward(&g_c1);

        self.fc3.sgd_step(lr, momentum);
        self.fc2.sgd_step(lr, momentum);
        self.fc1.sgd_step(lr, momentum);
        self.conv2.sgd_step(lr, momentum);
        self.conv1.sgd_step(lr, momentum);
        loss
    }

    /// One epoch of per-sample SGD over the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn train_epoch(
        &mut self,
        images: &[Tensor3],
        labels: &[usize],
        lr: f64,
        momentum: f64,
    ) -> EpochStats {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        for (img, &lab) in images.iter().zip(labels) {
            let loss = self.train_step(img, lab, lr, momentum);
            loss_sum += loss;
            // Cheap running accuracy from the pre-update prediction is not
            // cached; re-use loss sign instead of an extra forward: count
            // via a fresh prediction only every few samples would bias the
            // stats, so simply run the forward again.
            if self.predict(img) == lab {
                correct += 1;
            }
        }
        EpochStats {
            loss: loss_sum / images.len().max(1) as f64,
            accuracy: correct as f64 / images.len().max(1) as f64,
        }
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn evaluate(&mut self, images: &[Tensor3], labels: &[usize]) -> f64 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return 0.0;
        }
        let correct =
            images.iter().zip(labels).filter(|(img, &lab)| self.predict(img) == lab).count();
        correct as f64 / images.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::random::seeded_rng;

    fn blob_image(center: (usize, usize)) -> Tensor3 {
        // A soft blob at the given center: linearly separable toy classes.
        let mut t = Tensor3::zeros(1, 28, 28);
        for y in 0..28 {
            for x in 0..28 {
                let dy = y as f64 - center.0 as f64;
                let dx = x as f64 - center.1 as f64;
                t.set(0, y, x, (-(dy * dy + dx * dx) / 18.0).exp());
            }
        }
        t
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(100);
        let mut net = LeNet5::new(&mut rng);
        let logits = net.forward(&Tensor3::zeros(1, 28, 28));
        assert_eq!(logits.len(), 10);
    }

    #[test]
    fn loss_decreases_on_tiny_task() {
        let mut rng = seeded_rng(101);
        let mut net = LeNet5::new(&mut rng);
        let images = [blob_image((8, 8)), blob_image((20, 20))];
        let labels = [0usize, 1];
        let first = net.train_epoch(&images, &labels, 0.02, 0.9);
        let mut last = first;
        for _ in 0..30 {
            last = net.train_epoch(&images, &labels, 0.02, 0.9);
        }
        assert!(last.loss < first.loss, "loss {first:?} -> {last:?}");
        assert_eq!(net.evaluate(&images, &labels), 1.0);
    }

    #[test]
    fn predict_is_deterministic() {
        let mut rng = seeded_rng(102);
        let mut net = LeNet5::new(&mut rng);
        let img = blob_image((14, 14));
        assert_eq!(net.predict(&img), net.predict(&img));
    }
}
