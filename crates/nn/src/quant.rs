//! Post-training weight quantization — the digital reference for what the
//! analog mapping does physically.
//!
//! The Fig. 5 experiment compares three weight precisions: INT4 (one 4-bit
//! differential pair per weight), INT8 (two bit-sliced nibble planes) and
//! float32. [`quantize_matrix`] reproduces the *mapping's* symmetric
//! per-tensor quantization exactly, so software-quantized accuracy can be
//! separated from the other analog error sources.

use gramc_linalg::Matrix;

/// Weight precision of a GRAMC-mapped network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 4-bit differential conductance pairs (paper: 97.6 % on MNIST).
    Int4,
    /// 8-bit via two bit-sliced 4-bit planes (paper: 98.5 %).
    Int8,
    /// Software float32 baseline (paper: 98.87 %).
    Float32,
}

impl Precision {
    /// Integer levels available for the magnitude, or `None` for float.
    pub fn magnitude_levels(&self) -> Option<u32> {
        match self {
            Precision::Int4 => Some(15),
            Precision::Int8 => Some(255),
            Precision::Float32 => None,
        }
    }
}

/// Symmetric per-tensor quantization to `levels` magnitude steps:
/// `w ≈ round(w/Δ)·Δ` with `Δ = max|w|/levels` — exactly the grid the
/// differential conductance mapping realizes.
pub fn quantize_matrix(w: &Matrix, levels: u32) -> Matrix {
    let w_max = w.max_abs();
    if w_max == 0.0 {
        return w.clone();
    }
    let delta = w_max / levels as f64;
    w.map(|v| (v / delta).round().clamp(-(levels as f64), levels as f64) * delta)
}

/// Quantizes a matrix at the given precision (identity for float32).
pub fn quantize_at(w: &Matrix, precision: Precision) -> Matrix {
    match precision.magnitude_levels() {
        Some(levels) => quantize_matrix(w, levels),
        None => w.clone(),
    }
}

/// Worst-case quantization error bound `Δ/2` for a matrix at a precision.
pub fn quantization_error_bound(w: &Matrix, precision: Precision) -> f64 {
    match precision.magnitude_levels() {
        Some(levels) => w.max_abs() / levels as f64 / 2.0,
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::random::{gaussian_matrix, seeded_rng};

    #[test]
    fn quantization_error_within_bound() {
        let mut rng = seeded_rng(110);
        let w = gaussian_matrix(&mut rng, 12, 12);
        for p in [Precision::Int4, Precision::Int8] {
            let q = quantize_at(&w, p);
            let bound = quantization_error_bound(&w, p);
            assert!((&q - &w).max_abs() <= bound + 1e-12, "{p:?}");
        }
    }

    #[test]
    fn int8_is_finer_than_int4() {
        let mut rng = seeded_rng(111);
        let w = gaussian_matrix(&mut rng, 10, 10);
        let e4 = (&quantize_at(&w, Precision::Int4) - &w).fro_norm();
        let e8 = (&quantize_at(&w, Precision::Int8) - &w).fro_norm();
        assert!(e8 < e4 / 4.0, "e8 {e8} vs e4 {e4}");
    }

    #[test]
    fn float32_is_identity() {
        let mut rng = seeded_rng(112);
        let w = gaussian_matrix(&mut rng, 5, 5);
        assert_eq!(quantize_at(&w, Precision::Float32), w);
        assert_eq!(quantization_error_bound(&w, Precision::Float32), 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut rng = seeded_rng(113);
        let w = gaussian_matrix(&mut rng, 6, 6);
        let q = quantize_matrix(&w, 15);
        let qq = quantize_matrix(&q, 15);
        assert!((&qq - &q).max_abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_passes_through() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(quantize_matrix(&z, 15), z);
    }
}
