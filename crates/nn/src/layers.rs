//! Layers with forward and backward passes: convolution (via im2col), max
//! pooling, dense, and ReLU. Enough to train LeNet-5 from scratch in f64.

use gramc_linalg::Matrix;
use rand::Rng;

use crate::tensor::Tensor3;

/// He-style weight initialization.
fn he_init<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, fan_in: usize) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std * gramc_linalg::random::standard_normal(rng))
}

/// Lowers a `(c, h, w)` input into the im2col matrix of a `k×k` valid
/// convolution: shape `(c·k·k) × (oh·ow)`, column = one output position.
pub fn im2col(input: &Tensor3, k: usize) -> Matrix {
    let (c, h, w) = input.shape();
    assert!(h >= k && w >= k, "kernel larger than input");
    let (oh, ow) = (h - k + 1, w - k + 1);
    let mut cols = Matrix::zeros(c * k * k, oh * ow);
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        cols[(row, oy * ow + ox)] = input.get(ci, oy + ky, ox + kx);
                    }
                }
            }
        }
    }
    cols
}

/// Row-major streaming variant of [`im2col`]: lowers a channel-major
/// `(c, h, w)` feature map (flat slice, `map[(ci·h + y)·w + x]`) into
/// `oh·ow` **rows** of `out`, starting at `row0`. Row `oy·ow + ox` holds the
/// patch at output position `(oy, ox)` with the same feature order as
/// [`im2col`]'s rows (`(ci·k + ky)·k + kx`), i.e.
/// `out.row(row0 + p) == im2col(t, k).col(p)` element-for-element. Writes
/// straight into a caller-owned drive matrix so whole-dataset batches
/// assemble with zero per-image allocation.
///
/// # Panics
///
/// Panics if `map` disagrees with `(c, h, w)`, the kernel exceeds the map,
/// `out` is narrower than `c·k·k`, or the rows starting at `row0` don't fit.
pub fn im2col_rows_into(
    map: &[f64],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    out: &mut Matrix,
    row0: usize,
) {
    assert_eq!(map.len(), c * h * w, "feature map length mismatch");
    assert!(h >= k && w >= k, "kernel larger than input");
    let (oh, ow) = (h - k + 1, w - k + 1);
    assert_eq!(out.cols(), c * k * k, "drive matrix width mismatch");
    assert!(row0 + oh * ow <= out.rows(), "drive matrix rows exhausted");
    for oy in 0..oh {
        for ox in 0..ow {
            let row = out.row_mut(row0 + oy * ow + ox);
            for ci in 0..c {
                for ky in 0..k {
                    let src = &map[(ci * h + oy + ky) * w + ox..][..k];
                    row[(ci * k + ky) * k..(ci * k + ky) * k + k].copy_from_slice(src);
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters a `(c·k·k) × (oh·ow)` gradient back onto
/// the `(c, h, w)` input.
pub fn col2im(grad_cols: &Matrix, c: usize, h: usize, w: usize, k: usize) -> Tensor3 {
    let (oh, ow) = (h - k + 1, w - k + 1);
    assert_eq!(grad_cols.shape(), (c * k * k, oh * ow), "col2im shape mismatch");
    let mut out = Tensor3::zeros(c, h, w);
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let v = out.get(ci, oy + ky, ox + kx) + grad_cols[(row, oy * ow + ox)];
                        out.set(ci, oy + ky, ox + kx, v);
                    }
                }
            }
        }
    }
    out
}

/// A `k×k` valid convolution layer.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Weight matrix, `out_channels × (in_channels·k·k)`.
    pub weights: Matrix,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
    in_channels: usize,
    out_channels: usize,
    k: usize,
    // Training state.
    vel_w: Matrix,
    vel_b: Vec<f64>,
    cache_cols: Option<Matrix>,
    cache_in_shape: (usize, usize, usize),
    pending_dw: Option<Matrix>,
    pending_db: Option<Vec<f64>>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        k: usize,
    ) -> Self {
        let fan_in = in_channels * k * k;
        Self {
            weights: he_init(rng, out_channels, fan_in, fan_in),
            bias: vec![0.0; out_channels],
            in_channels,
            out_channels,
            k,
            vel_w: Matrix::zeros(out_channels, fan_in),
            vel_b: vec![0.0; out_channels],
            cache_cols: None,
            cache_in_shape: (0, 0, 0),
            pending_dw: None,
            pending_db: None,
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// `(in_channels, out_channels)`.
    pub fn channels(&self) -> (usize, usize) {
        (self.in_channels, self.out_channels)
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        (self.out_channels, input.1 - self.k + 1, input.2 - self.k + 1)
    }

    /// Forward pass, caching what the backward pass needs.
    pub fn forward(&mut self, input: &Tensor3) -> Tensor3 {
        let (c, h, w) = input.shape();
        assert_eq!(c, self.in_channels, "channel mismatch");
        let cols = im2col(input, self.k);
        let out = self.weights.matmul(&cols);
        let (oh, ow) = (h - self.k + 1, w - self.k + 1);
        let mut t = Tensor3::zeros(self.out_channels, oh, ow);
        for oc in 0..self.out_channels {
            let b = self.bias[oc];
            let ch = t.channel_mut(oc);
            ch.copy_from_slice(out.row(oc));
            for v in ch.iter_mut() {
                *v += b;
            }
        }
        self.cache_cols = Some(cols);
        self.cache_in_shape = (c, h, w);
        t
    }

    /// Backward pass: accumulates parameter gradients internally (applied by
    /// [`sgd_step`](Self::sgd_step)) and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor3) -> Tensor3 {
        let cols = self.cache_cols.take().expect("backward before forward");
        let (c, h, w) = self.cache_in_shape;
        let (oc, oh, ow) = grad_out.shape();
        assert_eq!(oc, self.out_channels);
        let g = Matrix::from_fn(oc, oh * ow, |i, j| grad_out.channel(i)[j]);
        // dW = g · colsᵀ ; db = row sums of g.
        let dw = g.matmul(&cols.transpose());
        let db: Vec<f64> = (0..oc).map(|i| g.row(i).iter().sum()).collect();
        // Momentum buffers accumulate the (negative) update direction.
        self.pending(dw, db);
        // dInput = Wᵀ · g, scattered back.
        let dcols = self.weights.transpose().matmul(&g);
        col2im(&dcols, c, h, w, self.k)
    }

    fn pending(&mut self, dw: Matrix, db: Vec<f64>) {
        self.pending_dw = Some(dw);
        self.pending_db = Some(db);
    }

    /// Applies one SGD-with-momentum step using the last backward's
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `backward`.
    pub fn sgd_step(&mut self, lr: f64, momentum: f64) {
        let dw = self.pending_dw.take().expect("sgd_step before backward");
        let db = self.pending_db.take().expect("sgd_step before backward");
        for i in 0..self.vel_w.rows() {
            for j in 0..self.vel_w.cols() {
                let v = momentum * self.vel_w[(i, j)] - lr * dw[(i, j)];
                self.vel_w[(i, j)] = v;
                self.weights[(i, j)] += v;
            }
        }
        for (k, (vb, g)) in self.vel_b.iter_mut().zip(&db).enumerate() {
            *vb = momentum * *vb - lr * g;
            self.bias[k] += *vb;
        }
    }
}

/// Max pooling with a square window and stride equal to the window.
#[derive(Debug, Clone)]
pub struct MaxPool {
    window: usize,
    cache_argmax: Vec<usize>,
    cache_in_shape: (usize, usize, usize),
}

impl MaxPool {
    /// Creates a pooling layer.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        Self { window, cache_argmax: Vec::new(), cache_in_shape: (0, 0, 0) }
    }

    /// Forward pass (caches argmax indices for backward).
    pub fn forward(&mut self, input: &Tensor3) -> Tensor3 {
        let (c, h, w) = input.shape();
        let k = self.window;
        assert!(h % k == 0 && w % k == 0, "input not divisible by window");
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor3::zeros(c, oh, ow);
        self.cache_argmax = vec![0; c * oh * ow];
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..k {
                        for dx in 0..k {
                            let (y, x) = (oy * k + dy, ox * k + dx);
                            let v = input.get(ci, y, x);
                            if v > best {
                                best = v;
                                best_idx = y * w + x;
                            }
                        }
                    }
                    out.set(ci, oy, ox, best);
                    self.cache_argmax[(ci * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
        self.cache_in_shape = (c, h, w);
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    pub fn backward(&self, grad_out: &Tensor3) -> Tensor3 {
        let (c, h, w) = self.cache_in_shape;
        let (oc, oh, ow) = grad_out.shape();
        assert_eq!(c, oc);
        let mut out = Tensor3::zeros(c, h, w);
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let idx = self.cache_argmax[(ci * oh + oy) * ow + ox];
                    let (y, x) = (idx / w, idx % w);
                    let v = out.get(ci, y, x) + grad_out.get(ci, oy, ox);
                    out.set(ci, y, x, v);
                }
            }
        }
        out
    }
}

/// A fully-connected layer.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out × in`.
    pub weights: Matrix,
    /// Bias, length `out`.
    pub bias: Vec<f64>,
    vel_w: Matrix,
    vel_b: Vec<f64>,
    cache_in: Option<Vec<f64>>,
    pending_dw: Option<Matrix>,
    pending_db: Option<Vec<f64>>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize) -> Self {
        Self {
            weights: he_init(rng, output, input, input),
            bias: vec![0.0; output],
            vel_w: Matrix::zeros(output, input),
            vel_b: vec![0.0; output],
            cache_in: None,
            pending_dw: None,
            pending_db: None,
        }
    }

    /// `(input, output)` sizes.
    pub fn shape(&self) -> (usize, usize) {
        (self.weights.cols(), self.weights.rows())
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weights.matvec(x);
        for (yi, b) in y.iter_mut().zip(&self.bias) {
            *yi += b;
        }
        self.cache_in = Some(x.to_vec());
        y
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        let x = self.cache_in.take().expect("backward before forward");
        let mut dw = Matrix::zeros(self.weights.rows(), self.weights.cols());
        for i in 0..self.weights.rows() {
            let g = grad_out[i];
            if g != 0.0 {
                for (j, xj) in x.iter().enumerate() {
                    dw[(i, j)] = g * xj;
                }
            }
        }
        self.pending_dw = Some(dw);
        self.pending_db = Some(grad_out.to_vec());
        self.weights.tr_matvec(grad_out)
    }

    /// Applies one SGD-with-momentum step.
    ///
    /// # Panics
    ///
    /// Panics if called before `backward`.
    pub fn sgd_step(&mut self, lr: f64, momentum: f64) {
        let dw = self.pending_dw.take().expect("sgd_step before backward");
        let db = self.pending_db.take().expect("sgd_step before backward");
        for i in 0..self.vel_w.rows() {
            for j in 0..self.vel_w.cols() {
                let v = momentum * self.vel_w[(i, j)] - lr * dw[(i, j)];
                self.vel_w[(i, j)] = v;
                self.weights[(i, j)] += v;
            }
        }
        for (k, (vb, g)) in self.vel_b.iter_mut().zip(&db).enumerate() {
            *vb = momentum * *vb - lr * g;
            self.bias[k] += *vb;
        }
    }
}

/// ReLU over a tensor, returning output and a backward mask closure input.
pub fn relu_forward(t: &Tensor3) -> (Tensor3, Vec<bool>) {
    let mask: Vec<bool> = t.as_slice().iter().map(|&v| v > 0.0).collect();
    let mut out = t.clone();
    for v in out.as_mut_slice().iter_mut() {
        *v = v.max(0.0);
    }
    (out, mask)
}

/// ReLU backward given the forward mask.
pub fn relu_backward(grad: &Tensor3, mask: &[bool]) -> Tensor3 {
    let mut out = grad.clone();
    for (v, &m) in out.as_mut_slice().iter_mut().zip(mask) {
        if !m {
            *v = 0.0;
        }
    }
    out
}

/// ReLU over a vector.
pub fn relu_vec_forward(x: &[f64]) -> (Vec<f64>, Vec<bool>) {
    let mask = x.iter().map(|&v| v > 0.0).collect();
    (x.iter().map(|&v| v.max(0.0)).collect(), mask)
}

/// Vector ReLU backward.
pub fn relu_vec_backward(grad: &[f64], mask: &[bool]) -> Vec<f64> {
    grad.iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_linalg::random::seeded_rng;

    #[test]
    fn im2col_shapes_and_values() {
        let mut t = Tensor3::zeros(1, 3, 3);
        for y in 0..3 {
            for x in 0..3 {
                t.set(0, y, x, (y * 3 + x) as f64);
            }
        }
        let cols = im2col(&t, 2);
        assert_eq!(cols.shape(), (4, 4));
        // First column = top-left 2x2 patch [0,1,3,4].
        assert_eq!(cols.col(0), vec![0.0, 1.0, 3.0, 4.0]);
        // Last column = bottom-right patch [4,5,7,8].
        assert_eq!(cols.col(3), vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_rows_into_matches_im2col_columns() {
        let mut rng = seeded_rng(95);
        let t = Tensor3::from_vec(
            3,
            6,
            5,
            (0..90).map(|_| gramc_linalg::random::standard_normal(&mut rng)).collect(),
        );
        let cols = im2col(&t, 3);
        let (oh, ow) = (4, 3);
        // Offset rows exercise the `row0` streaming path.
        let mut drive = Matrix::zeros(5 + oh * ow, 3 * 9);
        im2col_rows_into(t.as_slice(), 3, 6, 5, 3, &mut drive, 5);
        for p in 0..oh * ow {
            assert_eq!(drive.row(5 + p), cols.col(p).as_slice(), "position {p}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = seeded_rng(90);
        let x = Tensor3::from_vec(
            2,
            4,
            4,
            (0..32).map(|_| gramc_linalg::random::standard_normal(&mut rng)).collect(),
        );
        let y = Matrix::from_fn(2 * 9, 4, |_, _| gramc_linalg::random::standard_normal(&mut rng));
        let ax = im2col(&x, 3);
        let aty = col2im(&y, 2, 4, 4, 3);
        let lhs: f64 = ax.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.as_slice().iter().zip(aty.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_forward_known_kernel() {
        let mut rng = seeded_rng(91);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 2);
        // Kernel = all ones, bias = 1: output = patch sums + 1.
        conv.weights = Matrix::filled(1, 4, 1.0);
        conv.bias = vec![1.0];
        let mut input = Tensor3::zeros(1, 2, 2);
        input.set(0, 0, 0, 1.0);
        input.set(0, 1, 1, 2.0);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), (1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 4.0);
    }

    #[test]
    fn conv_gradient_check() {
        // Finite-difference check on a small conv.
        let mut rng = seeded_rng(92);
        let mut conv = Conv2d::new(&mut rng, 1, 2, 2);
        let input = Tensor3::from_vec(
            1,
            3,
            3,
            (0..9).map(|_| gramc_linalg::random::standard_normal(&mut rng)).collect(),
        );
        // Loss = sum of outputs.
        let out = conv.forward(&input);
        let ones = Tensor3::from_vec(2, 2, 2, vec![1.0; 8]);
        let dinput = conv.backward(&ones);
        let _ = out;
        let eps = 1e-6;
        for idx in [0usize, 4, 8] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let f_plus: f64 = conv.forward(&plus).as_slice().iter().sum();
            let f_minus: f64 = conv.forward(&minus).as_slice().iter().sum();
            let fd = (f_plus - f_minus) / (2.0 * eps);
            let an = dinput.as_slice()[idx];
            assert!((fd - an).abs() < 1e-5, "idx {idx}: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = seeded_rng(93);
        let mut dense = Dense::new(&mut rng, 5, 3);
        let x: Vec<f64> = (0..5).map(|_| gramc_linalg::random::standard_normal(&mut rng)).collect();
        let _ = dense.forward(&x);
        let dx = dense.backward(&[1.0, 1.0, 1.0]);
        let eps = 1e-6;
        for idx in 0..5 {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let fp: f64 = dense.forward(&xp).iter().sum();
            let fm: f64 = dense.forward(&xm).iter().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx[idx]).abs() < 1e-6, "idx {idx}");
        }
    }

    #[test]
    fn sgd_reduces_simple_loss() {
        // One dense layer learning y = 2x: loss must drop.
        let mut rng = seeded_rng(94);
        let mut dense = Dense::new(&mut rng, 1, 1);
        let mut last_loss = f64::INFINITY;
        for _ in 0..50 {
            let y = dense.forward(&[1.0]);
            let err = y[0] - 2.0;
            let loss = err * err;
            dense.backward(&[2.0 * err]);
            dense.sgd_step(0.1, 0.0);
            assert!(loss <= last_loss + 1e-9);
            last_loss = loss;
        }
        assert!(last_loss < 1e-3);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let mut pool = MaxPool::new(2);
        let input = Tensor3::from_vec(1, 2, 2, vec![1.0, 5.0, 3.0, 2.0]);
        let out = pool.forward(&input);
        assert_eq!(out.get(0, 0, 0), 5.0);
        let grad = pool.backward(&Tensor3::from_vec(1, 1, 1, vec![1.0]));
        assert_eq!(grad.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn relu_masks() {
        let t = Tensor3::from_vec(1, 1, 3, vec![-1.0, 0.0, 2.0]);
        let (out, mask) = relu_forward(&t);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0]);
        let g = relu_backward(&Tensor3::from_vec(1, 1, 3, vec![1.0, 1.0, 1.0]), &mask);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }
}
