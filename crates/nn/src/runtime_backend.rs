//! LeNet-5 on the sharded runtime: the multi-group scaling path of the
//! analog backend.
//!
//! [`GramcLenet`](crate::GramcLenet) streams inference through **one**
//! macro group; this backend drives a [`Runtime`] instead, so each layer's
//! weight tiles spread round-robin across the shards
//! ([`ShardedTiledOperator`]) and every tile's partial product runs on its
//! own analog plane, with the work-stealing scheduler keeping the shards
//! busy. The digital functional steps (bias add, pooling, activation,
//! im2col) are the single-group backend's own code
//! ([`lenet_forward`](crate::backend) is shared; only the per-layer analog
//! driver differs).
//!
//! With one shard and the same seed the job tickets replay the exact
//! single-group operation order, so `RuntimeLenet` is bit-identical to
//! [`GramcLenet`](crate::GramcLenet) — that equivalence is tested below.

use gramc_core::functional::argmax;
use gramc_core::tiling::TileMapping;
use gramc_core::{CoreError, MacroConfig};
use gramc_linalg::Matrix;
use gramc_runtime::{Runtime, RuntimeError, ShardedTiledOperator};

use crate::backend::{lenet_forward, lenet_forward_stream, LenetScratch};
use crate::lenet::LeNet5;
use crate::quant::Precision;
use crate::tensor::Tensor3;

/// LeNet-5 running on the sharded analog runtime.
#[derive(Debug)]
pub struct RuntimeLenet {
    rt: Runtime,
    model: LeNet5,
    precision: Precision,
    scratch: LenetScratch,
}

impl RuntimeLenet {
    /// Wraps a trained model for sharded analog execution: `shards` macro
    /// groups of `macros_per_shard` macros each.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Core`] with an invalid-argument error if
    /// `precision` is [`Precision::Float32`] (use the software model
    /// directly for the float baseline).
    pub fn new(
        model: LeNet5,
        precision: Precision,
        config: MacroConfig,
        shards: usize,
        macros_per_shard: usize,
        seed: u64,
    ) -> Result<Self, RuntimeError> {
        if precision == Precision::Float32 {
            return Err(CoreError::InvalidArgument(
                "float32 is the software baseline; run LeNet5::evaluate instead",
            )
            .into());
        }
        Ok(Self {
            rt: Runtime::new(shards, macros_per_shard, config, seed),
            model,
            precision,
            scratch: LenetScratch::default(),
        })
    }

    /// The underlying runtime (for inspection).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    fn mapping(&self) -> TileMapping {
        match self.precision {
            Precision::Int4 => TileMapping::FourBit,
            Precision::Int8 => TileMapping::BitSlicedInt8,
            Precision::Float32 => unreachable!("rejected in constructor"),
        }
    }

    /// Computes logits for a batch of images through the **per-image**
    /// sharded pipeline (one analog drive per image per layer). The
    /// streamed dataset path is [`logits_matrix`](Self::logits_matrix);
    /// with noise-free reads the two are bit-identical.
    ///
    /// # Errors
    ///
    /// Capacity errors if the shards cannot hold a layer's tiles; analog
    /// and scheduling errors propagate.
    pub fn logits_batch(&mut self, images: &[Tensor3]) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let mapping = self.mapping();
        let rt = &self.rt;
        lenet_forward(&self.model, images, |w, batches| {
            let mut tiled = ShardedTiledOperator::load(rt, w, mapping)?;
            let result: Result<Vec<_>, RuntimeError> =
                batches.iter().map(|xs| tiled.mvm_batch(rt, xs)).collect();
            tiled.free(rt)?;
            result
        })
    }

    /// Streams a whole dataset through the sharded pipeline: per layer one
    /// tile load, one batched drive covering every image (the tiles'
    /// partial products run across the shards), one free. Row `i` of the
    /// result holds image `i`'s logits. See
    /// [`GramcLenet::logits_matrix`](crate::GramcLenet::logits_matrix) for
    /// the noise-draw semantics.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    pub fn logits_matrix(&mut self, images: &[Tensor3]) -> Result<Matrix, RuntimeError> {
        let mapping = self.mapping();
        let rt = &self.rt;
        lenet_forward_stream(&self.model, images, &mut self.scratch, |w, drive| {
            let mut tiled = ShardedTiledOperator::load(rt, w, mapping)?;
            let result = tiled.mvm_batch_rows(rt, drive);
            tiled.free(rt)?;
            result
        })
    }

    /// Predicted classes for a batch (streamed pipeline).
    ///
    /// # Errors
    ///
    /// See [`logits_matrix`](Self::logits_matrix).
    pub fn predict_batch(&mut self, images: &[Tensor3]) -> Result<Vec<usize>, RuntimeError> {
        let logits = self.logits_matrix(images)?;
        Ok((0..logits.rows()).map(|b| argmax(logits.row(b))).collect())
    }

    /// Classification accuracy of the sharded pipeline on a labelled set.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn evaluate(&mut self, images: &[Tensor3], labels: &[usize]) -> Result<f64, RuntimeError> {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return Ok(0.0);
        }
        let preds = self.predict_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / images.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_model;
    use crate::GramcLenet;

    #[test]
    fn one_shard_runtime_backend_is_bit_identical_to_single_group() {
        let (net, images, _) = trained_model();
        // Same seed, same macro complement: the runtime's job tickets
        // replay the single-group operation order exactly, RNG draws and
        // all (paper-default non-idealities are on).
        let mut single =
            GramcLenet::new(net.clone(), Precision::Int4, MacroConfig::default(), 16, 122).unwrap();
        let mut sharded =
            RuntimeLenet::new(net, Precision::Int4, MacroConfig::default(), 1, 16, 122).unwrap();
        let sample = &images[..3];
        let logits_single = single.logits_batch(sample).unwrap();
        let logits_sharded = sharded.logits_batch(sample).unwrap();
        assert_eq!(logits_single, logits_sharded);
    }

    /// Determinism under injection: the `fault-inject` machinery compiled
    /// in with a **zero-rate** plan installed on every shard must leave
    /// the LeNet logits bit-identical to the single-group baseline — same
    /// seeds, same operation order, not one extra RNG draw.
    #[test]
    #[cfg(feature = "fault-inject")]
    fn zero_rate_injection_keeps_lenet_logits_bit_identical() {
        use gramc_runtime::FaultConfig;

        let (net, images, _) = trained_model();
        let mut single =
            GramcLenet::new(net.clone(), Precision::Int4, MacroConfig::default(), 16, 122).unwrap();
        let mut sharded =
            RuntimeLenet::new(net, Precision::Int4, MacroConfig::default(), 1, 16, 122).unwrap();
        let zero = FaultConfig::default();
        assert!(zero.is_fault_free());
        sharded.runtime().inject_shard_faults(0, &zero, 7).unwrap();

        let sample = &images[..3];
        let logits_single = single.logits_batch(sample).unwrap();
        let logits_sharded = sharded.logits_batch(sample).unwrap();
        assert_eq!(logits_single, logits_sharded);
    }

    /// Streamed sharded inference must agree bit-for-bit with both its own
    /// per-image path and the single-group streamed path when conductance
    /// reads are noise-free (quantization-only config, one shard, same
    /// seed).
    #[test]
    fn streamed_sharded_logits_are_bit_identical_to_per_image_and_single_group() {
        use gramc_core::NonidealityConfig;

        let (net, images, _) = trained_model();
        let quiet = MacroConfig {
            nonideal: NonidealityConfig::quantization_only(4),
            ..MacroConfig::default()
        };
        let mut single =
            GramcLenet::new(net.clone(), Precision::Int4, quiet.clone(), 16, 122).unwrap();
        let mut sharded = RuntimeLenet::new(net, Precision::Int4, quiet, 1, 16, 122).unwrap();
        let sample = &images[..4];
        let per_image = sharded.logits_batch(sample).unwrap();
        let streamed = sharded.logits_matrix(sample).unwrap();
        let streamed_single = single.logits_matrix(sample).unwrap();
        assert_eq!(streamed.shape(), (4, 10));
        for (b, y) in per_image.iter().enumerate() {
            for (j, v) in y.iter().enumerate() {
                assert_eq!(v.to_bits(), streamed[(b, j)].to_bits(), "image {b} logit {j}");
                assert_eq!(v.to_bits(), streamed_single[(b, j)].to_bits(), "image {b} logit {j}");
            }
        }
    }

    #[test]
    fn multi_shard_backend_is_accurate() {
        let (net, images, labels) = trained_model();
        let mut backend =
            RuntimeLenet::new(net, Precision::Int4, MacroConfig::default(), 2, 8, 123).unwrap();
        let hw = backend.evaluate(&images[..8], &labels[..8]).unwrap();
        assert!(hw >= 0.9, "sharded analog accuracy {hw}");
    }

    #[test]
    fn float32_backend_is_rejected() {
        let (net, _, _) = trained_model();
        assert!(
            RuntimeLenet::new(net, Precision::Float32, MacroConfig::default(), 2, 8, 0).is_err()
        );
    }
}
