//! # gramc-nn
//!
//! Neural-network stack for the paper's Fig. 5 experiment: LeNet-5 trained
//! from scratch in f64, post-training quantization (INT4 / bit-sliced INT8 /
//! float32), and the analog execution backend that streams inference through
//! the GRAMC macro group with pooling/activation in the digital functional
//! module.
//!
//! * [`Tensor3`] / [`layers`] — feature maps and conv/pool/dense layers
//!   with full backward passes,
//! * [`LeNet5`] — the exact Fig. 5 architecture with SGD training,
//! * [`Precision`] / [`quant`] — the three weight precisions of Fig. 5,
//! * [`GramcLenet`] — layer-serial batched analog inference on one macro
//!   group,
//! * [`RuntimeLenet`] — the same pipeline on the sharded `gramc-runtime`,
//!   with weight tiles spread across macro-group shards.

#![warn(missing_docs)]

mod backend;
pub mod layers;
mod lenet;
pub mod quant;
mod runtime_backend;
mod tensor;

pub use backend::{GramcLenet, LenetScratch};
pub use lenet::{EpochStats, LeNet5};
pub use quant::Precision;
pub use runtime_backend::RuntimeLenet;
pub use tensor::Tensor3;

/// Shared fixtures for the backend tests: a toy two-class image task and a
/// model trained to master it.
#[cfg(test)]
pub(crate) mod testutil {
    use gramc_linalg::random::seeded_rng;

    use crate::lenet::LeNet5;
    use crate::tensor::Tensor3;

    pub(crate) fn tiny_images(n: usize, seed: u64) -> (Vec<Tensor3>, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cy = if label == 0 { 9.0 } else { 19.0 };
            let mut t = Tensor3::zeros(1, 28, 28);
            for y in 0..28 {
                for x in 0..28 {
                    let dy = y as f64 - cy;
                    let dx = x as f64 - 14.0;
                    let v = (-(dy * dy + dx * dx) / 16.0).exp()
                        + 0.02 * gramc_linalg::random::standard_normal(&mut rng);
                    t.set(0, y, x, v.clamp(0.0, 1.0));
                }
            }
            images.push(t);
            labels.push(label);
        }
        (images, labels)
    }

    pub(crate) fn trained_model() -> (LeNet5, Vec<Tensor3>, Vec<usize>) {
        let mut rng = seeded_rng(120);
        let mut net = LeNet5::new(&mut rng);
        let (images, labels) = tiny_images(16, 121);
        for _ in 0..12 {
            net.train_epoch(&images, &labels, 0.02, 0.9);
        }
        (net, images, labels)
    }
}
