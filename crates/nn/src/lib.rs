//! # gramc-nn
//!
//! Neural-network stack for the paper's Fig. 5 experiment: LeNet-5 trained
//! from scratch in f64, post-training quantization (INT4 / bit-sliced INT8 /
//! float32), and the analog execution backend that streams inference through
//! the GRAMC macro group with pooling/activation in the digital functional
//! module.
//!
//! * [`Tensor3`] / [`layers`] — feature maps and conv/pool/dense layers
//!   with full backward passes,
//! * [`LeNet5`] — the exact Fig. 5 architecture with SGD training,
//! * [`Precision`] / [`quant`] — the three weight precisions of Fig. 5,
//! * [`GramcLenet`] — layer-serial batched analog inference.

#![warn(missing_docs)]

mod backend;
pub mod layers;
mod lenet;
pub mod quant;
mod tensor;

pub use backend::GramcLenet;
pub use lenet::{EpochStats, LeNet5};
pub use quant::Precision;
pub use tensor::Tensor3;
