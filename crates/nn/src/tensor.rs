//! Minimal channel-major 3-D tensor for feature maps.

/// A `channels × height × width` feature map, stored channel-major
/// row-major (`data[c·h·w + y·w + x]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width, data: vec![0.0; channels * height * width] }
    }

    /// Wraps a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length disagrees with the shape.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), channels * height * width, "tensor buffer length mismatch");
        Self { channels, height, width, data }
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Value at `(c, y, x)`.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f64 {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Sets the value at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f64) {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// Borrows one channel as a flat `h·w` slice.
    pub fn channel(&self, c: usize) -> &[f64] {
        let hw = self.height * self.width;
        &self.data[c * hw..(c + 1) * hw]
    }

    /// Mutably borrows one channel.
    pub fn channel_mut(&mut self, c: usize) -> &mut [f64] {
        let hw = self.height * self.width;
        &mut self.data[c * hw..(c + 1) * hw]
    }

    /// The flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_channel_major() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.0);
        assert_eq!(t.get(1, 2, 3), 7.0);
        assert_eq!(t.as_slice()[(3 + 2) * 4 + 3], 7.0);
        assert_eq!(t.channel(1)[2 * 4 + 3], 7.0);
    }

    #[test]
    fn shape_accessors() {
        let t = Tensor3::zeros(6, 12, 12);
        assert_eq!(t.shape(), (6, 12, 12));
        assert_eq!(t.as_slice().len(), 864);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_length() {
        let _ = Tensor3::from_vec(1, 2, 2, vec![0.0; 3]);
    }
}
